//! # mvolap — MultiVersion OLAP
//!
//! A from-scratch Rust implementation of *Body, Miquel, Bédard &
//! Tchounikine, "Handling Evolutions in Multidimensional Structures",
//! IEEE ICDE 2003*: a temporal multidimensional model whose dimension
//! instances carry valid time, whose structure versions are inferred,
//! and whose mapping relationships keep data comparable across merges,
//! splits and reclassifications — plus the full substrate stack the
//! paper's prototype sat on (relational warehouse engine, ETL with SCD
//! baselines, OLAP cube, query language, workload generators).
//!
//! This facade re-exports the workspace crates:
//!
//! | Crate | Role |
//! |---|---|
//! | [`temporal`] | Discrete instants, validity intervals, timeline partition |
//! | [`storage`] | In-memory columnar relational engine ("warehouse server") |
//! | [`exec`] | Morsel-parallel execution engine + generation-keyed memo cache |
//! | [`core`] | The paper's model: Definitions 1–12 + evolution operators |
//! | [`etl`] | Snapshot change detection, loaders, SCD Type 1/2/3 baselines |
//! | [`durable`] | Write-ahead log, checkpointing and crash recovery |
//! | [`replica`] | WAL-shipping replication, divergence detection, failover |
//! | [`server`] | Concurrent session server: group commit, replica read routing |
//! | [`cluster`] | Quorum-replicated commit, leader election, fleet read bounds |
//! | [`query`] | Textual query language with `IN MODE` temporal presentation |
//! | [`cube`] | Aggregate lattice, navigation operators, quality factor |
//! | [`workload`] | Seeded evolving-hierarchy and fact generators |
//!
//! ## Quick start
//!
//! ```
//! use mvolap::prelude::*;
//!
//! // The paper's case study: an institution restructured across
//! // 2001-2003 (Smith's department moves, Jones's splits 40/60).
//! let cs = mvolap::core::case_study::case_study();
//!
//! // Ask Q1 under the three interpretations the paper contrasts.
//! for mode in ["tcm", "VERSION 0", "VERSION 1"] {
//!     let rs = mvolap::query::run(
//!         &cs.tmd,
//!         &format!("SELECT sum(Amount) BY year, Org.Division \
//!                   FOR 2001..2002 IN MODE {mode}"),
//!     ).unwrap();
//!     assert_eq!(rs.rows.len(), 4);
//! }
//! ```

pub use mvolap_cluster as cluster;
pub use mvolap_core as core;
pub use mvolap_cube as cube;
pub use mvolap_durable as durable;
pub use mvolap_etl as etl;
pub use mvolap_exec as exec;
pub use mvolap_query as query;
pub use mvolap_replica as replica;
pub use mvolap_server as server;
pub use mvolap_storage as storage;
pub use mvolap_temporal as temporal;
pub use mvolap_workload as workload;

/// Commonly used items, one `use` away.
pub mod prelude {
    pub use mvolap_core::{
        evaluate, evaluate_par, AggregateQuery, Aggregator, Confidence, ConfidenceWeights,
        DimensionId, ExecContext, MeasureDef, MemberVersionId, MemberVersionSpec,
        MultiVersionFactTable, QueryMemo, StructureVersionId, TemporalDimension, TemporalMode,
        TimeLevel, Tmd,
    };
    pub use mvolap_temporal::{Granularity, Instant, Interval};
}
