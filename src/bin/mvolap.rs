//! `mvolap` — interactive OLAP front end (the fourth tier of the §5.1
//! architecture, replacing the prototype's ProClarity client).
//!
//! ```text
//! mvolap                        # REPL over the paper's case study
//! mvolap --two-measures         # case study with Turnover + Profit
//! mvolap --workload 42          # seeded synthetic evolving workload
//! mvolap --load FILE            # a schema saved with \save
//! mvolap -c "SELECT sum(Amount) BY year, Org.Division IN MODE tcm"
//! ```
//!
//! Inside the REPL, lines are queries (see `mvolap-query` for the
//! grammar) or backslash commands — `\h` lists them.

use std::io::{BufRead, Write as _};

use mvolap::core::case_study::{case_study, case_study_two_measures};
use mvolap::core::{ConfidenceWeights, Tmd};
use mvolap::cube::mode_qualities;
use mvolap::query::{parse, run_compare, run_with_versions, ModeSpec, QueryError};
use mvolap::workload::{generate, WorkloadConfig};

struct Session {
    tmd: Tmd,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut schema: Option<Tmd> = None;
    let mut one_shot: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--two-measures" => schema = Some(case_study_two_measures().tmd),
            "--workload" => {
                i += 1;
                let seed: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--workload requires a numeric seed"));
                let w = generate(&WorkloadConfig::small(seed))
                    .unwrap_or_else(|e| die(&format!("workload generation failed: {e}")));
                schema = Some(w.tmd);
            }
            "--load" => {
                i += 1;
                let path = args
                    .get(i)
                    .unwrap_or_else(|| die("--load requires a file path"));
                let tmd = mvolap::core::persist::load_tmd(std::path::Path::new(path))
                    .unwrap_or_else(|e| die(&format!("load failed: {e}")));
                schema = Some(tmd);
            }
            "-c" => {
                i += 1;
                one_shot = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("-c requires a query string")),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: mvolap [--two-measures | --workload SEED | --load FILE] [-c QUERY]"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}` (try --help)")),
        }
        i += 1;
    }

    let session = Session {
        tmd: schema.unwrap_or_else(|| case_study().tmd),
    };

    if let Some(query) = one_shot {
        execute(&session, &query);
        return;
    }

    println!(
        "mvolap — multiversion OLAP shell over schema `{}` \
         ({} dimensions, {} facts). \\h for help, \\q to quit.",
        session.tmd.name(),
        session.tmd.dimensions().len(),
        session.tmd.facts().len()
    );
    let stdin = std::io::stdin();
    loop {
        print!("mvolap> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => die(&format!("stdin error: {e}")),
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix('\\') {
            if !command(&session, cmd) {
                break;
            }
        } else {
            execute(&session, line);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("mvolap: {msg}");
    std::process::exit(1)
}

/// Executes a backslash command; returns false to quit.
fn command(session: &Session, cmd: &str) -> bool {
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        "q" | "quit" => return false,
        "h" | "help" => {
            println!(
                "\\svs            structure versions\n\
                 \\dims           dimensions and levels\n\
                 \\measures       measures and aggregators\n\
                 \\dot DIM        GraphViz DOT of a dimension\n\
                 \\log            evolution log\n\
                 \\quality QUERY  quality factor of QUERY per mode\n\
                 \\grid QUERY     result as a pivot grid (time × members)\n\
                 \\save FILE      persist the schema (reload with --load)\n\
                 \\export DIR     export the MultiVersion warehouse tables\n\
                 \\q              quit\n\
                 anything else executes as a query \
                 (SELECT … BY … [WHERE …] [FOR …] IN MODE … | IN ALL MODES)"
            );
        }
        "svs" => {
            for sv in session.tmd.structure_versions() {
                println!("{}", sv.label());
            }
        }
        "dims" => {
            for d in session.tmd.dimensions() {
                let levels = mvolap::core::levels::all_level_names(d);
                println!(
                    "{}: {} member versions, levels: {}",
                    d.name(),
                    d.versions().len(),
                    levels.join(" > ")
                );
            }
        }
        "measures" => {
            for m in session.tmd.measures() {
                println!("{} ({})", m.name, m.aggregator.name());
            }
        }
        "dot" => match parts.next() {
            Some(name) => match session.tmd.dimension_by_name(name) {
                Ok(dim) => {
                    let d = session.tmd.dimension(dim).expect("id just resolved");
                    println!("{}", d.to_dot(session.tmd.granularity()));
                }
                Err(e) => println!("error: {e}"),
            },
            None => println!("usage: \\dot DIMENSION"),
        },
        "log" => {
            let entries = session.tmd.evolution_log().entries();
            if entries.is_empty() {
                println!("(no evolutions recorded)");
            }
            for e in entries {
                println!("{} [{}] {}", e.at, e.operator, e.description);
            }
        }
        "quality" => {
            let rest: Vec<&str> = parts.collect();
            quality(session, &rest.join(" "));
        }
        "grid" => {
            let rest: Vec<&str> = parts.collect();
            let svs = session.tmd.structure_versions();
            match run_with_versions(&session.tmd, &svs, &rest.join(" ")) {
                Ok(rs) => print!("{}", rs.render_grid(0)),
                Err(e) => report(e),
            }
        }
        "save" => match parts.next() {
            Some(path) => {
                match mvolap::core::persist::save_tmd(&session.tmd, std::path::Path::new(path)) {
                    Ok(()) => println!("saved to {path}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            None => println!("usage: \\save FILE"),
        },
        "export" => match parts.next() {
            Some(dir) => {
                let result = mvolap::core::logical::build_multiversion_warehouse(&session.tmd)
                    .map_err(|e| e.to_string())
                    .and_then(|wh| {
                        mvolap::storage::persist::save_catalog(&wh, std::path::Path::new(dir))
                            .map_err(|e| e.to_string())
                            .map(|()| wh.len())
                    });
                match result {
                    Ok(n) => println!("exported {n} tables to {dir}/"),
                    Err(e) => println!("error: {e}"),
                }
            }
            None => println!("usage: \\export DIR"),
        },
        other => println!("unknown command \\{other} (\\h for help)"),
    }
    true
}

/// Prints the per-mode quality factor of a query.
fn quality(session: &Session, query: &str) {
    let svs = session.tmd.structure_versions();
    let planned = parse(query).and_then(|ast| mvolap::query::plan(&session.tmd, &svs, &ast));
    match planned {
        Ok(q) => match mode_qualities(&session.tmd, &svs, &q, &ConfidenceWeights::DEFAULT) {
            Ok(scores) => {
                for s in scores {
                    println!(
                        "{:<6} Q = {:.3}  ({} rows, {} unmapped)",
                        s.mode.label(),
                        s.quality,
                        s.rows,
                        s.unmapped_rows
                    );
                }
            }
            Err(e) => println!("error: {e}"),
        },
        Err(e) => println!("error: {e}"),
    }
}

/// Executes one query line.
fn execute(session: &Session, query: &str) {
    // ALL MODES queries go through the comparison path.
    let is_all_modes = matches!(
        parse(query),
        Ok(ast) if matches!(ast.mode, ModeSpec::AllModes { .. })
    );
    if is_all_modes {
        match run_compare(&session.tmd, query) {
            Ok(results) => {
                for r in results {
                    println!(
                        "== mode {} (Q = {:.3}, {} unmapped) ==",
                        r.result.mode.label(),
                        r.quality,
                        r.result.unmapped_rows
                    );
                    match r.result.render("result") {
                        Ok(text) => println!("{text}"),
                        Err(e) => println!("render error: {e}"),
                    }
                }
            }
            Err(e) => report(e),
        }
        return;
    }
    let svs = session.tmd.structure_versions();
    match run_with_versions(&session.tmd, &svs, query) {
        Ok(rs) => {
            if rs.unmapped_rows > 0 {
                println!(
                    "note: {} source facts have no representation in this mode",
                    rs.unmapped_rows
                );
            }
            match rs.render("result") {
                Ok(text) => print!("{text}"),
                Err(e) => println!("render error: {e}"),
            }
        }
        Err(e) => report(e),
    }
}

fn report(e: QueryError) {
    println!("error: {e}");
}
