//! `mvolap` — interactive OLAP front end (the fourth tier of the §5.1
//! architecture, replacing the prototype's ProClarity client).
//!
//! ```text
//! mvolap                        # REPL over the paper's case study
//! mvolap --two-measures         # case study with Turnover + Profit
//! mvolap --workload 42          # seeded synthetic evolving workload
//! mvolap --load FILE            # a schema saved with \save FILE
//! mvolap --store DIR            # durable store: WAL + checkpoints in DIR
//! mvolap --store DIR --serve ADDR    # serve the store to replicas
//! mvolap --store DIR --follow ADDR   # tail a served store as a follower
//! mvolap --store DIR --listen ADDR   # session server: queries + commits
//! mvolap --store DIR --listen ADDR --cluster SPEC
//!                                    # quorum group: primary + members
//! mvolap --connect ADDR              # client REPL against --listen
//! mvolap --connect ADDR -c QUERY     # one-shot remote query
//! mvolap -c "SELECT sum(Amount) BY year, Org.Division IN MODE tcm"
//! ```
//!
//! `ADDR` is `host:port` or `unix:/path/to.sock`. A serving primary
//! answers hello/ack/fence requests over CRC-framed sockets and runs a
//! real-clock loop that takes policy-gated checkpoints
//! ([`CheckpointPolicy::max_tail_age`]); a follower syncs continuously
//! and exits non-zero the moment it is fenced or diverged. Both stop
//! cleanly on `quit` or EOF on stdin.
//!
//! `--listen` runs the *session* server (`mvolap-server`): many
//! concurrent clients, group-committed writes, bounded admission.
//! `--connect` is its line-oriented client — every line is a query,
//! answered with the same rendering the local REPL prints.
//!
//! `--cluster SPEC` (with `--listen` and a fresh `--store`) starts a
//! quorum-replicated group instead: `SPEC` is a comma-separated list of
//! `name=ADDR` members (e.g. `m1=127.0.0.1:0,m2=127.0.0.1:0`), each
//! getting its own replica store under `DIR/<name>` and its own read
//! server. Commits through the primary are acknowledged only once a
//! majority of the group synced them, and bounded `read`s are routed to
//! the freshest member that satisfies the staleness bound.
//!
//! Inside the REPL, lines are queries (see `mvolap-query` for the
//! grammar) or backslash commands — `\h` lists them. With `--store`,
//! evolution commands (`\create`, `\rename`, `\delete`) are journaled
//! through the write-ahead log and `\save` (no argument) takes a
//! checkpoint; reopening the same directory recovers the schema.

use std::io::{BufRead, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use mvolap::cluster::{LocalCluster, PumpConfig};
use mvolap::core::case_study::{case_study, case_study_two_measures};
use mvolap::core::{ConfidenceWeights, DimensionId, MemberVersionId, Tmd};
use mvolap::cube::mode_qualities;
use mvolap::durable::{
    CheckpointPolicy, DurableError, DurableTmd, GroupCommit, GroupConfig, Io, Options, WalRecord,
};
use mvolap::query::{is_all_modes, parse, run_compare, run_with_versions, QueryError};
use mvolap::replica::{
    sync_follower, Clock as _, Follower, NetAddr, NetClient, NetConfig, PrimaryNode, ReplicaError,
    ReplicaServer, ServerConfig, SystemClock,
};
use mvolap::server::{ServerOptions, SessionClient, SessionServer};
use mvolap::temporal::Instant;
use mvolap::workload::{generate, WorkloadConfig};

/// Where the schema lives: plain memory, or a durable WAL+checkpoint
/// store whose every evolution is journaled.
enum Backing {
    Memory(Tmd),
    Durable(Box<DurableTmd>),
}

struct Session {
    backing: Backing,
}

impl Session {
    fn tmd(&self) -> &Tmd {
        match &self.backing {
            Backing::Memory(tmd) => tmd,
            Backing::Durable(store) => store.schema(),
        }
    }

    /// Runs one evolution record through the backing: journaled
    /// (validate → WAL append + fsync → apply) on a durable store,
    /// applied directly in memory.
    fn evolve(&mut self, record: WalRecord) -> Result<String, String> {
        match &mut self.backing {
            Backing::Memory(tmd) => record
                .apply(tmd)
                .map(|()| "applied (in-memory; use --store DIR to journal)".to_string())
                .map_err(|e| e.to_string()),
            Backing::Durable(store) => store
                .apply(record)
                .map(|lsn| format!("journaled at LSN {lsn}"))
                .map_err(|e| e.to_string()),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut schema: Option<Tmd> = None;
    let mut one_shot: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut serve_addr: Option<String> = None;
    let mut follow_addr: Option<String> = None;
    let mut listen_addr: Option<String> = None;
    let mut connect_addr: Option<String> = None;
    let mut cluster_spec: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--two-measures" => schema = Some(case_study_two_measures().tmd),
            "--workload" => {
                i += 1;
                let seed: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--workload requires a numeric seed"));
                let w = generate(&WorkloadConfig::small(seed))
                    .unwrap_or_else(|e| die(&format!("workload generation failed: {e}")));
                schema = Some(w.tmd);
            }
            "--load" => {
                i += 1;
                let path = args
                    .get(i)
                    .unwrap_or_else(|| die("--load requires a file path"));
                let tmd = mvolap::core::persist::load_tmd(std::path::Path::new(path))
                    .unwrap_or_else(|e| die(&format!("load failed: {e}")));
                schema = Some(tmd);
            }
            "--store" => {
                i += 1;
                store_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--store requires a directory")),
                );
            }
            "-c" => {
                i += 1;
                one_shot = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("-c requires a query string")),
                );
            }
            "--serve" => {
                i += 1;
                serve_addr = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--serve requires an address")),
                );
            }
            "--follow" => {
                i += 1;
                follow_addr = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--follow requires an address")),
                );
            }
            "--listen" => {
                i += 1;
                listen_addr = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--listen requires an address")),
                );
            }
            "--connect" => {
                i += 1;
                connect_addr = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--connect requires an address")),
                );
            }
            "--cluster" => {
                i += 1;
                cluster_spec = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--cluster requires name=ADDR[,name=ADDR...]")),
                );
            }
            "--workers" => {
                i += 1;
                workers = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    die("--workers requires a number (0 = thread per session)")
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: mvolap [--two-measures | --workload SEED | --load FILE] \
                     [--store DIR] [--serve ADDR | --follow ADDR | --listen ADDR] \
                     [--cluster SPEC] [--workers N] [--connect ADDR] [-c QUERY]\n\
                     ADDR is host:port or unix:/path/to.sock; serve/follow/listen need \
                     --store DIR; --connect talks to a --listen server; --cluster \
                     name=ADDR,... with --listen starts a quorum group; --workers N \
                     sizes the session pool (0 = one thread per session)"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}` (try --help)")),
        }
        i += 1;
    }

    if [&serve_addr, &follow_addr, &listen_addr, &connect_addr]
        .iter()
        .filter(|a| a.is_some())
        .count()
        > 1
    {
        die("--serve, --follow, --listen and --connect are mutually exclusive");
    }
    if let Some(addr) = serve_addr {
        let dir = store_dir.unwrap_or_else(|| die("--serve requires --store DIR"));
        let addr = NetAddr::parse(&addr).unwrap_or_else(|e| die(&format!("bad address: {e}")));
        serve(&addr, &dir, schema);
    }
    if let Some(addr) = follow_addr {
        let dir = store_dir.unwrap_or_else(|| die("--follow requires --store DIR"));
        let addr = NetAddr::parse(&addr).unwrap_or_else(|e| die(&format!("bad address: {e}")));
        follow(&addr, &dir);
    }
    if let Some(spec) = cluster_spec {
        let dir = store_dir.unwrap_or_else(|| die("--cluster requires --store DIR"));
        let addr = listen_addr.unwrap_or_else(|| die("--cluster requires --listen ADDR"));
        let addr = NetAddr::parse(&addr).unwrap_or_else(|e| die(&format!("bad address: {e}")));
        cluster(&addr, &dir, &spec, schema, workers);
    }
    if let Some(addr) = listen_addr {
        let dir = store_dir.unwrap_or_else(|| die("--listen requires --store DIR"));
        let addr = NetAddr::parse(&addr).unwrap_or_else(|e| die(&format!("bad address: {e}")));
        listen(&addr, &dir, schema, workers);
    }
    if let Some(addr) = connect_addr {
        let addr = NetAddr::parse(&addr).unwrap_or_else(|e| die(&format!("bad address: {e}")));
        connect(&addr, one_shot);
    }

    // An existing store wins over --load/--workload (those only seed a
    // *new* store); the journal, not the flags, is the durable truth.
    let backing = match store_dir {
        Some(dir) => {
            let path = std::path::PathBuf::from(&dir);
            match DurableTmd::open(&path) {
                Ok(store) => Backing::Durable(Box::new(store)),
                Err(DurableError::NoStore) => {
                    let seed = schema.unwrap_or_else(|| case_study().tmd);
                    let store = DurableTmd::create(&path, seed)
                        .unwrap_or_else(|e| die(&format!("cannot create store: {e}")));
                    Backing::Durable(Box::new(store))
                }
                Err(e) => die(&format!("cannot open store at {dir}: {e}")),
            }
        }
        None => Backing::Memory(schema.unwrap_or_else(|| case_study().tmd)),
    };
    let mut session = Session { backing };

    if let Some(query) = one_shot {
        execute(&session, &query);
        return;
    }

    match &session.backing {
        Backing::Memory(_) => println!(
            "mvolap — multiversion OLAP shell over schema `{}` \
             ({} dimensions, {} facts). \\h for help, \\q to quit.",
            session.tmd().name(),
            session.tmd().dimensions().len(),
            session.tmd().facts().len()
        ),
        Backing::Durable(store) => println!(
            "mvolap — multiversion OLAP shell over durable store `{}` \
             (schema `{}`, next LSN {}). \\h for help, \\q to quit.",
            store.dir().display(),
            store.schema().name(),
            store.wal_position()
        ),
    }
    let stdin = std::io::stdin();
    loop {
        print!("mvolap> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => die(&format!("stdin error: {e}")),
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix('\\') {
            if !command(&mut session, cmd) {
                break;
            }
        } else {
            execute(&session, line);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("mvolap: {msg}");
    std::process::exit(1)
}

/// How long the serving primary lets the WAL tail age before the
/// real-clock loop takes a checkpoint.
const SERVE_TAIL_AGE_MS: u64 = 30_000;

/// Opens (or seeds) the store in `dir` under a time-based checkpoint
/// policy, serves it on `addr`, and runs the real-clock checkpoint loop
/// until `quit` or EOF arrives on stdin.
fn serve(addr: &NetAddr, dir: &str, schema: Option<Tmd>) -> ! {
    let path = std::path::PathBuf::from(dir);
    let opts = Options {
        policy: CheckpointPolicy::max_tail_age(SERVE_TAIL_AGE_MS),
        ..Options::default()
    };
    let store = match DurableTmd::open_with(&path, opts.clone(), Io::plain()) {
        Ok(store) => store,
        Err(DurableError::NoStore) => {
            let seed = schema.unwrap_or_else(|| case_study().tmd);
            DurableTmd::create_with(&path, seed, opts, Io::plain())
                .unwrap_or_else(|e| die(&format!("cannot create store: {e}")))
        }
        Err(e) => die(&format!("cannot open store at {dir}: {e}")),
    };
    let next_lsn = store.wal_position();
    let primary = Arc::new(Mutex::new(PrimaryNode::from_store("primary", store, 0)));
    let mut server = ReplicaServer::spawn(addr, Arc::clone(&primary), ServerConfig::default())
        .unwrap_or_else(|e| die(&format!("cannot serve on {addr}: {e}")));
    println!(
        "mvolap — serving store `{dir}` on {} (epoch 0, next LSN {next_lsn}). \
         `quit` or EOF stops.",
        server.addr()
    );
    std::io::stdout().flush().ok();

    // Real-clock loop: the policy decides, the clock only paces it. A
    // fenced primary's store is frozen, so the check is a no-op then.
    let stop = Arc::new(AtomicBool::new(false));
    let ticker = {
        let stop = Arc::clone(&stop);
        let primary = Arc::clone(&primary);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                SystemClock.sleep_ms(250);
                let mut p = primary.lock().unwrap_or_else(|e| e.into_inner());
                match p.maybe_checkpoint() {
                    Ok(Some(id)) => println!(
                        "checkpoint at generation {}, next LSN {}",
                        id.generation, id.next_lsn
                    ),
                    Ok(None) => {}
                    Err(e) => eprintln!("checkpoint error: {e}"),
                }
            }
        })
    };

    let stdin = std::io::stdin();
    loop {
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
        }
    }
    stop.store(true, Ordering::SeqCst);
    ticker.join().ok();
    server.stop();
    println!("mvolap: server on {addr} stopped");
    std::process::exit(0)
}

/// Tails a served store into the follower at `dir`, printing progress,
/// until stdin closes (clean exit) or the server fences or refuses the
/// follower as diverged (exit 1 — the operator must intervene).
fn follow(addr: &NetAddr, dir: &str) -> ! {
    let mut f = Follower::open("follower", dir, Options::default(), Io::plain())
        .unwrap_or_else(|e| die(&format!("cannot open follower store at {dir}: {e}")));
    let mut client = NetClient::connect(addr.clone(), NetConfig::default());
    println!("mvolap — following {addr} into store `{dir}`. `quit` or EOF stops.");
    std::io::stdout().flush().ok();

    // Watch stdin off-thread so the sync loop keeps its own cadence.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            loop {
                let mut line = String::new();
                match stdin.lock().read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) if line.trim() == "quit" => break,
                    Ok(_) => {}
                }
            }
            stop.store(true, Ordering::SeqCst);
        });
    }

    let mut announced = false;
    while !stop.load(Ordering::SeqCst) {
        match sync_follower(&mut client, &mut f) {
            Ok(round) => {
                if round.caught_up() && !announced {
                    println!("caught up at LSN {}", f.next_lsn());
                    std::io::stdout().flush().ok();
                    announced = true;
                } else if !round.caught_up() {
                    announced = false;
                }
            }
            Err(e @ (ReplicaError::Fenced { .. } | ReplicaError::Diverged { .. })) => {
                die(&format!("follower refused: {e}"))
            }
            Err(e) => {
                eprintln!("sync error (will retry): {e}");
                announced = false;
            }
        }
        SystemClock.sleep_ms(500);
    }
    println!("mvolap: follower of {addr} stopped at LSN {}", f.next_lsn());
    std::process::exit(0)
}

/// Renders a pool-stats snapshot the way both serving REPLs print it
/// under `\status`: one occupancy line, then one line per memo shard.
fn print_pool(stats: &mvolap::server::PoolStats) {
    println!(
        "  pool: workers={} active={} queued={} parked={} served={} refused={} forwarded={}",
        stats.workers,
        stats.active,
        stats.queued,
        stats.parked,
        stats.served,
        stats.refused,
        stats.forwarded
    );
    for (i, m) in stats.memo.iter().enumerate() {
        println!(
            "  memo shard {i}: routes {}/{} hits/misses, ancestors {}/{}",
            m.routes.hits, m.routes.misses, m.ancestors.hits, m.ancestors.misses
        );
    }
}

/// Session-server options with the shell's `--workers N` applied.
fn server_opts(workers: Option<usize>) -> ServerOptions {
    let mut opts = ServerOptions::default();
    if let Some(w) = workers {
        opts.workers = w;
    }
    opts
}

/// `--listen`: the concurrent session server — a fixed worker pool
/// multiplexing nonblocking sessions (`--workers N`; 0 = the legacy
/// thread-per-session loop). Writes group-commit (one shared fsync per
/// batch); queries run under a shared read lock.
fn listen(addr: &NetAddr, dir: &str, schema: Option<Tmd>, workers: Option<usize>) -> ! {
    let path = std::path::PathBuf::from(dir);
    let store = match DurableTmd::open(&path) {
        Ok(store) => store,
        Err(DurableError::NoStore) => {
            let seed = schema.unwrap_or_else(|| case_study().tmd);
            DurableTmd::create(&path, seed)
                .unwrap_or_else(|e| die(&format!("cannot create store: {e}")))
        }
        Err(e) => die(&format!("cannot open store at {dir}: {e}")),
    };
    let next_lsn = store.wal_position();
    let group = GroupCommit::new(store, GroupConfig::default());
    let mut server = SessionServer::spawn(addr, group, server_opts(workers))
        .unwrap_or_else(|e| die(&format!("cannot listen on {addr}: {e}")));
    println!(
        "mvolap — session server for store `{dir}` on {} (next LSN {next_lsn}). \
         \\status shows the pool; `\\q`, `quit` or EOF stops.",
        server.addr()
    );
    std::io::stdout().flush().ok();

    let stdin = std::io::stdin();
    loop {
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line == "quit" || line == "\\q" {
            break;
        }
        if line == "\\status" {
            print_pool(&server.pool_stats());
            std::io::stdout().flush().ok();
        } else if !line.is_empty() {
            println!("commands: \\status, \\q (or `quit`)");
            std::io::stdout().flush().ok();
        }
    }
    server.stop();
    println!("mvolap: session server on {addr} stopped");
    std::process::exit(0)
}

/// `--cluster`: a quorum-replicated serving group on one machine. The
/// primary session server listens on `addr`; every `name=ADDR` in
/// `spec` gets a replica store under `DIR/<name>` and a read server on
/// its own address. Per-member shipping threads tail the WAL and ship
/// batched frame envelopes continuously — no manual pump loop — so
/// commits clear the majority quorum in one shipping round-trip and
/// bounded reads route to the freshest member.
fn cluster(
    addr: &NetAddr,
    dir: &str,
    spec: &str,
    schema: Option<Tmd>,
    workers: Option<usize>,
) -> ! {
    let mut members = Vec::new();
    for part in spec.split(',') {
        let Some((name, maddr)) = part.split_once('=') else {
            die(&format!("bad --cluster entry `{part}` (want name=ADDR)"));
        };
        let maddr =
            NetAddr::parse(maddr).unwrap_or_else(|e| die(&format!("bad address `{maddr}`: {e}")));
        members.push((name.to_string(), maddr));
    }
    if members.is_empty() {
        die("--cluster needs at least one name=ADDR member");
    }
    let seed = schema.unwrap_or_else(|| case_study().tmd);
    let mut group = LocalCluster::start(
        std::path::Path::new(dir),
        seed,
        addr,
        &members,
        Options::default(),
        GroupConfig::default(),
        server_opts(workers),
        NetConfig::default(),
    )
    .unwrap_or_else(|e| die(&format!("cannot start cluster under {dir}: {e}")));
    group.spawn_pumps(PumpConfig::default());
    println!(
        "mvolap — quorum group under `{dir}`: primary on {} ({} members, quorum {}/{}, \
         async replication). \\join NAME=ADDR, \\leave NAME, \\status, \\pump; `\\q`, \
         `quit` or EOF stops.",
        group.primary_addr(),
        members.len(),
        members.len() / 2 + 1,
        members.len() + 1,
    );
    for (name, maddr) in group.member_addrs() {
        println!("  member {name} reads on {maddr}");
    }
    std::io::stdout().flush().ok();

    let stdin = std::io::stdin();
    loop {
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) if matches!(line.trim(), "quit" | "\\q") => break,
            Ok(_) => {}
        }
        let line = line.trim().to_string();
        if let Some(rest) = line.strip_prefix("\\join ") {
            let Some((name, maddr)) = rest.trim().split_once('=') else {
                println!("usage: \\join NAME=ADDR");
                continue;
            };
            let maddr = match NetAddr::parse(maddr) {
                Ok(a) => a,
                Err(e) => {
                    println!("bad address `{maddr}`: {e}");
                    continue;
                }
            };
            match group.join(name, &maddr) {
                Ok(lsn) => {
                    println!("joining `{name}` (reconfig journaled at LSN {lsn}); catching up…");
                    match group.await_membership(std::time::Duration::from_secs(30)) {
                        Ok(n) => println!("member `{n}` caught up and was promoted to voter"),
                        Err(e) => println!("join stalled: {e}"),
                    }
                }
                Err(e) => println!("join refused: {e}"),
            }
        } else if let Some(rest) = line.strip_prefix("\\leave ") {
            let name = rest.trim();
            match group.leave(name) {
                Ok(lsn) => {
                    println!("removing `{name}` (reconfig journaled at LSN {lsn})…");
                    match group.await_membership(std::time::Duration::from_secs(30)) {
                        Ok(n) => println!("member `{n}` removed; reads re-routed"),
                        Err(e) => println!("remove stalled: {e}"),
                    }
                }
                Err(e) => println!("leave refused: {e}"),
            }
        } else if line == "\\status" {
            for (name, learner) in group.membership() {
                let role = if learner { "learner" } else { "voter" };
                println!("  {name}: {role}");
            }
            for (name, st) in group.pump_status() {
                println!(
                    "  pump {name}: {:?} acked={} requests={} snapshots={} stalls={}",
                    st.state, st.acked_lsn, st.requests, st.snapshots, st.stalls
                );
            }
            print_pool(&group.primary_stats());
        } else if line == "\\pump" {
            // One explicit shipping round over *every* member — an
            // unpromoted learner still catching up included, labelled
            // with its role: each slot reports success (its applied
            // LSN) or exactly why it stalled or was fenced — the
            // threads keep running regardless.
            let membership = group.membership();
            for (name, round) in group.pump() {
                let role =
                    membership
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map_or(
                            "voter",
                            |&(_, learner)| {
                                if learner {
                                    "learner"
                                } else {
                                    "voter"
                                }
                            },
                        );
                match round {
                    Ok(applied) => {
                        println!("  {name} ({role}): ok, applied through LSN {applied}");
                    }
                    Err(e) => println!("  {name} ({role}): stalled — {e}"),
                }
            }
        } else if !line.is_empty() {
            println!("commands: \\join NAME=ADDR, \\leave NAME, \\status, \\pump, \\q (or `quit`)");
        }
        std::io::stdout().flush().ok();
    }
    group.stop();
    println!("mvolap: cluster on {addr} stopped");
    std::process::exit(0)
}

/// `--connect`: line-oriented client for a `--listen` server. Every
/// line is a query; the reply is rendered exactly as the local REPL
/// would print it.
fn connect(addr: &NetAddr, one_shot: Option<String>) -> ! {
    let mut client = SessionClient::connect(addr.clone(), NetConfig::default());
    if let Some(query) = one_shot {
        match client.query(&query) {
            Ok(out) => print!("{out}"),
            Err(e) => die(&format!("remote query failed: {e}")),
        }
        std::process::exit(0)
    }
    if let Err(e) = client.ping() {
        die(&format!("cannot reach {addr}: {e}"));
    }
    println!("mvolap — connected to session server on {addr}. \\q quits.");
    let stdin = std::io::stdin();
    loop {
        print!("mvolap> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\q" || line == "quit" {
            break;
        }
        match client.query(line) {
            Ok(out) => print!("{out}"),
            Err(e) => println!("error: {e}"),
        }
        std::io::stdout().flush().ok();
    }
    println!("mvolap: disconnected from {addr}");
    std::process::exit(0)
}

/// Executes a backslash command; returns false to quit.
fn command(session: &mut Session, cmd: &str) -> bool {
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        "q" | "quit" => return false,
        "h" | "help" => {
            println!(
                "\\svs            structure versions\n\
                 \\dims           dimensions and levels\n\
                 \\measures       measures and aggregators\n\
                 \\dot DIM        GraphViz DOT of a dimension\n\
                 \\log            evolution log\n\
                 \\quality QUERY  quality factor of QUERY per mode\n\
                 \\grid QUERY     result as a pivot grid (time × members)\n\
                 \\create DIM NAME LEVEL PARENT YYYY-MM   insert a member (journaled with --store)\n\
                 \\rename DIM MEMBER NEW_NAME YYYY-MM     transform a member (journaled with --store)\n\
                 \\delete DIM MEMBER YYYY-MM              exclude a member (journaled with --store)\n\
                 \\save           checkpoint the durable store (--store only)\n\
                 \\save FILE      persist the schema snapshot (reload with --load)\n\
                 \\export DIR     export the MultiVersion warehouse tables\n\
                 \\q              quit\n\
                 anything else executes as a query \
                 (SELECT … BY … [WHERE …] [FOR …] IN MODE … | IN ALL MODES)"
            );
        }
        "svs" => {
            for sv in session.tmd().structure_versions() {
                println!("{}", sv.label());
            }
        }
        "dims" => {
            for d in session.tmd().dimensions() {
                let levels = mvolap::core::levels::all_level_names(d);
                println!(
                    "{}: {} member versions, levels: {}",
                    d.name(),
                    d.versions().len(),
                    levels.join(" > ")
                );
            }
        }
        "measures" => {
            for m in session.tmd().measures() {
                println!("{} ({})", m.name, m.aggregator.name());
            }
        }
        "dot" => match parts.next() {
            Some(name) => match session.tmd().dimension_by_name(name) {
                Ok(dim) => {
                    let d = session.tmd().dimension(dim).expect("id just resolved");
                    println!("{}", d.to_dot(session.tmd().granularity()));
                }
                Err(e) => println!("error: {e}"),
            },
            None => println!("usage: \\dot DIMENSION"),
        },
        "log" => {
            let entries = session.tmd().evolution_log().entries();
            if entries.is_empty() {
                println!("(no evolutions recorded)");
            }
            for e in entries {
                println!("{} [{}] {}", e.at, e.operator, e.description);
            }
        }
        "quality" => {
            let rest: Vec<&str> = parts.collect();
            quality(session, &rest.join(" "));
        }
        "grid" => {
            let rest: Vec<&str> = parts.collect();
            let svs = session.tmd().structure_versions();
            match run_with_versions(session.tmd(), &svs, &rest.join(" ")) {
                Ok(rs) => print!("{}", rs.render_grid(0)),
                Err(e) => report(e),
            }
        }
        "create" => {
            let args: Vec<&str> = parts.collect();
            let [dim, name, level, parent, at] = args[..] else {
                println!("usage: \\create DIM NAME LEVEL PARENT YYYY-MM");
                return true;
            };
            let record = parse_ym(at).and_then(|at| {
                let dim = resolve_dim(session.tmd(), dim)?;
                let parent = resolve_member(session.tmd(), dim, parent, at)?;
                Ok(WalRecord::Create {
                    dim,
                    name: name.to_string(),
                    level: Some(level.to_string()),
                    at,
                    parents: vec![parent],
                })
            });
            match record.and_then(|r| session.evolve(r)) {
                Ok(msg) => println!("created `{name}`: {msg}"),
                Err(e) => println!("error: {e}"),
            }
        }
        "rename" => {
            let args: Vec<&str> = parts.collect();
            let [dim, member, new_name, at] = args[..] else {
                println!("usage: \\rename DIM MEMBER NEW_NAME YYYY-MM");
                return true;
            };
            let record = parse_ym(at).and_then(|at| {
                let dim = resolve_dim(session.tmd(), dim)?;
                let id = resolve_member(session.tmd(), dim, member, at)?;
                Ok(WalRecord::Transform {
                    dim,
                    id,
                    new_name: new_name.to_string(),
                    new_attributes: std::collections::BTreeMap::new(),
                    at,
                })
            });
            match record.and_then(|r| session.evolve(r)) {
                Ok(msg) => println!("renamed `{member}` to `{new_name}`: {msg}"),
                Err(e) => println!("error: {e}"),
            }
        }
        "delete" => {
            let args: Vec<&str> = parts.collect();
            let [dim, member, at] = args[..] else {
                println!("usage: \\delete DIM MEMBER YYYY-MM");
                return true;
            };
            let record = parse_ym(at).and_then(|at| {
                let dim = resolve_dim(session.tmd(), dim)?;
                let id = resolve_member(session.tmd(), dim, member, at)?;
                Ok(WalRecord::Delete { dim, id, at })
            });
            match record.and_then(|r| session.evolve(r)) {
                Ok(msg) => println!("deleted `{member}`: {msg}"),
                Err(e) => println!("error: {e}"),
            }
        }
        "save" => match parts.next() {
            Some(path) => {
                match mvolap::core::persist::save_tmd(session.tmd(), std::path::Path::new(path)) {
                    Ok(()) => println!("saved to {path}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            None => match &mut session.backing {
                Backing::Durable(store) => match store.checkpoint() {
                    Ok(id) => println!(
                        "checkpoint at generation {}, next LSN {}",
                        id.generation, id.next_lsn
                    ),
                    Err(e) => println!("error: {e}"),
                },
                Backing::Memory(_) => {
                    println!("usage: \\save FILE (checkpointing needs --store DIR)")
                }
            },
        },
        "export" => match parts.next() {
            Some(dir) => {
                let result = mvolap::core::logical::build_multiversion_warehouse(session.tmd())
                    .map_err(|e| e.to_string())
                    .and_then(|wh| {
                        mvolap::storage::persist::save_catalog(&wh, std::path::Path::new(dir))
                            .map_err(|e| e.to_string())
                            .map(|()| wh.len())
                    });
                match result {
                    Ok(n) => println!("exported {n} tables to {dir}/"),
                    Err(e) => println!("error: {e}"),
                }
            }
            None => println!("usage: \\export DIR"),
        },
        other => println!("unknown command \\{other} (\\h for help)"),
    }
    true
}

/// Parses a `YYYY-MM` instant literal.
fn parse_ym(s: &str) -> Result<Instant, String> {
    let (y, m) = s
        .split_once('-')
        .ok_or_else(|| format!("`{s}` is not a YYYY-MM instant"))?;
    let year: i32 = y.parse().map_err(|_| format!("bad year in `{s}`"))?;
    let month: u32 = m.parse().map_err(|_| format!("bad month in `{s}`"))?;
    if !(1..=12).contains(&month) {
        return Err(format!("month out of range in `{s}`"));
    }
    Ok(Instant::ym(year, month))
}

fn resolve_dim(tmd: &Tmd, name: &str) -> Result<DimensionId, String> {
    tmd.dimension_by_name(name).map_err(|e| e.to_string())
}

/// Resolves a member alive at `at` (or just before it, so evolutions
/// taking effect *at* the instant still find their target).
fn resolve_member(
    tmd: &Tmd,
    dim: DimensionId,
    name: &str,
    at: Instant,
) -> Result<MemberVersionId, String> {
    let d = tmd.dimension(dim).map_err(|e| e.to_string())?;
    d.version_named_at(name, at)
        .or_else(|_| d.version_named_at(name, at.pred()))
        .map(|v| v.id)
        .map_err(|e| e.to_string())
}

/// Prints the per-mode quality factor of a query.
fn quality(session: &Session, query: &str) {
    let svs = session.tmd().structure_versions();
    let planned = parse(query).and_then(|ast| mvolap::query::plan(session.tmd(), &svs, &ast));
    match planned {
        Ok(q) => match mode_qualities(session.tmd(), &svs, &q, &ConfidenceWeights::DEFAULT) {
            Ok(scores) => {
                for s in scores {
                    println!(
                        "{:<6} Q = {:.3}  ({} rows, {} unmapped)",
                        s.mode.label(),
                        s.quality,
                        s.rows,
                        s.unmapped_rows
                    );
                }
            }
            Err(e) => println!("error: {e}"),
        },
        Err(e) => println!("error: {e}"),
    }
}

/// Executes one query line.
fn execute(session: &Session, query: &str) {
    // ALL MODES queries go through the comparison path.
    if is_all_modes(query) {
        match run_compare(session.tmd(), query) {
            Ok(results) => {
                for r in results {
                    println!(
                        "== mode {} (Q = {:.3}, {} unmapped) ==",
                        r.result.mode.label(),
                        r.quality,
                        r.result.unmapped_rows
                    );
                    match r.result.render("result") {
                        Ok(text) => println!("{text}"),
                        Err(e) => println!("render error: {e}"),
                    }
                }
            }
            Err(e) => report(e),
        }
        return;
    }
    let svs = session.tmd().structure_versions();
    match run_with_versions(session.tmd(), &svs, query) {
        Ok(rs) => {
            if rs.unmapped_rows > 0 {
                println!(
                    "note: {} source facts have no representation in this mode",
                    rs.unmapped_rows
                );
            }
            match rs.render("result") {
                Ok(text) => print!("{text}"),
                Err(e) => println!("render error: {e}"),
            }
        }
        Err(e) => report(e),
    }
}

fn report(e: QueryError) {
    println!("error: {e}");
}
