//! End-to-end pipeline tests: generated workloads flow through the full
//! stack (schema → structure versions → multiversion fact table → query
//! language → cube → logical export) with cross-layer invariants.

use mvolap::core::aggregate::{evaluate, AggregateQuery, TimeLevel};
use mvolap::core::logical;
use mvolap::core::{Confidence, MultiVersionFactTable, TemporalMode};
use mvolap::cube::{Cube, CubeSpec, CubeView};
use mvolap::query::run_with_versions;
use mvolap::workload::{generate, WorkloadConfig};

fn evolving_workload(seed: u64) -> mvolap::workload::GeneratedWorkload {
    let mut cfg = WorkloadConfig::small(seed);
    cfg.split_prob = 0.25;
    cfg.merge_prob = 0.10;
    cfg.reclassify_prob = 0.15;
    cfg.periods = 5;
    // No creations or deletions: every member is then reachable through
    // mapping chains in every mode, so nothing is unmapped (created
    // members have no counterpart in older structures; deleted members
    // have none in newer ones).
    cfg.create_prob = 0.0;
    cfg.delete_prob = 0.0;
    generate(&cfg).expect("workload generates")
}

#[test]
fn grand_total_is_identical_across_all_modes() {
    // Splits/merges/reclassifications conserve measure mass (the
    // generated mapping factors always sum to 1), so the grand total in
    // every structure-version mode must equal the consistent-time total.
    let w = evolving_workload(101);
    let svs = w.tmd.structure_versions();
    assert!(svs.len() > 1, "workload must actually evolve");
    let total_of = |mode: TemporalMode| -> f64 {
        let q = AggregateQuery {
            group_by: vec![],
            time_level: TimeLevel::All,
            measures: vec![],
            mode,
            time_range: None,
            filters: Vec::new(),
        };
        let rs = evaluate(&w.tmd, &svs, &q).expect("evaluates");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.unmapped_rows, 0, "no deletions => everything maps");
        rs.rows[0].cells[0].value.expect("known value")
    };
    let tcm = total_of(TemporalMode::Consistent);
    for sv in &svs {
        let v = total_of(TemporalMode::Version(sv.id));
        assert!(
            (tcm - v).abs() < 1e-6 * tcm.abs().max(1.0),
            "mode {} total {v} != tcm total {tcm}",
            sv.id
        );
    }
}

#[test]
fn consistent_mode_rows_equal_fact_count() {
    let w = evolving_workload(7);
    let mv = MultiVersionFactTable::infer(&w.tmd).expect("inference");
    let tcm = mv.for_mode(&TemporalMode::Consistent).expect("tcm present");
    // Workload facts are unique per (leaf, time) except repeated inserts
    // on the same leaf/mid-year, which accumulate; row count is bounded
    // by the fact count and every cell is source data.
    assert!(tcm.rows.len() <= w.tmd.facts().len());
    assert!(tcm
        .rows
        .iter()
        .all(|r| r.cells.iter().all(|c| c.confidence == Confidence::Source)));
}

#[test]
fn query_language_agrees_with_programmatic_api() {
    let w = evolving_workload(33);
    let svs = w.tmd.structure_versions();
    let rs_text = run_with_versions(
        &w.tmd,
        &svs,
        "SELECT sum(Amount) BY year, Org.Division IN MODE tcm",
    )
    .expect("query runs");
    let rs_api = evaluate(
        &w.tmd,
        &svs,
        &AggregateQuery::by_year(w.dim, "Division", TemporalMode::Consistent),
    )
    .expect("evaluates");
    assert_eq!(rs_text.rows, rs_api.rows);
}

#[test]
fn cube_nodes_are_consistent_with_direct_queries() {
    let w = evolving_workload(55);
    let svs = w.tmd.structure_versions();
    let mode = TemporalMode::Version(svs.last().expect("has versions").id);
    let cube = Cube::build(&w.tmd, &svs, CubeSpec::for_mode(mode.clone())).expect("cube");
    let node = cube
        .node(&[Some("Division".into())], TimeLevel::Year)
        .expect("node exists");
    let direct = evaluate(
        &w.tmd,
        &svs,
        &AggregateQuery::by_year(w.dim, "Division", mode),
    )
    .expect("evaluates");
    assert_eq!(node.rows, direct.rows);
}

#[test]
fn cube_view_rollup_preserves_totals() {
    let w = evolving_workload(56);
    let svs = w.tmd.structure_versions();
    let cube =
        Cube::build(&w.tmd, &svs, CubeSpec::for_mode(TemporalMode::Consistent)).expect("cube");
    let mut view = CubeView::open(&cube);
    let dept_total: f64 = view.rows().iter().filter_map(|r| r.cells[0].value).sum();
    view.roll_up(w.dim).expect("dimension exists");
    let div_total: f64 = view.rows().iter().filter_map(|r| r.cells[0].value).sum();
    assert!(
        (dept_total - div_total).abs() < 1e-6 * dept_total.abs().max(1.0),
        "roll-up changed the total: {dept_total} vs {div_total}"
    );
}

#[test]
fn logical_export_round_trips_through_relational_group_by() {
    // The exported multiversion fact table, grouped relationally with
    // the storage engine, must agree with the model's own aggregation.
    let w = evolving_workload(77);
    let svs = w.tmd.structure_versions();
    let mv = MultiVersionFactTable::infer(&w.tmd).expect("inference");
    let fact = logical::export_multiversion_fact(&w.tmd, &mv).expect("exports");

    use mvolap::storage::{AggCall, AggFunc, Predicate};
    // tcm slice (tmp_id = 0), grouped by member.
    let tcm = fact
        .filter(&Predicate::eq("tmp_id", 0))
        .expect("filter")
        .group_by(
            &["Org_member"],
            &[AggCall::new(AggFunc::Sum, "Amount").with_alias("total")],
        )
        .expect("group by");
    let direct = evaluate(
        &w.tmd,
        &svs,
        &AggregateQuery {
            group_by: vec![(w.dim, "Department".into())],
            time_level: TimeLevel::All,
            measures: vec![],
            mode: TemporalMode::Consistent,
            time_range: None,
            filters: Vec::new(),
        },
    )
    .expect("evaluates");
    // Compare as name -> total maps.
    let mut relational: Vec<(String, f64)> = tcm
        .rows()
        .map(|r| {
            (
                r[0].as_str().expect("member name").to_owned(),
                r[1].as_float().expect("sum"),
            )
        })
        .collect();
    relational.sort_by(|a, b| a.0.cmp(&b.0));
    let mut model: Vec<(String, f64)> = direct
        .rows
        .iter()
        .map(|r| (r.keys[0].clone(), r.cells[0].value.expect("known")))
        .collect();
    model.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(relational.len(), model.len());
    for ((an, av), (bn, bv)) in relational.iter().zip(&model) {
        assert_eq!(an, bn);
        assert!((av - bv).abs() < 1e-6, "{an}: {av} vs {bv}");
    }
}

#[test]
fn warehouse_builds_for_generated_workloads() {
    let w = evolving_workload(90);
    let warehouse = logical::build_multiversion_warehouse(&w.tmd).expect("builds");
    assert!(!warehouse
        .get("fact_multiversion")
        .expect("exists")
        .is_empty());
    assert!(!warehouse.get("dim_Org_star").expect("exists").is_empty());
    // Evolution events were logged.
    assert!(!warehouse.get("meta_evolutions").expect("exists").is_empty());
}

#[test]
fn frozen_workload_has_single_version_and_pure_source_data() {
    let w = generate(&WorkloadConfig::small(5).frozen()).expect("generates");
    let svs = w.tmd.structure_versions();
    assert_eq!(svs.len(), 1);
    let mv = MultiVersionFactTable::infer(&w.tmd).expect("inference");
    for p in mv.presentations() {
        for row in &p.rows {
            for c in &row.cells {
                assert_eq!(c.confidence, Confidence::Source);
            }
        }
    }
}
