//! Asserts that every regenerated paper artifact matches the published
//! tables cell by cell. The artifacts are produced by the engine (via
//! `mvolap_bench::paper`), never from literals, so these tests pin the
//! whole pipeline to the paper.

use mvolap_bench::paper;
use mvolap_storage::{Table, Value};

/// Collects `(column -> String)` rows for easy comparison.
fn rows(table: &Table) -> Vec<Vec<String>> {
    table
        .rows()
        .map(|r| r.iter().map(Value::to_string).collect())
        .collect()
}

fn srow(cells: &[&str]) -> Vec<String> {
    cells.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn table_1_organization_2001() {
    assert_eq!(
        rows(&paper::table_org(2001)),
        vec![
            srow(&["Sales", "Dpt.Jones"]),
            srow(&["Sales", "Dpt.Smith"]),
            srow(&["R&D", "Dpt.Brian"]),
        ]
    );
}

#[test]
fn table_2_organization_2002() {
    assert_eq!(
        rows(&paper::table_org(2002)),
        vec![
            srow(&["Sales", "Dpt.Jones"]),
            srow(&["R&D", "Dpt.Smith"]),
            srow(&["R&D", "Dpt.Brian"]),
        ]
    );
}

#[test]
fn table_3_snapshot() {
    assert_eq!(
        rows(&paper::table_3_snapshot()),
        vec![
            srow(&["2001", "Sales", "Dpt.Jones", "100"]),
            srow(&["2001", "Sales", "Dpt.Smith", "50"]),
            srow(&["2001", "R&D", "Dpt.Brian", "100"]),
            srow(&["2002", "Sales", "Dpt.Jones", "100"]),
            srow(&["2002", "R&D", "Dpt.Smith", "100"]),
            srow(&["2002", "R&D", "Dpt.Brian", "50"]),
            srow(&["2003", "Sales", "Dpt.Bill", "150"]),
            srow(&["2003", "Sales", "Dpt.Paul", "50"]),
            srow(&["2003", "R&D", "Dpt.Smith", "110"]),
            srow(&["2003", "R&D", "Dpt.Brian", "40"]),
        ]
    );
}

#[test]
fn table_4_q1_consistent_time() {
    assert_eq!(
        rows(&paper::table_q1("tcm")),
        vec![
            srow(&["2001", "Sales", "150", "sd"]),
            srow(&["2001", "R&D", "100", "sd"]),
            srow(&["2002", "Sales", "100", "sd"]),
            srow(&["2002", "R&D", "150", "sd"]),
        ]
    );
}

#[test]
fn table_5_q1_on_2001_organization() {
    assert_eq!(
        rows(&paper::table_q1("VERSION 0")),
        vec![
            srow(&["2001", "Sales", "150", "sd"]),
            srow(&["2001", "R&D", "100", "sd"]),
            srow(&["2002", "Sales", "200", "sd"]),
            srow(&["2002", "R&D", "50", "sd"]),
        ]
    );
}

#[test]
fn table_6_q1_on_2002_organization() {
    assert_eq!(
        rows(&paper::table_q1("VERSION 1")),
        vec![
            srow(&["2001", "Sales", "100", "sd"]),
            srow(&["2001", "R&D", "150", "sd"]),
            srow(&["2002", "Sales", "100", "sd"]),
            srow(&["2002", "R&D", "150", "sd"]),
        ]
    );
}

#[test]
fn table_7_organization_2003() {
    assert_eq!(
        rows(&paper::table_org(2003)),
        vec![
            srow(&["Sales", "Dpt.Bill"]),
            srow(&["Sales", "Dpt.Paul"]),
            srow(&["R&D", "Dpt.Smith"]),
            srow(&["R&D", "Dpt.Brian"]),
        ]
    );
}

#[test]
fn table_8_q2_consistent_time() {
    assert_eq!(
        rows(&paper::table_q2("tcm")),
        vec![
            srow(&["2002", "Dpt.Jones", "100", "sd"]),
            srow(&["2002", "Dpt.Smith", "100", "sd"]),
            srow(&["2002", "Dpt.Brian", "50", "sd"]),
            srow(&["2003", "Dpt.Bill", "150", "sd"]),
            srow(&["2003", "Dpt.Paul", "50", "sd"]),
            srow(&["2003", "Dpt.Smith", "110", "sd"]),
            srow(&["2003", "Dpt.Brian", "40", "sd"]),
        ]
    );
}

#[test]
fn table_9_q2_on_2002_organization() {
    // Bill's 150 and Paul's 50 of 2003 present as Jones 200, exact.
    assert_eq!(
        rows(&paper::table_q2("VERSION 1")),
        vec![
            srow(&["2002", "Dpt.Jones", "100", "sd"]),
            srow(&["2002", "Dpt.Smith", "100", "sd"]),
            srow(&["2002", "Dpt.Brian", "50", "sd"]),
            srow(&["2003", "Dpt.Jones", "200", "em"]),
            srow(&["2003", "Dpt.Smith", "110", "sd"]),
            srow(&["2003", "Dpt.Brian", "40", "sd"]),
        ]
    );
}

#[test]
fn table_10_q2_on_2003_organization() {
    // Jones's 100 of 2002 presents as Bill 40 / Paul 60, approximated.
    assert_eq!(
        rows(&paper::table_q2("VERSION 2")),
        vec![
            srow(&["2002", "Dpt.Bill", "40", "am"]),
            srow(&["2002", "Dpt.Paul", "60", "am"]),
            srow(&["2002", "Dpt.Smith", "100", "sd"]),
            srow(&["2002", "Dpt.Brian", "50", "sd"]),
            srow(&["2003", "Dpt.Bill", "150", "sd"]),
            srow(&["2003", "Dpt.Paul", "50", "sd"]),
            srow(&["2003", "Dpt.Smith", "110", "sd"]),
            srow(&["2003", "Dpt.Brian", "40", "sd"]),
        ]
    );
}

#[test]
fn table_11_operator_scripts() {
    let text = paper::table_11_operations();
    // Creation.
    assert!(text.contains("- Insert(Org, idVnew, Vnew, 01/2003, {idP1}, ∅)"));
    // Transformation with equivalence mapping.
    assert!(text.contains("- Associate(idV, idV', {(x->x,em)}, {(x->x,em)})"));
    // Merge: exact forward, half back to V1, unknown back to V2.
    assert!(text.contains("- Associate(idV1, idV12, {(x->x,em)}, {(x->0.5*x,am)})"));
    assert!(text.contains("- Associate(idV2, idV12, {(x->x,em)}, {(-,uk)})"));
    // Increase by factor 2.
    assert!(text.contains("- Associate(idV, idV+, {(x->2*x,am)}, {(x->0.5*x,am)})"));
    // Partial annexation: the three mapping relationships.
    assert!(text.contains("- Associate(idV1, idV1-, {(x->0.9*x,am)}, {(x->x,em)})"));
    assert!(text.contains("idV2+"));
    assert!(text.contains("(x->0.1*x,am)"));
}

#[test]
fn table_11_split_applies_the_case_study_evolution() {
    let (tmd, outcome) = paper::split_outcome();
    assert_eq!(outcome.created.len(), 2);
    let text = outcome.render(&tmd);
    assert!(text.contains("- Exclude(Org, idV, 01/2003)"));
    assert!(text.contains("- Associate(idV, idVa, {(x->0.4*x,am)}, {(x->x,em)})"));
    assert!(text.contains("- Associate(idV, idVb, {(x->0.6*x,am)}, {(x->x,em)})"));
}

#[test]
fn table_12_mapping_relations() {
    assert_eq!(
        rows(&paper::table_12_mapping_relations()),
        vec![
            srow(&["Dpt.Jones", "Dpt.Bill", "0.4", "0.2", "1", "1", "1", "2"]),
            srow(&["Dpt.Jones", "Dpt.Paul", "0.6", "0.8", "1", "1", "1", "2"]),
        ]
    );
}

#[test]
fn examples_1_to_3_tuple_notation() {
    let text = mvolap_bench::paper::examples_1_3_tuples();
    // Example 1's three member versions.
    assert!(text.contains("'Dpt.Jones', Department, 01/2001, 12/2002"));
    assert!(text.contains("'Dpt.Paul', Department, 01/2003, Now"));
    assert!(text.contains("'Dpt.Bill', Department, 01/2003, Now"));
    // Example 2's temporal relationships.
    assert!(text.contains("<Dpt.Jones_id, Sales_id, 01/2001, 12/2002>"));
    assert!(text.contains("<Dpt.Paul_id, Sales_id, 01/2003, Now>"));
    assert!(text.contains("<Dpt.Bill_id, Sales_id, 01/2003, Now>"));
}

#[test]
fn example_5_truth_table() {
    assert_eq!(
        rows(&paper::truth_table()),
        vec![
            srow(&["sd", "sd", "em", "am", "uk"]),
            srow(&["em", "em", "em", "am", "uk"]),
            srow(&["am", "am", "am", "am", "uk"]),
            srow(&["uk", "uk", "uk", "uk", "uk"]),
        ]
    );
}

#[test]
fn example_7_structure_versions() {
    let listing = paper::structure_version_listing();
    assert!(listing.contains("VS0 [01/2001 ; 12/2001]"));
    assert!(listing.contains("VS1 [01/2002 ; 12/2002]"));
    assert!(listing.contains("VS2 [01/2003 ; Now]"));
    // Jones lives in VS0/VS1, the split parts only in VS2.
    let lines: Vec<&str> = listing.lines().collect();
    assert!(lines[0].contains("Dpt.Jones") && !lines[0].contains("Dpt.Bill"));
    assert!(lines[2].contains("Dpt.Bill") && !lines[2].contains("Dpt.Jones"));
}

#[test]
fn figure_2_dot_graph() {
    let dot = paper::figure_2_dot();
    assert!(dot.starts_with("digraph \"Org\""));
    for fragment in [
        "Dpt.Jones\\n[01/2001 ; 12/2002]",
        "Dpt.Bill\\n[01/2003 ; Now]",
        "Dpt.Paul\\n[01/2003 ; Now]",
        "Sales\\n[01/2001 ; Now]",
    ] {
        assert!(dot.contains(fragment), "missing {fragment}");
    }
    // Six roll-up edges.
    assert_eq!(dot.matches(" -> ").count(), 6);
}

#[test]
fn quality_listing_orders_modes_sensibly() {
    let listing = paper::quality_listing();
    assert!(listing.contains("tcm    Q = 1.000"));
    assert!(listing.contains("VS2    Q = 0.875"));
}

#[test]
fn all_artifacts_have_bodies() {
    let artifacts = paper::all_artifacts();
    assert_eq!(artifacts.len(), 17);
    for a in &artifacts {
        assert!(!a.body.trim().is_empty(), "artifact {} is empty", a.id);
    }
}
