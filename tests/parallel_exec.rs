//! Cross-thread determinism of the morsel-parallel execution engine.
//!
//! The engine's contract is *bit-identical* output for every thread
//! count: morsel boundaries depend only on the morsel size, and
//! per-worker partial states merge in morsel order. These tests pin
//! that contract on seeded `mvolap-workload` schemas whose evolutions
//! exercise the exact (`em`) and approximate (`am`) confidence folds,
//! and check that the shared generation-keyed memo cache never changes
//! a result — even across interleaved evolution operations.

use mvolap::core::aggregate::{evaluate, evaluate_par, AggregateQuery, ResultSet};
use mvolap::core::evolution::{self, SplitPart};
use mvolap::core::multiversion::{present, present_par, MultiVersionFactTable, PresentedFacts};
use mvolap::core::tmp::{all_modes, TemporalMode};
use mvolap::core::{Confidence, ExecContext, QueryMemo};
use mvolap::temporal::Instant;
use mvolap::workload::{generate, GeneratedWorkload, WorkloadConfig};

const THREADS: [usize; 3] = [1, 2, 8];

/// Three seeded configurations: the library default, a split/merge-heavy
/// schema, and a wider churning one. Together they must exercise both
/// split (am) and merge (em) mappings — asserted in the tests.
fn configs() -> Vec<WorkloadConfig> {
    let mut heavy = WorkloadConfig::small(11).with_periods(6);
    heavy.split_prob = 0.5;
    heavy.merge_prob = 0.3;
    let mut churn = WorkloadConfig::small(23).with_departments(16);
    churn.split_prob = 0.35;
    churn.merge_prob = 0.35;
    churn.reclassify_prob = 0.25;
    vec![WorkloadConfig::small(7), heavy, churn]
}

fn workloads() -> Vec<GeneratedWorkload> {
    let ws: Vec<GeneratedWorkload> = configs()
        .iter()
        .map(|c| generate(c).expect("seeded configs generate"))
        .collect();
    let splits: usize = ws.iter().map(|w| w.stats.splits).sum();
    let merges: usize = ws.iter().map(|w| w.stats.merges).sum();
    assert!(splits > 0, "workloads must exercise splits (am confidence)");
    assert!(merges > 0, "workloads must exercise merges (em confidence)");
    ws
}

/// Bit-level equality of two presentations: coordinates, times,
/// confidence codes, and the exact f64 bit pattern of every value.
fn assert_presented_identical(a: &PresentedFacts, b: &PresentedFacts, what: &str) {
    assert_eq!(a.unmapped_rows, b.unmapped_rows, "{what}: unmapped");
    assert_eq!(a.rows.len(), b.rows.len(), "{what}: row count");
    for (x, y) in a.rows.iter().zip(&b.rows) {
        assert_eq!(x.coords, y.coords, "{what}: coords");
        assert_eq!(x.time, y.time, "{what}: time");
        assert_eq!(x.cells.len(), y.cells.len(), "{what}: cell count");
        for (cx, cy) in x.cells.iter().zip(&y.cells) {
            assert_eq!(cx.confidence, cy.confidence, "{what}: confidence");
            assert_eq!(
                cx.value.map(f64::to_bits),
                cy.value.map(f64::to_bits),
                "{what}: value bits"
            );
        }
    }
}

/// Bit-level equality of two aggregation results.
fn assert_result_identical(a: &ResultSet, b: &ResultSet, what: &str) {
    assert_eq!(a.unmapped_rows, b.unmapped_rows, "{what}: unmapped");
    assert_eq!(a.rows.len(), b.rows.len(), "{what}: row count");
    for (x, y) in a.rows.iter().zip(&b.rows) {
        assert_eq!(x.time, y.time, "{what}: time key");
        assert_eq!(x.keys, y.keys, "{what}: group keys");
        for (cx, cy) in x.cells.iter().zip(&y.cells) {
            assert_eq!(cx.confidence, cy.confidence, "{what}: confidence");
            assert_eq!(
                cx.value.map(f64::to_bits),
                cy.value.map(f64::to_bits),
                "{what}: value bits"
            );
        }
    }
}

#[test]
fn present_par_is_bit_identical_across_threads() {
    for (i, w) in workloads().iter().enumerate() {
        let svs = w.tmd.structure_versions();
        for mode in all_modes(&svs) {
            // Sequential baseline = the threads-1 case of the same
            // morsel decomposition (a small morsel size forces several
            // morsels even on small workloads, exercising the merge).
            let base_ctx = ExecContext::new(1).with_morsel_size(64);
            let baseline = present_par(&w.tmd, &svs, &mode, &base_ctx, &QueryMemo::new()).unwrap();
            for threads in THREADS {
                let ctx = ExecContext::new(threads).with_morsel_size(64);
                let p = present_par(&w.tmd, &svs, &mode, &ctx, &QueryMemo::new()).unwrap();
                assert_presented_identical(
                    &baseline,
                    &p,
                    &format!("config {i}, mode {mode}, threads {threads}"),
                );
            }
        }
    }
}

#[test]
fn present_delegates_to_the_sequential_engine() {
    // The legacy entry point is literally the threads=1, fresh-memo
    // case of the engine — no drift allowed between the two paths.
    for (i, w) in workloads().iter().enumerate() {
        let svs = w.tmd.structure_versions();
        for mode in all_modes(&svs) {
            let a = present(&w.tmd, &svs, &mode).unwrap();
            let b = present_par(
                &w.tmd,
                &svs,
                &mode,
                &ExecContext::sequential(),
                &QueryMemo::new(),
            )
            .unwrap();
            assert_presented_identical(&a, &b, &format!("config {i}, mode {mode}"));
        }
    }
}

#[test]
fn evaluate_par_is_bit_identical_across_threads() {
    for (i, w) in workloads().iter().enumerate() {
        let svs = w.tmd.structure_versions();
        let latest = svs.last().expect("workloads have versions").id;
        for mode in [TemporalMode::Consistent, TemporalMode::Version(latest)] {
            let q = AggregateQuery::by_year(w.dim, "Division", mode.clone());
            let base_ctx = ExecContext::new(1).with_morsel_size(64);
            let baseline = evaluate_par(&w.tmd, &svs, &q, &base_ctx, &QueryMemo::new()).unwrap();
            // Some cell must carry a non-source confidence, or the
            // determinism claim never touches the ⊗cf merge path.
            if mode != TemporalMode::Consistent {
                assert!(
                    baseline
                        .rows
                        .iter()
                        .flat_map(|r| r.cells.iter())
                        .any(|c| c.confidence != Confidence::Source),
                    "config {i}: version mode should exercise mapped confidences"
                );
            }
            for threads in THREADS {
                let ctx = ExecContext::new(threads).with_morsel_size(64);
                let rs = evaluate_par(&w.tmd, &svs, &q, &ctx, &QueryMemo::new()).unwrap();
                assert_result_identical(
                    &baseline,
                    &rs,
                    &format!("config {i}, mode {mode}, threads {threads}"),
                );
            }
            // And the legacy sequential path agrees with the engine.
            let legacy = evaluate(&w.tmd, &svs, &q).unwrap();
            let seq = evaluate_par(
                &w.tmd,
                &svs,
                &q,
                &ExecContext::sequential(),
                &QueryMemo::new(),
            )
            .unwrap();
            assert_result_identical(&legacy, &seq, &format!("config {i}, mode {mode}, legacy"));
        }
    }
}

#[test]
fn mvft_infer_par_is_bit_identical_across_threads() {
    let w = &workloads()[1]; // the split/merge-heavy schema
    let baseline = MultiVersionFactTable::infer(&w.tmd).unwrap();
    for threads in THREADS {
        let ctx = ExecContext::new(threads); // default morsel size
        let memo = QueryMemo::new();
        let mv = MultiVersionFactTable::infer_par(&w.tmd, &ctx, &memo).unwrap();
        assert_eq!(mv.presentations().len(), baseline.presentations().len());
        for (a, b) in baseline.presentations().iter().zip(mv.presentations()) {
            assert_presented_identical(a, b, &format!("mvft threads {threads}"));
        }
        // The shared memo must actually engage across modes.
        if threads == 1 {
            let stats = memo.stats();
            assert!(
                stats.routes.hits > 0,
                "route cache should hit across presentation modes"
            );
        }
    }
}

/// Proptest: a shared memo cache and a cache-bypassing run (fresh memo
/// per query) agree bit-for-bit, including after interleaved evolution
/// operations — a stale cache entry surviving a generation bump would
/// surface here as a value or confidence mismatch.
#[test]
fn prop_shared_memo_agrees_with_bypass_across_evolutions() {
    mvolap_prng::check(16, 0x9a01, |rng| {
        let mut cfg = WorkloadConfig::small(rng.u64_below(1_000));
        cfg.split_prob = 0.3;
        cfg.merge_prob = 0.2;
        let mut w = generate(&cfg).expect("valid configurations generate");
        let shared = QueryMemo::new();
        let ctx = ExecContext::new(4).with_morsel_size(32);

        for round in 0..3u32 {
            let svs = w.tmd.structure_versions();
            let latest = svs.last().expect("versions exist").id;
            for mode in [TemporalMode::Consistent, TemporalMode::Version(latest)] {
                let q = AggregateQuery::by_year(w.dim, "Division", mode);
                let cached = evaluate_par(&w.tmd, &svs, &q, &ctx, &shared).unwrap();
                let bypass = evaluate_par(&w.tmd, &svs, &q, &ctx, &QueryMemo::new()).unwrap();
                assert_result_identical(&cached, &bypass, &format!("round {round}"));
            }

            // Interleave an evolution: split a live department in two.
            // The generation bump must invalidate the shared memo.
            let at = Instant::ym(2010 + round as i32, 1);
            let dim = w.tmd.dimension(w.dim).unwrap();
            let candidates: Vec<_> = dim
                .versions()
                .iter()
                .filter(|v| v.level.as_deref() == Some("Department") && v.validity.contains(at))
                .map(|v| (v.id, v.name.clone()))
                .collect();
            if let Some((victim, name)) = rng.choose(&candidates).cloned() {
                let parents = dim.ancestors_at(victim, at);
                let measures = w.tmd.measures().len();
                let before = w.tmd.generation();
                evolution::split(
                    &mut w.tmd,
                    w.dim,
                    victim,
                    &[
                        SplitPart::proportional(format!("{name}.a"), 0.5, measures),
                        SplitPart::proportional(format!("{name}.b"), 0.5, measures),
                    ],
                    at,
                    &parents,
                )
                .expect("split of a live department succeeds");
                assert!(
                    w.tmd.generation() > before,
                    "evolution must bump generation"
                );
            }
        }
        // The shared cache must have been exercised, not silently idle.
        let stats = shared.stats();
        assert!(
            stats.routes.hits + stats.ancestors.hits > 0,
            "shared memo never hit — cache not engaged"
        );
    });
}
