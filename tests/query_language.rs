//! End-to-end query-language coverage over the two-measure case study:
//! multi-measure selects, WHERE + FOR + mode clauses combined, grid
//! rendering, and the ALL MODES comparison — the full grammar surface
//! through the public facade.

use mvolap::core::case_study::case_study_two_measures;
use mvolap::core::Confidence;
use mvolap::query::{run, run_compare, QueryError};

#[test]
fn multi_measure_select_returns_both_columns() {
    let cs = case_study_two_measures();
    let rs = run(
        &cs.tmd,
        "SELECT sum(Turnover), sum(Profit) BY year, Org.Division IN MODE tcm",
    )
    .expect("query runs");
    assert_eq!(rs.measure_headers, vec!["Turnover", "Profit"]);
    let sales_2001 = rs
        .rows
        .iter()
        .find(|r| r.time == "2001" && r.keys[0] == "Sales")
        .expect("row present");
    assert_eq!(sales_2001.cells[0].value, Some(150.0));
    // Profit is 20 % of the amount in the fixture.
    assert_eq!(sales_2001.cells[1].value, Some(30.0));
}

#[test]
fn selecting_one_measure_restricts_columns() {
    let cs = case_study_two_measures();
    let rs = run(&cs.tmd, "SELECT sum(Profit) BY year IN MODE tcm").expect("query runs");
    assert_eq!(rs.measure_headers, vec!["Profit"]);
    assert_eq!(rs.rows.len(), 3);
}

#[test]
fn measures_map_with_their_own_factors() {
    // In the 2003 structure, Jones's 2002 turnover splits 40/60 while
    // profit splits 20/80 — per-measure mapping functions at work.
    let cs = case_study_two_measures();
    let rs = run(
        &cs.tmd,
        "SELECT sum(Turnover), sum(Profit) BY year, Org.Department \
         FOR 2002..2002 IN MODE VERSION 2",
    )
    .expect("query runs");
    let bill = rs
        .rows
        .iter()
        .find(|r| r.keys[0] == "Dpt.Bill")
        .expect("row");
    assert_eq!(bill.cells[0].value, Some(40.0)); // 0.4 × 100
    assert_eq!(bill.cells[1].value, Some(4.0)); // 0.2 × 20
    assert_eq!(bill.cells[0].confidence, Confidence::Approx);
    let paul = rs
        .rows
        .iter()
        .find(|r| r.keys[0] == "Dpt.Paul")
        .expect("row");
    assert_eq!(paul.cells[0].value, Some(60.0)); // 0.6 × 100
    assert_eq!(paul.cells[1].value, Some(16.0)); // 0.8 × 20
}

#[test]
fn where_for_and_mode_combine() {
    let cs = case_study_two_measures();
    let rs = run(
        &cs.tmd,
        "SELECT sum(Turnover) BY year, Org.Department \
         WHERE Org.Division = 'Sales' FOR 2002..2003 IN MODE VERSION 1",
    )
    .expect("query runs");
    // In the 2002 structure, Sales holds only Jones; Bill+Paul's 2003
    // facts fold back into him.
    assert!(rs.rows.iter().all(|r| r.keys[0] == "Dpt.Jones"));
    let jones_2003 = rs.rows.iter().find(|r| r.time == "2003").expect("row");
    assert_eq!(jones_2003.cells[0].value, Some(200.0));
    assert_eq!(jones_2003.cells[0].confidence, Confidence::Exact);
}

#[test]
fn grid_rendering_from_query_results() {
    let cs = case_study_two_measures();
    let rs = run(
        &cs.tmd,
        "SELECT sum(Turnover), sum(Profit) BY year, Org.Department \
         FOR 2002..2003 IN MODE VERSION 2",
    )
    .expect("query runs");
    let turnover = rs.render_grid(0);
    assert!(turnover.contains("40 (am)"));
    let profit = rs.render_grid(1);
    assert!(profit.contains("4 (am)"));
}

#[test]
fn all_modes_over_two_measures() {
    let cs = case_study_two_measures();
    let results = run_compare(
        &cs.tmd,
        "SELECT sum(Turnover), sum(Profit) BY year, Org.Department \
         FOR 2002..2003 IN ALL MODES",
    )
    .expect("comparison runs");
    assert_eq!(results.len(), 4);
    assert!(results[0].quality >= results[3].quality);
    // Every mode reports both measures.
    for r in &results {
        assert_eq!(r.result.measure_headers.len(), 2);
    }
}

#[test]
fn helpful_error_for_wrong_aggregate() {
    let cs = case_study_two_measures();
    let err = run(&cs.tmd, "SELECT avg(Turnover) BY year IN MODE tcm").unwrap_err();
    match err {
        QueryError::AggregatorMismatch {
            measure,
            requested,
            configured,
        } => {
            assert_eq!(measure, "Turnover");
            assert_eq!(requested, "avg");
            assert_eq!(configured, "sum");
        }
        other => panic!("expected aggregator mismatch, got {other:?}"),
    }
}

#[test]
fn quoted_member_names_with_special_characters() {
    let cs = case_study_two_measures();
    // R&D contains `&`; quoting handles it.
    let rs = run(
        &cs.tmd,
        "SELECT sum(Turnover) BY year, Org.Department \
         WHERE Org.Division IN ('R&D') IN MODE tcm",
    )
    .expect("query runs");
    assert!(!rs.rows.is_empty());
    assert!(rs
        .rows
        .iter()
        .all(|r| r.keys[0] == "Dpt.Brian" || r.keys[0] == "Dpt.Smith"));
    // Smith's 2001 facts were under Sales: excluded.
    assert!(!rs
        .rows
        .iter()
        .any(|r| r.time == "2001" && r.keys[0] == "Dpt.Smith"));
}
