//! Multi-dimensional schemas: the case study has one evolving dimension;
//! these tests exercise two — an evolving Org crossed with an evolving
//! Product line — including simultaneous splits in both dimensions
//! (cartesian route fan-out in the multiversion presentation).

use mvolap::core::aggregate::{evaluate, AggregateQuery, TimeLevel};
use mvolap::core::evolution::{self, SplitPart};
use mvolap::core::{
    Confidence, DimensionId, MeasureDef, MemberVersionId, MemberVersionSpec, MultiVersionFactTable,
    TemporalDimension, TemporalMode, Tmd,
};
use mvolap::prelude::{Granularity, Instant, Interval};

struct TwoDim {
    tmd: Tmd,
    org: DimensionId,
    product: DimensionId,
    dept_a: MemberVersionId,
    gadget: MemberVersionId,
}

/// Org: Division1 > {DeptA, DeptB}; Product: All > {Gadget, Widget}.
/// In 2003 DeptA splits 50/50 into DeptA1/DeptA2 *and* Gadget splits
/// 30/70 into GadgetS/GadgetL.
fn build() -> TwoDim {
    let mut tmd = Tmd::new("sales", Granularity::Month);
    let all = Interval::since(Instant::ym(2001, 1));

    let mut org = TemporalDimension::new("Org");
    let div = org.add_version(
        MemberVersionSpec::named("Division1").at_level("Division"),
        all,
    );
    let dept_a = org.add_version(
        MemberVersionSpec::named("DeptA").at_level("Department"),
        all,
    );
    let dept_b = org.add_version(
        MemberVersionSpec::named("DeptB").at_level("Department"),
        all,
    );
    org.add_relationship(dept_a, div, all).expect("edge");
    org.add_relationship(dept_b, div, all).expect("edge");
    let org_id = tmd.add_dimension(org).expect("fresh schema");

    let mut product = TemporalDimension::new("Product");
    let family = product.add_version(
        MemberVersionSpec::named("AllProducts").at_level("Family"),
        all,
    );
    let gadget = product.add_version(MemberVersionSpec::named("Gadget").at_level("Item"), all);
    let widget = product.add_version(MemberVersionSpec::named("Widget").at_level("Item"), all);
    product.add_relationship(gadget, family, all).expect("edge");
    product.add_relationship(widget, family, all).expect("edge");
    let product_id = tmd.add_dimension(product).expect("fresh schema");

    tmd.add_measure(MeasureDef::summed("Revenue"))
        .expect("fresh schema");

    // 2001-2002 facts on the original structure.
    for year in [2001, 2002] {
        let t = Instant::ym(year, 6);
        tmd.add_fact(&[dept_a, gadget], t, &[100.0]).expect("fact");
        tmd.add_fact(&[dept_a, widget], t, &[40.0]).expect("fact");
        tmd.add_fact(&[dept_b, gadget], t, &[60.0]).expect("fact");
    }

    // 2003: both dimensions evolve simultaneously.
    let t3 = Instant::ym(2003, 1);
    evolution::split(
        &mut tmd,
        org_id,
        dept_a,
        &[
            SplitPart::proportional("DeptA1", 0.5, 1),
            SplitPart::proportional("DeptA2", 0.5, 1),
        ],
        t3,
        &[div],
    )
    .expect("org split");
    evolution::split(
        &mut tmd,
        product_id,
        gadget,
        &[
            SplitPart::proportional("GadgetS", 0.3, 1),
            SplitPart::proportional("GadgetL", 0.7, 1),
        ],
        t3,
        &[family],
    )
    .expect("product split");

    TwoDim {
        tmd,
        org: org_id,
        product: product_id,
        dept_a,
        gadget,
    }
}

#[test]
fn structure_versions_span_both_dimensions() {
    let s = build();
    let svs = s.tmd.structure_versions();
    // One boundary (2003) shared by both dimensions: two versions.
    assert_eq!(svs.len(), 2);
    assert!(svs[0].contains(s.org, s.dept_a));
    assert!(!svs[1].contains(s.org, s.dept_a));
    assert!(svs[0].contains(s.product, s.gadget));
    assert!(!svs[1].contains(s.product, s.gadget));
}

#[test]
fn simultaneous_splits_fan_out_cartesianly() {
    // DeptA×Gadget 2002 facts presented in the 2003 structure must fan
    // out into 2 × 2 = 4 cells with multiplied factors.
    let s = build();
    let svs = s.tmd.structure_versions();
    let mode = TemporalMode::Version(svs[1].id);
    let mv = MultiVersionFactTable::infer(&s.tmd).expect("inference");
    let p = mv.for_mode(&mode).expect("mode present");
    let d_org = s.tmd.dimension(s.org).expect("org");
    let d_prod = s.tmd.dimension(s.product).expect("product");
    let name = |dim: &TemporalDimension, id| dim.version(id).expect("exists").name.clone();

    let mut fanned: Vec<(String, String, f64)> = p
        .rows
        .iter()
        .filter(|r| r.time.year() == 2002)
        .filter(|r| name(d_org, r.coords[0]).starts_with("DeptA"))
        .filter(|r| name(d_prod, r.coords[1]).starts_with("Gadget"))
        .map(|r| {
            (
                name(d_org, r.coords[0]),
                name(d_prod, r.coords[1]),
                r.cells[0].value.expect("known"),
            )
        })
        .collect();
    fanned.sort_by_key(|a| (a.0.clone(), a.1.clone()));
    assert_eq!(
        fanned,
        vec![
            ("DeptA1".into(), "GadgetL".into(), 100.0 * 0.5 * 0.7),
            ("DeptA1".into(), "GadgetS".into(), 100.0 * 0.5 * 0.3),
            ("DeptA2".into(), "GadgetL".into(), 100.0 * 0.5 * 0.7),
            ("DeptA2".into(), "GadgetS".into(), 100.0 * 0.5 * 0.3),
        ]
    );
    // Confidence combines across dimensions: am ⊗ am = am.
    for r in p.rows.iter().filter(|r| r.time.year() == 2002) {
        let org_mapped = name(d_org, r.coords[0]).starts_with("DeptA");
        let prod_mapped = name(d_prod, r.coords[1]).starts_with("Gadget");
        let expected = if org_mapped || prod_mapped {
            Confidence::Approx
        } else {
            Confidence::Source
        };
        assert_eq!(r.cells[0].confidence, expected);
    }
}

#[test]
fn mass_is_conserved_through_double_splits() {
    let s = build();
    let svs = s.tmd.structure_versions();
    let total = |mode: TemporalMode| -> f64 {
        let rs = evaluate(
            &s.tmd,
            &svs,
            &AggregateQuery {
                group_by: vec![],
                time_level: TimeLevel::All,
                measures: vec![],
                mode,
                time_range: None,
                filters: Vec::new(),
            },
        )
        .expect("evaluates");
        rs.rows[0].cells[0].value.expect("known")
    };
    let tcm = total(TemporalMode::Consistent);
    assert!((total(TemporalMode::Version(svs[0].id)) - tcm).abs() < 1e-9);
    assert!((total(TemporalMode::Version(svs[1].id)) - tcm).abs() < 1e-9);
}

#[test]
fn group_by_two_dimensions() {
    let s = build();
    let svs = s.tmd.structure_versions();
    let q = AggregateQuery {
        group_by: vec![(s.org, "Department".into()), (s.product, "Item".into())],
        time_level: TimeLevel::Year,
        measures: vec![],
        mode: TemporalMode::Consistent,
        time_range: Some(Interval::years(2001, 2001)),
        filters: Vec::new(),
    };
    let rs = evaluate(&s.tmd, &svs, &q).expect("evaluates");
    assert_eq!(rs.key_headers, vec!["Department", "Item"]);
    assert_eq!(rs.rows.len(), 3);
    let cell = rs
        .rows
        .iter()
        .find(|r| r.keys == vec!["DeptA".to_owned(), "Widget".to_owned()])
        .expect("cell present");
    assert_eq!(cell.cells[0].value, Some(40.0));
}

#[test]
fn mixed_mode_maps_one_dimension_only() {
    // §6 extension: present Org in the 2003 structure while Product
    // stays temporally consistent — DeptA's 2002 facts split, Gadget's
    // do not.
    let s = build();
    let svs = s.tmd.structure_versions();
    let mode = TemporalMode::Mixed(vec![(s.org, svs[1].id)]);
    let mv = mvolap::core::multiversion::present(&s.tmd, &svs, &mode).expect("presents");
    let d_org = s.tmd.dimension(s.org).expect("org");
    let d_prod = s.tmd.dimension(s.product).expect("product");
    let rows_2002: Vec<(String, String, f64)> = mv
        .rows
        .iter()
        .filter(|r| r.time.year() == 2002)
        .map(|r| {
            (
                d_org.version(r.coords[0]).expect("exists").name.clone(),
                d_prod.version(r.coords[1]).expect("exists").name.clone(),
                r.cells[0].value.expect("known"),
            )
        })
        .collect();
    // Gadget survives untouched; DeptA fans into A1/A2.
    assert!(rows_2002
        .iter()
        .any(|(o, p, v)| o == "DeptA1" && p == "Gadget" && *v == 50.0));
    assert!(rows_2002
        .iter()
        .any(|(o, p, v)| o == "DeptA2" && p == "Gadget" && *v == 50.0));
    assert!(rows_2002.iter().all(|(_, p, _)| !p.starts_with("GadgetS")));
    // Product side was untouched, Org mapping downgrades confidence.
    let q = AggregateQuery {
        group_by: vec![(s.product, "Item".into())],
        time_level: TimeLevel::All,
        measures: vec![],
        mode,
        time_range: None,
        filters: Vec::new(),
    };
    let rs = evaluate(&s.tmd, &svs, &q).expect("evaluates");
    let gadget = rs.rows.iter().find(|r| r.keys[0] == "Gadget").expect("row");
    // 2001+2002 gadget facts: (100+60)*2 = 320; 2003 facts on GadgetS/L
    // group separately (product stays consistent).
    assert_eq!(gadget.cells[0].value, Some(320.0));
}

#[test]
fn unmapped_facts_are_counted_when_no_route_exists() {
    // Delete DeptB in 2003 without any mapping: its facts cannot be
    // presented in the 2003 structure.
    let mut s = build();
    let dept_b = s
        .tmd
        .dimension(s.org)
        .expect("org")
        .version_named_at("DeptB", Instant::ym(2002, 6))
        .expect("exists")
        .id;
    evolution::delete(&mut s.tmd, s.org, dept_b, Instant::ym(2003, 1)).expect("delete");
    let svs = s.tmd.structure_versions();
    let last = svs.last().expect("versions").id;
    let p = mvolap::core::multiversion::present(&s.tmd, &svs, &TemporalMode::Version(last))
        .expect("presents");
    // DeptB had 2 facts (2001, 2002 gadget rows).
    assert_eq!(p.unmapped_rows, 2);
}
