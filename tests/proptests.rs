//! Cross-crate randomized property tests: model invariants that must
//! hold for *any* evolving workload, not just the paper's case study.
//! Driven by the in-repo deterministic generator (`mvolap_prng::check`
//! replaces the external `proptest` crate, which the offline build
//! cannot fetch).

use mvolap::core::aggregate::{evaluate, AggregateQuery, TimeLevel};
use mvolap::core::{
    infer_structure_versions, Confidence, DeltaMvft, MultiVersionFactTable, TemporalMode,
};
use mvolap::workload::{generate, GeneratedWorkload, WorkloadConfig};
use mvolap_prng::{check, Rng};

const CASES: u64 = 24;

/// A generated workload with evolution but no creations/deletions (so
/// every fact is mappable in every mode).
fn conservative_workload(rng: &mut Rng) -> GeneratedWorkload {
    let mut cfg = WorkloadConfig::small(rng.u64_below(1_000))
        .with_periods(rng.u32_in(2, 6))
        .with_departments(rng.usize_in(3, 12))
        .with_facts_per_department(2);
    cfg.split_prob = rng.f64_in(0.0, 0.4);
    cfg.merge_prob = rng.f64_in(0.0, 0.2);
    cfg.reclassify_prob = rng.f64_in(0.0, 0.3);
    cfg.create_prob = 0.0;
    cfg.delete_prob = 0.0;
    generate(&cfg).expect("valid configurations generate")
}

/// A workload allowing creations and deletions too.
fn any_workload(rng: &mut Rng) -> GeneratedWorkload {
    let mut cfg = WorkloadConfig::small(rng.u64_below(1_000))
        .with_periods(rng.u32_in(2, 5))
        .with_departments(rng.usize_in(3, 10))
        .with_facts_per_department(2);
    cfg.split_prob = rng.f64_in(0.0, 0.3);
    cfg.delete_prob = rng.f64_in(0.0, 0.2);
    cfg.create_prob = 0.1;
    generate(&cfg).expect("valid configurations generate")
}

fn grand_total(w: &GeneratedWorkload, mode: TemporalMode) -> (Option<f64>, usize) {
    let svs = w.tmd.structure_versions();
    let rs = evaluate(
        &w.tmd,
        &svs,
        &AggregateQuery {
            group_by: vec![],
            time_level: TimeLevel::All,
            measures: vec![],
            mode,
            time_range: None,
            filters: Vec::new(),
        },
    )
    .expect("grand total evaluates");
    let value = rs.rows.first().and_then(|r| r.cells[0].value);
    (value, rs.unmapped_rows)
}

/// Measure mass is conserved in every temporal mode when every
/// transition carries a total mapping (splits sum to 1, merges map
/// identically forward).
#[test]
fn mass_conserved_across_modes() {
    check(CASES, 0xa001, |rng| {
        let w = conservative_workload(rng);
        let (tcm, _) = grand_total(&w, TemporalMode::Consistent);
        let tcm = tcm.expect("facts exist");
        for sv in w.tmd.structure_versions() {
            let (v, unmapped) = grand_total(&w, TemporalMode::Version(sv.id));
            assert_eq!(unmapped, 0);
            let v = v.expect("all facts map");
            assert!(
                (tcm - v).abs() < 1e-6 * tcm.abs().max(1.0),
                "mode {} total {} != tcm {}",
                sv.id,
                v,
                tcm
            );
        }
    });
}

/// The structure versions always partition the covered timeline:
/// chronologically ordered, gap-free inside coverage, adjacent versions
/// differing in membership.
#[test]
fn structure_versions_partition_history() {
    check(CASES, 0xa002, |rng| {
        let w = any_workload(rng);
        let svs = w.tmd.structure_versions();
        assert!(!svs.is_empty());
        for pair in svs.windows(2) {
            // Ordered and adjacent (the workload dimension has no gaps:
            // divisions are eternal).
            assert_eq!(pair[0].interval.end().succ(), pair[1].interval.start());
            // Adjacent versions must differ in members or edges, else
            // they would be one version.
            assert!(pair[0].members != pair[1].members || pair[0].edges != pair[1].edges);
        }
        // The last version is open (divisions live forever).
        assert!(svs.last().expect("nonempty").interval.is_current());
    });
}

/// Definition 11's inclusion: the restriction of the multiversion fact
/// table to tcm is the consistent fact table with `sd` confidence
/// everywhere.
#[test]
fn tcm_presentation_is_source_data() {
    check(CASES, 0xa003, |rng| {
        let w = any_workload(rng);
        let mv = MultiVersionFactTable::infer(&w.tmd).expect("inference");
        let tcm = mv.for_mode(&TemporalMode::Consistent).expect("tcm");
        assert_eq!(tcm.unmapped_rows, 0);
        let total: f64 = tcm.rows.iter().filter_map(|r| r.cells[0].value).sum();
        let fact_total: f64 = (0..w.tmd.facts().len())
            .map(|r| w.tmd.facts().value(r, 0))
            .sum();
        assert!((total - fact_total).abs() < 1e-6);
        for row in &tcm.rows {
            for c in &row.cells {
                assert_eq!(c.confidence, Confidence::Source);
            }
        }
    });
}

/// The delta (differences-only) materialisation reconstructs exactly
/// the full materialisation, for every mode.
#[test]
fn delta_equals_full_materialisation() {
    check(CASES, 0xa004, |rng| {
        let w = any_workload(rng);
        let full = MultiVersionFactTable::infer(&w.tmd).expect("full");
        let delta = DeltaMvft::infer(&w.tmd).expect("delta");
        for sv in w.tmd.structure_versions() {
            let mode = TemporalMode::Version(sv.id);
            let f = full.for_mode(&mode).expect("mode present");
            let r = delta.reconstruct(&w.tmd, &mode).expect("reconstructs");
            assert_eq!(f.rows.len(), r.rows.len());
            assert_eq!(f.unmapped_rows, r.unmapped_rows);
            for row in &f.rows {
                let other = r
                    .rows
                    .iter()
                    .find(|o| o.coords == row.coords && o.time == row.time)
                    .expect("row present in reconstruction");
                for (a, b) in row.cells.iter().zip(&other.cells) {
                    assert_eq!(a.confidence, b.confidence);
                    match (a.value, b.value) {
                        (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                        (None, None) => {}
                        _ => panic!("value/unknown mismatch"),
                    }
                }
            }
        }
    });
}

/// Mapped cells are never *more* confident than source data, and
/// versions that need no mapping stay fully source.
#[test]
fn confidence_never_exceeds_source() {
    check(CASES, 0xa005, |rng| {
        let w = any_workload(rng);
        let mv = MultiVersionFactTable::infer(&w.tmd).expect("inference");
        for p in mv.presentations() {
            for row in &p.rows {
                for c in &row.cells {
                    assert!(c.confidence <= Confidence::Source);
                    if c.value.is_none() {
                        assert_eq!(c.confidence, Confidence::Unknown);
                    }
                }
            }
        }
    });
}

/// Roll-up never changes grand totals: aggregating departments or
/// divisions or everything gives the same overall sum (within a mode).
#[test]
fn rollup_preserves_totals() {
    check(CASES, 0xa006, |rng| {
        let w = conservative_workload(rng);
        let svs = w.tmd.structure_versions();
        let modes: Vec<TemporalMode> = std::iter::once(TemporalMode::Consistent)
            .chain(svs.iter().map(|sv| TemporalMode::Version(sv.id)))
            .collect();
        for mode in modes {
            let mut totals = Vec::new();
            for level in [Some("Department"), Some("Division"), None] {
                let q = AggregateQuery {
                    group_by: level
                        .map(|l| vec![(w.dim, l.to_owned())])
                        .unwrap_or_default(),
                    time_level: TimeLevel::All,
                    measures: vec![],
                    mode: mode.clone(),
                    time_range: None,
                    filters: Vec::new(),
                };
                let rs = evaluate(&w.tmd, &svs, &q).expect("evaluates");
                let t: f64 = rs.rows.iter().filter_map(|r| r.cells[0].value).sum();
                totals.push(t);
            }
            assert!((totals[0] - totals[1]).abs() < 1e-6 * totals[0].abs().max(1.0));
            assert!((totals[1] - totals[2]).abs() < 1e-6 * totals[1].abs().max(1.0));
        }
    });
}

/// `infer_structure_versions` is deterministic and stable under
/// recomputation.
#[test]
fn structure_version_inference_is_deterministic() {
    check(CASES, 0xa007, |rng| {
        let w = any_workload(rng);
        let a = infer_structure_versions(w.tmd.dimensions());
        let b = w.tmd.structure_versions();
        assert_eq!(a, b);
    });
}

/// Persistence round-trips any generated schema: the reloaded schema
/// answers every mode's grand total identically and re-infers the same
/// structure versions.
#[test]
fn persistence_roundtrips_any_workload() {
    check(CASES, 0xa008, |rng| {
        let w = any_workload(rng);
        let mut buf = Vec::new();
        mvolap::core::persist::write_tmd(&w.tmd, &mut buf).expect("write");
        let back = mvolap::core::persist::read_tmd(&mut buf.as_slice()).expect("read");
        assert_eq!(back.facts().len(), w.tmd.facts().len());
        assert_eq!(back.structure_versions(), w.tmd.structure_versions());
        assert_eq!(
            back.evolution_log().entries().len(),
            w.tmd.evolution_log().entries().len()
        );
        let b = GeneratedWorkload {
            tmd: back,
            dim: w.dim,
            stats: w.stats.clone(),
        };
        for sv in w.tmd.structure_versions() {
            let (x, ux) = grand_total(&w, TemporalMode::Version(sv.id));
            let (y, uy) = grand_total(&b, TemporalMode::Version(sv.id));
            assert_eq!(ux, uy);
            match (x, y) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                (x, y) => assert_eq!(x, y),
            }
        }
    });
}

/// The incremental cube build agrees with the from-facts build for
/// every version mode of any conservative workload.
#[test]
fn incremental_cube_matches_base() {
    check(CASES, 0xa009, |rng| {
        use mvolap::cube::{Cube, CubeSpec};
        let w = conservative_workload(rng);
        let svs = w.tmd.structure_versions();
        let mode = TemporalMode::Version(svs.last().expect("versions").id);
        let base = Cube::build(&w.tmd, &svs, CubeSpec::for_mode(mode.clone())).expect("builds");
        let incr = Cube::build_incremental(&w.tmd, &svs, CubeSpec::for_mode(mode)).expect("builds");
        for (node, base_rs) in base.iter() {
            let incr_rs = incr.node(&node.levels, node.time_level).expect("node");
            assert_eq!(incr_rs.rows.len(), base_rs.rows.len());
            for row in &base_rs.rows {
                let other = incr_rs
                    .rows
                    .iter()
                    .find(|r| r.time == row.time && r.keys == row.keys)
                    .expect("row present");
                for (a, b) in row.cells.iter().zip(&other.cells) {
                    assert_eq!(a.confidence, b.confidence);
                    match (a.value, b.value) {
                        (Some(x), Some(y)) => assert!((x - y).abs() < 1e-6),
                        (x, y) => assert_eq!(x, y),
                    }
                }
            }
        }
    });
}
