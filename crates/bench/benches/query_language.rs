//! Query-language costs (DESIGN.md `bench_query`): lexing+parsing alone,
//! planning, and end-to-end execution.
//!
//! Expected shape: parse and plan are microseconds and independent of
//! data volume; execution dominates and scales with facts.

use mvolap_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvolap_query::{parse, plan, run_with_versions};
use mvolap_workload::{generate, WorkloadConfig};

const Q: &str = "SELECT sum(Amount) BY year, Org.Division FOR 2001..2004 IN MODE tcm";
const Q_MAPPED: &str = "SELECT sum(Amount) BY year, Org.Department IN MODE VERSION 0";

fn bench_parse(c: &mut Criterion) {
    c.bench_function("query/parse", |b| b.iter(|| parse(Q).expect("parses")));
}

fn bench_plan_and_run(c: &mut Criterion) {
    let mut cfg = WorkloadConfig::small(55)
        .with_departments(25)
        .with_periods(4)
        .with_facts_per_department(8);
    cfg.create_prob = 0.0;
    cfg.delete_prob = 0.0;
    let w = generate(&cfg).expect("workload generates");
    let svs = w.tmd.structure_versions();

    let ast = parse(Q).expect("parses");
    c.bench_function("query/plan", |b| {
        b.iter(|| plan(&w.tmd, &svs, &ast).expect("plans"))
    });

    let mut group = c.benchmark_group("query/run");
    group.sample_size(20);
    for (label, text) in [("tcm", Q), ("mapped", Q_MAPPED)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &text, |b, text| {
            b.iter(|| run_with_versions(&w.tmd, &svs, text).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse, bench_plan_and_run);
criterion_main!(benches);
