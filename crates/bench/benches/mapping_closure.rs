//! Mapping-closure resolution cost (DESIGN.md `bench_mapping_closure`):
//! composing routes across chains of transitions of growing length, and
//! across split fan-outs of growing width.
//!
//! Expected shape: linear in chain length; linear in fan-out width.

use mvolap_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvolap_core::{
    MappingGraph, MappingRelationship, MeasureMapping, MemberVersionId, RouteDirection,
};

/// A chain v0 -> v1 -> … -> vn of transform-style equivalences.
fn chain(n: usize) -> (MappingGraph, MemberVersionId, MemberVersionId) {
    let mut g = MappingGraph::new();
    for i in 0..n {
        g.add(MappingRelationship::uniform(
            MemberVersionId(i as u32),
            MemberVersionId(i as u32 + 1),
            MeasureMapping::approx_scale(0.99),
            MeasureMapping::EXACT_IDENTITY,
            1,
        ))
        .expect("chain edge");
    }
    (g, MemberVersionId(0), MemberVersionId(n as u32))
}

/// One member split into `width` parts.
fn fanout(width: usize) -> (MappingGraph, MemberVersionId) {
    let mut g = MappingGraph::new();
    let source = MemberVersionId(0);
    let share = 1.0 / width as f64;
    for i in 0..width {
        g.add(MappingRelationship::uniform(
            source,
            MemberVersionId(i as u32 + 1),
            MeasureMapping::approx_scale(share),
            MeasureMapping::EXACT_IDENTITY,
            1,
        ))
        .expect("fanout edge");
    }
    (g, source)
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_closure/chain");
    for n in [1usize, 4, 16, 64] {
        let (g, source, target) = chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let routes = g.resolve(source, 1, RouteDirection::Forward, |id| id == target);
                assert_eq!(routes.len(), 1);
                routes
            })
        });
    }
    group.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_closure/fanout");
    for width in [2usize, 8, 32, 128] {
        let (g, source) = fanout(width);
        group.bench_with_input(BenchmarkId::from_parameter(width), &g, |b, g| {
            b.iter(|| {
                let routes = g.resolve(source, 1, RouteDirection::Forward, |id| id.0 > 0);
                assert_eq!(routes.len(), width);
                routes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain, bench_fanout);
criterion_main!(benches);
