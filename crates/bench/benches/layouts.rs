//! Physical dimension layouts (DESIGN.md `bench_layouts`): the §5.1
//! discussion made operational — group-by queries against the star
//! (denormalised), snowflake (normalised) and parent-child exports of
//! the same evolving dimension, executed by the relational engine.
//!
//! Expected shape: star wins for roll-up group-bys (the hierarchy is
//! pre-joined); snowflake pays one hash join per level; parent-child
//! pays per-edge reconstruction (modelled here as join against the
//! edge list).

use mvolap_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvolap_core::logical::{export_parent_child, export_snowflake, export_star};
use mvolap_core::{logical, MultiVersionFactTable};
use mvolap_storage::{AggCall, AggFunc, Predicate, Table};
use mvolap_workload::{generate, WorkloadConfig};

struct Setup {
    star: Table,
    snowflake: Vec<Table>,
    parent_child: Table,
    fact: Table,
}

fn setup(departments: usize) -> Setup {
    let mut cfg = WorkloadConfig::small(91)
        .with_departments(departments)
        .with_periods(4)
        .with_facts_per_department(6);
    // Parent-child export requires single hierarchies; the generated
    // workload never creates multi-parent members, so all layouts apply.
    cfg.create_prob = 0.0;
    cfg.delete_prob = 0.0;
    let w = generate(&cfg).expect("workload generates");
    let mv = MultiVersionFactTable::infer(&w.tmd).expect("inference");
    Setup {
        star: export_star(&w.tmd, w.dim).expect("star"),
        snowflake: export_snowflake(&w.tmd, w.dim).expect("snowflake"),
        parent_child: export_parent_child(&w.tmd, w.dim).expect("parent-child"),
        fact: logical::export_multiversion_fact(&w.tmd, &mv).expect("fact"),
    }
}

/// Group the tcm slice of the fact table by division through each
/// layout's join path.
fn bench_group_by(c: &mut Criterion) {
    let mut group = c.benchmark_group("layouts/groupby_division");
    group.sample_size(10);
    for departments in [20usize, 80] {
        let s = setup(departments);
        let tcm = s.fact.filter(&Predicate::eq("tmp_id", 0)).expect("filter");

        group.bench_with_input(BenchmarkId::new("star", departments), &s, |b, s| {
            b.iter(|| {
                tcm.join(&s.star, "Org_id", "mv_id")
                    .expect("join")
                    .group_by(&["Division"], &[AggCall::new(AggFunc::Sum, "Amount")])
                    .expect("group by")
            })
        });

        group.bench_with_input(BenchmarkId::new("snowflake", departments), &s, |b, s| {
            b.iter(|| {
                // Department level table, then its parent (division).
                let dept = &s.snowflake[1];
                let div = &s.snowflake[0];
                tcm.join(dept, "Org_id", "mv_id")
                    .expect("join dept")
                    .join(div, "parent_id", "mv_id")
                    .expect("join div")
                    .group_by(&["member_right"], &[AggCall::new(AggFunc::Sum, "Amount")])
                    .expect("group by")
            })
        });

        group.bench_with_input(BenchmarkId::new("parent_child", departments), &s, |b, s| {
            b.iter(|| {
                // Join the edge list to climb one level.
                tcm.join(&s.parent_child, "Org_id", "mv_id")
                    .expect("join edges")
                    .group_by(&["parent_id"], &[AggCall::new(AggFunc::Sum, "Amount")])
                    .expect("group by")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_group_by);
criterion_main!(benches);
