//! Session-server throughput: queries/second and commits/second at one
//! versus N concurrent sessions against a live TCP loopback
//! [`SessionServer`], plus the fsyncs-per-commit ratio that group
//! commit buys.
//!
//! Each iteration spawns the session threads fresh (connect, run OPS
//! requests, disconnect) so the measurement covers the full session
//! lifecycle a real client pays. Expected shape: read throughput
//! scales with sessions until the executor saturates; commit
//! throughput scales *super*-linearly per-fsync because concurrent
//! committers coalesce into shared batches — the N-session run should
//! show strictly fewer fsyncs per commit than the single-session run.
//!
//! A second sweep pits the pooled poll-loop server against the legacy
//! thread-per-session baseline (`workers: 0`) under the same
//! concurrent query load, with [`IDLE_SESSIONS`] extra connections
//! held open but idle throughout — the scenario the pool exists for.
//! CI gates on the resulting keys: `queries_per_sec_pool_4` must not
//! fall below the baseline recorded in the same run.
//!
//! Emits `BENCH_server.json` at the workspace root.

use mvolap_bench::harness::{BenchmarkId, Criterion, Throughput};
use mvolap_core::case_study;
use mvolap_durable::{DurableTmd, FactRow, GroupCommit, GroupConfig, Io, Options, WalRecord};
use mvolap_replica::{NetAddr, NetConfig};
use mvolap_server::{ServerOptions, SessionClient, SessionServer};
use mvolap_temporal::Instant;

/// Requests each session issues per iteration.
const OPS: usize = 8;
/// Session count for the concurrent variants.
const SESSIONS: usize = 4;
/// Idle connections held open during the pool-versus-baseline sweep.
const IDLE_SESSIONS: usize = 64;

const QUERY: &str = "SELECT sum(Amount) BY year, Org.Division FOR 2001..2003 IN MODE tcm";

/// One fact batch aimed at a case-study leaf — the smallest real
/// journaled write.
fn fact(leaf: mvolap_core::MemberVersionId, i: usize) -> WalRecord {
    WalRecord::FactBatch {
        rows: vec![FactRow {
            coords: vec![leaf],
            at: Instant::ym(2003, 1 + (i % 12) as u32),
            values: vec![i as f64],
        }],
    }
}

/// Runs `sessions` client threads, each issuing `OPS` requests built
/// by `op`, and joins them — one benchmark iteration.
fn run_sessions(
    addr: &NetAddr,
    sessions: usize,
    op: impl Fn(&mut SessionClient, usize) + Send + Copy + 'static,
) {
    let handles: Vec<_> = (0..sessions)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = SessionClient::connect(addr, NetConfig::default());
                for i in 0..OPS {
                    op(&mut client, i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }
}

fn bench_queries(c: &mut Criterion, addr: &NetAddr, sessions: usize) {
    let mut group = c.benchmark_group("server/queries");
    group.sample_size(10);
    group.throughput(Throughput::Elements((sessions * OPS) as u64));
    group.bench_with_input(BenchmarkId::new("sessions", sessions), addr, |b, addr| {
        b.iter(|| {
            run_sessions(addr, sessions, |client, _| {
                client.query(QUERY).expect("query");
            });
        })
    });
    group.finish();
}

fn bench_commits(
    c: &mut Criterion,
    addr: &NetAddr,
    leaf: mvolap_core::MemberVersionId,
    sessions: usize,
) {
    let mut group = c.benchmark_group("server/commits");
    group.sample_size(10);
    group.throughput(Throughput::Elements((sessions * OPS) as u64));
    group.bench_with_input(BenchmarkId::new("sessions", sessions), addr, |b, addr| {
        b.iter(|| {
            run_sessions(addr, sessions, move |client, i| {
                client.commit(&fact(leaf, i)).expect("commit");
            });
        })
    });
    group.finish();
}

/// The pool-versus-baseline sweep leg: a fresh server over its own
/// store with the given worker count (`0` = legacy thread per
/// session), [`IDLE_SESSIONS`] idle clients parked on it for the whole
/// measurement, and [`SESSIONS`] concurrent query sessions timed.
fn bench_pool(c: &mut Criterion, workers: usize) {
    let dir = std::env::temp_dir().join(format!(
        "mvolap_bench_srv_{}_w{workers}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let cs = case_study::case_study();
    let store =
        DurableTmd::create_with(&dir, cs.tmd, Options::default(), Io::plain()).expect("store");
    let commit = GroupCommit::new(store, GroupConfig::default());
    let mut server = SessionServer::spawn(
        &NetAddr::parse("127.0.0.1:0").expect("addr"),
        commit,
        ServerOptions {
            workers,
            ..ServerOptions::default()
        },
    )
    .expect("server");
    let addr = server.addr().clone();

    // Park the idle fleet: connect, prove liveness with one ping, then
    // hold the socket open across the whole measurement. Under the
    // baseline each of these costs a server thread; under the pool
    // they are polled file descriptors.
    let mut idle: Vec<SessionClient> = (0..IDLE_SESSIONS)
        .map(|_| SessionClient::connect(addr.clone(), NetConfig::default()))
        .collect();
    for client in &mut idle {
        client.ping().expect("idle ping");
    }

    let mut group = c.benchmark_group("server/pool_queries");
    group.sample_size(10);
    group.throughput(Throughput::Elements((SESSIONS * OPS) as u64));
    group.bench_with_input(BenchmarkId::new("workers", workers), &addr, |b, addr| {
        b.iter(|| {
            run_sessions(addr, SESSIONS, |client, _| {
                client.query(QUERY).expect("query");
            });
        })
    });
    group.finish();

    drop(idle);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Fsyncs-per-commit over a benchmark run, from the journal counters.
fn fsync_ratio(group: &GroupCommit, before: (u64, u64)) -> f64 {
    let commits = group.wal_position() - before.1;
    if commits == 0 {
        return 0.0;
    }
    (group.fsyncs() - before.0) as f64 / commits as f64
}

fn main() {
    let base = std::env::temp_dir().join(format!("mvolap_bench_srv_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let cs = case_study::case_study();
    let leaf = cs.bill;
    let store =
        DurableTmd::create_with(&base, cs.tmd, Options::default(), Io::plain()).expect("store");
    let group = GroupCommit::new(store, GroupConfig::default());
    let server = SessionServer::spawn(
        &NetAddr::parse("127.0.0.1:0").expect("addr"),
        group,
        ServerOptions::default(),
    )
    .expect("server");
    let group = server.group();
    let addr = server.addr().clone();

    let mut c = Criterion::from_env();
    bench_queries(&mut c, &addr, 1);
    bench_queries(&mut c, &addr, SESSIONS);

    let mark = (group.fsyncs(), group.wal_position());
    bench_commits(&mut c, &addr, leaf, 1);
    let fsyncs_per_commit_1 = fsync_ratio(&group, mark);
    let mark = (group.fsyncs(), group.wal_position());
    bench_commits(&mut c, &addr, leaf, SESSIONS);
    let fsyncs_per_commit_n = fsync_ratio(&group, mark);

    for workers in [0, 1, 4] {
        bench_pool(&mut c, workers);
    }
    c.final_summary();

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Median ns per iteration -> requests per second for that variant.
    let per_sec = |needle: &str, sessions: usize| {
        c.results()
            .iter()
            .find(|r| r.name.contains(needle))
            .map(|r| (sessions * OPS) as f64 * 1e9 / r.median_ns)
            .unwrap_or(0.0)
    };
    let q1 = per_sec("queries/sessions/1", 1);
    let qn = per_sec(&format!("queries/sessions/{SESSIONS}"), SESSIONS);
    let c1 = per_sec("commits/sessions/1", 1);
    let cn = per_sec(&format!("commits/sessions/{SESSIONS}"), SESSIONS);
    let pool = |workers: usize| per_sec(&format!("pool_queries/workers/{workers}"), SESSIONS);
    let baseline = pool(0);
    let pool_1 = pool(1);
    let pool_4 = pool(4);
    eprintln!(
        "queries/s: {q1:.0} (1 session) -> {qn:.0} ({SESSIONS} sessions); \
         commits/s: {c1:.0} -> {cn:.0}; \
         fsyncs/commit: {fsyncs_per_commit_1:.2} -> {fsyncs_per_commit_n:.2}"
    );
    eprintln!(
        "pool sweep ({IDLE_SESSIONS} idle sessions held): \
         baseline {baseline:.0} q/s, pool(1) {pool_1:.0} q/s, pool(4) {pool_4:.0} q/s"
    );

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"sessions\": {SESSIONS},\n  \
         \"ops_per_session\": {OPS},\n  \
         \"queries_per_sec_1\": {q1:.1},\n  \"queries_per_sec_n\": {qn:.1},\n  \
         \"commits_per_sec_1\": {c1:.1},\n  \"commits_per_sec_n\": {cn:.1},\n  \
         \"queries_per_sec_baseline\": {baseline:.1},\n  \
         \"queries_per_sec_pool_1\": {pool_1:.1},\n  \
         \"queries_per_sec_pool_4\": {pool_4:.1},\n  \
         \"sessions_held_idle\": {IDLE_SESSIONS},\n  \
         \"fsyncs_per_commit_1\": {fsyncs_per_commit_1:.3},\n  \
         \"fsyncs_per_commit_n\": {fsyncs_per_commit_n:.3},\n  \"results\": {}\n}}\n",
        c.to_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    drop(server);
    std::fs::remove_dir_all(&base).ok();
}
