//! Quorum-commit cost: what majority acknowledgement adds on top of
//! local durability. The same fact batch is committed through a
//! single-node group (quorum 1/1 — local fsync only) and through a
//! three-node [`ClusterSet`] (quorum 2/3 — fsync plus supervision
//! rounds until a member confirms), over the in-memory channel
//! transport so the delta measures protocol work, not network jitter.
//!
//! Expected shape: the three-node commit pays a small constant factor
//! (frame shipping + member fsync + ack) per record; transport steps
//! per commit stay bounded by the batch configuration rather than
//! growing with history. Emits `BENCH_quorum.json` at the workspace
//! root.

use mvolap_bench::harness::{BenchmarkId, Criterion, Throughput};
use mvolap_cluster::{ClusterConfig, ClusterSet};
use mvolap_core::case_study;
use mvolap_durable::{FactRow, GroupConfig, Io, Options, TimeSource, WalRecord};
use mvolap_replica::ChannelTransport;
use mvolap_temporal::Instant;

/// Records committed per benchmark iteration.
const OPS: usize = 8;

/// One fact batch aimed at a case-study leaf — the smallest real
/// journaled write.
fn fact(leaf: mvolap_core::MemberVersionId, i: usize) -> WalRecord {
    WalRecord::FactBatch {
        rows: vec![FactRow {
            coords: vec![leaf],
            at: Instant::ym(2003, 1 + (i % 12) as u32),
            values: vec![i as f64],
        }],
    }
}

/// A group with `members` member replicas next to the primary.
fn build_set(base: &std::path::Path, members: usize) -> ClusterSet<ChannelTransport> {
    let cs = case_study::case_study();
    let mut set = ClusterSet::bootstrap(
        base,
        cs.tmd,
        Options::default(),
        GroupConfig {
            hold_ms: 0,
            time: TimeSource::default(),
        },
        ClusterConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .expect("bootstrap");
    for m in 0..members {
        set.add_member(&format!("m{}", m + 1), Io::plain());
    }
    set
}

fn bench_commits(
    c: &mut Criterion,
    set: &mut ClusterSet<ChannelTransport>,
    leaf: mvolap_core::MemberVersionId,
    nodes: usize,
) {
    let mut group = c.benchmark_group("quorum/commits");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, _| {
        b.iter(|| {
            for i in 0..OPS {
                set.commit_quorum(fact(leaf, i)).expect("quorum commit");
            }
        })
    });
    group.finish();
}

fn main() {
    let base = std::env::temp_dir().join(format!("mvolap_bench_quorum_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let leaf = case_study::case_study().bill;

    let mut c = Criterion::from_env();

    // Quorum 1/1: commit_quorum is satisfied by the local fsync alone.
    let mut single = build_set(&base.join("n1"), 0);
    bench_commits(&mut c, &mut single, leaf, 1);
    let single_commits = single.primary().expect("primary").wal_position() - 1;
    let single_steps = single.transport_steps();
    drop(single);

    // Quorum 2/3: the same path must also ship the tail and collect a
    // member ack before the watermark passes the record.
    let mut triple = build_set(&base.join("n3"), 2);
    let mark_steps = triple.transport_steps();
    bench_commits(&mut c, &mut triple, leaf, 3);
    let triple_commits = triple.primary().expect("primary").wal_position() - 1;
    let triple_steps = triple.transport_steps() - mark_steps;
    let quorum_required = triple.quorum_required();
    drop(triple);

    c.final_summary();

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Median ns per iteration -> per-commit latency and commits/sec.
    let stats = |needle: &str| {
        c.results()
            .iter()
            .find(|r| r.name.contains(needle))
            .map(|r| {
                let per_commit_ns = r.median_ns / OPS as f64;
                (per_commit_ns / 1e3, 1e9 / per_commit_ns)
            })
            .unwrap_or((0.0, 0.0))
    };
    let (lat1, tput1) = stats("commits/nodes/1");
    let (lat3, tput3) = stats("commits/nodes/3");
    let steps_per_commit_1 = single_steps as f64 / single_commits.max(1) as f64;
    let steps_per_commit_3 = triple_steps as f64 / triple_commits.max(1) as f64;
    eprintln!(
        "commit latency: {lat1:.1}us (1 node) -> {lat3:.1}us (3 nodes); \
         commits/s: {tput1:.0} -> {tput3:.0}; \
         transport steps/commit: {steps_per_commit_1:.2} -> {steps_per_commit_3:.2}"
    );

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"ops_per_iter\": {OPS},\n  \
         \"quorum_required_3\": {quorum_required},\n  \
         \"commit_latency_us_1\": {lat1:.2},\n  \"commit_latency_us_3\": {lat3:.2},\n  \
         \"commits_per_sec_1\": {tput1:.1},\n  \"commits_per_sec_3\": {tput3:.1},\n  \
         \"transport_steps_per_commit_1\": {steps_per_commit_1:.3},\n  \
         \"transport_steps_per_commit_3\": {steps_per_commit_3:.3},\n  \"results\": {}\n}}\n",
        c.to_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_quorum.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    std::fs::remove_dir_all(&base).ok();
}
