//! Quorum-commit cost: what majority acknowledgement adds on top of
//! local durability. The same fact batch is committed through a
//! single-node group (quorum 1/1 — local fsync only) and through a
//! three-node [`ClusterSet`] (quorum 2/3 — fsync plus supervision
//! rounds until a member confirms), over the in-memory channel
//! transport so the delta measures protocol work, not network jitter.
//!
//! Expected shape: the three-node commit pays a small constant factor
//! (frame shipping + member fsync + ack) per record; transport steps
//! per commit stay bounded by the batch configuration rather than
//! growing with history. Emits `BENCH_quorum.json` at the workspace
//! root.
//!
//! A third leg measures the same three-node quorum through the
//! **async pump**: one [`MemberPump`] shipping thread per member
//! tails the primary's WAL and ships batched frame envelopes while
//! `commit_replicated` parks on the quorum condvar. Expected shape:
//! both per-commit latency and transport steps per commit drop well
//! below the synchronous supervision loop, because acks arrive
//! continuously and many frames share one envelope round-trip.

use std::sync::{Arc, Mutex};

use mvolap_bench::harness::{BenchmarkId, Criterion, Throughput};
use mvolap_cluster::{
    ClusterConfig, ClusterSet, LocalCluster, MemberPump, PumpConfig, PumpShared, PumpTracker,
};
use mvolap_core::case_study;
use mvolap_durable::{
    CheckpointPolicy, DurableTmd, FactRow, GroupCommit, GroupConfig, Io, Options, TimeSource,
    WalRecord,
};
use mvolap_replica::{ChannelTransport, Follower, NetAddr, NetConfig};
use mvolap_server::ServerOptions;
use mvolap_temporal::Instant;

/// Records committed per benchmark iteration.
const OPS: usize = 8;

/// One fact batch aimed at a case-study leaf — the smallest real
/// journaled write.
fn fact(leaf: mvolap_core::MemberVersionId, i: usize) -> WalRecord {
    WalRecord::FactBatch {
        rows: vec![FactRow {
            coords: vec![leaf],
            at: Instant::ym(2003, 1 + (i % 12) as u32),
            values: vec![i as f64],
        }],
    }
}

/// A group with `members` member replicas next to the primary.
fn build_set(base: &std::path::Path, members: usize) -> ClusterSet<ChannelTransport> {
    let cs = case_study::case_study();
    let mut set = ClusterSet::bootstrap(
        base,
        cs.tmd,
        Options::default(),
        GroupConfig {
            hold_ms: 0,
            time: TimeSource::default(),
        },
        ClusterConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .expect("bootstrap");
    for m in 0..members {
        set.add_member(&format!("m{}", m + 1), Io::plain());
    }
    set
}

fn bench_commits(
    c: &mut Criterion,
    set: &mut ClusterSet<ChannelTransport>,
    leaf: mvolap_core::MemberVersionId,
    nodes: usize,
) {
    let mut group = c.benchmark_group("quorum/commits");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, _| {
        b.iter(|| {
            for i in 0..OPS {
                set.commit_quorum(fact(leaf, i)).expect("quorum commit");
            }
        })
    });
    group.finish();
}

/// The async leg: a primary group-commit handle plus two member
/// followers served by dedicated [`MemberPump`] shipping threads.
/// Commits go through `commit_replicated`, which parks on the quorum
/// condvar until a pump's continuous acks pass the watermark.
fn bench_async_commits(
    c: &mut Criterion,
    base: &std::path::Path,
    leaf: mvolap_core::MemberVersionId,
) -> (f64, f64, f64) {
    let cs = case_study::case_study();
    let primary_dir = base.join("primary");
    let store = DurableTmd::create_with(&primary_dir, cs.tmd, Options::default(), Io::plain())
        .expect("primary store");
    let commit = GroupCommit::new(
        store,
        GroupConfig {
            hold_ms: 0,
            time: TimeSource::default(),
        },
    );
    // Same quorum as the sync three-node leg: 2 of {primary, m1, m2}.
    commit.configure_quorum(2);

    let tracker = PumpTracker::new();
    let shared = PumpShared::new(commit.clone(), 0);
    let mut pumps = Vec::new();
    for name in ["m1", "m2"] {
        let follower = Arc::new(Mutex::new(Follower::create(
            name,
            base.join(name),
            Options::default(),
            Io::plain(),
        )));
        pumps.push(
            MemberPump::new(
                shared.clone(),
                name,
                follower,
                &primary_dir,
                PumpConfig::default(),
                tracker.clone(),
            )
            .spawn(),
        );
    }

    let mut group = c.benchmark_group("quorum/commits");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_with_input(BenchmarkId::new("async", 3), &3, |b, _| {
        b.iter(|| {
            for i in 0..OPS {
                commit
                    .commit_replicated(fact(leaf, i), 5_000)
                    .expect("async quorum commit");
            }
        })
    });
    group.finish();

    // Let the slower member drain its tail so the step count covers
    // every commit's shipping, then stop the threads.
    let head = commit.wal_position();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while std::time::Instant::now() < deadline {
        let drained = tracker
            .all()
            .iter()
            .filter(|(_, s)| s.acked_lsn >= head)
            .count();
        if drained == 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    shared.request_stop();
    for pump in &mut pumps {
        pump.join();
    }

    let commits = commit.wal_position() - 1;
    let steps = tracker.transport_steps();
    let steps_per_commit = steps as f64 / commits.max(1) as f64;
    let shipped: u64 = tracker.all().iter().map(|(_, s)| s.shipped_frames).sum();
    eprintln!(
        "async pump: {commits} commits, {shipped} frames in {steps} transport steps \
         ({steps_per_commit:.2} steps/commit)"
    );
    (commits as f64, steps as f64, steps_per_commit)
}

/// The membership leg: a served [`LocalCluster`] (primary + m1 + m2,
/// pumps running) takes a live `join` whose learner bootstraps from a
/// pruned tail via the pump-shipped chunked snapshot. Measures the
/// catch-up window (join journaled -> promotion at the watermark) and
/// the per-commit latency of commits issued *during* that window
/// against the steady-state latency of the same group beforehand.
fn bench_membership(base: &std::path::Path, leaf: mvolap_core::MemberVersionId) -> (f64, f64, f64) {
    const WARM: usize = 64;
    const K: usize = 16;
    let cs = case_study::case_study();
    let loopback = NetAddr::parse("127.0.0.1:0").expect("addr");
    let mut cluster = LocalCluster::start(
        base,
        cs.tmd,
        &loopback,
        &[
            ("m1".to_string(), loopback.clone()),
            ("m2".to_string(), loopback.clone()),
        ],
        // Small segments so the pre-join checkpoint prunes the tail
        // and the joiner pays the real snapshot bootstrap.
        Options {
            segment_bytes: 1024,
            policy: CheckpointPolicy::manual(),
            prune_on_checkpoint: true,
        },
        GroupConfig {
            hold_ms: 0,
            time: TimeSource::default(),
        },
        ServerOptions {
            quorum_timeout_ms: 10_000,
            ..ServerOptions::default()
        },
        NetConfig::default(),
    )
    .expect("membership cluster");
    cluster.spawn_pumps(PumpConfig::default());
    let mut client = cluster.client(NetConfig::default());

    // History for the snapshot image, then prune below it.
    for i in 0..WARM {
        client.commit(&fact(leaf, i)).expect("warm commit");
    }
    cluster
        .group()
        .with_store_mut(|s| s.checkpoint())
        .expect("checkpoint");

    // Steady-state: per-commit latency with the settled 3-node group.
    let t = std::time::Instant::now();
    for i in 0..K {
        client.commit(&fact(leaf, i)).expect("steady commit");
    }
    let steady_us = t.elapsed().as_secs_f64() * 1e6 / K as f64;

    // Join m3 and keep committing while its learner catches up: the
    // reconfiguration must not stall the commit path.
    let joined_at = std::time::Instant::now();
    cluster.join("m3", &loopback).expect("join journaled");
    let t = std::time::Instant::now();
    for i in 0..K {
        client
            .commit(&fact(leaf, i))
            .expect("commit during reconfig");
    }
    let reconfig_us = t.elapsed().as_secs_f64() * 1e6 / K as f64;
    let promoted = cluster
        .await_membership(std::time::Duration::from_secs(30))
        .expect("joiner promoted");
    assert_eq!(promoted, "m3");
    let catchup_ms = joined_at.elapsed().as_secs_f64() * 1e3;

    let snap_bootstraps = cluster
        .pump_status()
        .iter()
        .find(|(n, _)| n == "m3")
        .map_or(0, |(_, st)| st.snapshots);
    eprintln!(
        "membership: join catch-up {catchup_ms:.1}ms ({snap_bootstraps} snapshot \
         bootstraps), commit latency {reconfig_us:.1}us during reconfig \
         vs {steady_us:.1}us steady-state"
    );
    cluster.stop();
    (catchup_ms, reconfig_us, steady_us)
}

fn main() {
    let base = std::env::temp_dir().join(format!("mvolap_bench_quorum_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let leaf = case_study::case_study().bill;

    let mut c = Criterion::from_env();

    // Quorum 1/1: commit_quorum is satisfied by the local fsync alone.
    let mut single = build_set(&base.join("n1"), 0);
    bench_commits(&mut c, &mut single, leaf, 1);
    let single_commits = single.primary().expect("primary").wal_position() - 1;
    let single_steps = single.transport_steps();
    drop(single);

    // Quorum 2/3: the same path must also ship the tail and collect a
    // member ack before the watermark passes the record.
    let mut triple = build_set(&base.join("n3"), 2);
    let mark_steps = triple.transport_steps();
    bench_commits(&mut c, &mut triple, leaf, 3);
    let triple_commits = triple.primary().expect("primary").wal_position() - 1;
    let triple_steps = triple.transport_steps() - mark_steps;
    let quorum_required = triple.quorum_required();
    drop(triple);

    // Quorum 2/3 again, but replication rides the async pump threads:
    // commit_replicated parks on the condvar while shipping happens
    // off-thread in batched envelopes.
    let (_, _, steps_per_commit_3_async) = bench_async_commits(&mut c, &base.join("n3a"), leaf);

    // Live membership: join catch-up time and the commit-latency cost
    // of an in-flight reconfiguration.
    let (join_catchup_ms, lat_reconfig, lat_steady) = bench_membership(&base.join("mem"), leaf);

    c.final_summary();

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Median ns per iteration -> per-commit latency and commits/sec.
    let stats = |needle: &str| {
        c.results()
            .iter()
            .find(|r| r.name.contains(needle))
            .map(|r| {
                let per_commit_ns = r.median_ns / OPS as f64;
                (per_commit_ns / 1e3, 1e9 / per_commit_ns)
            })
            .unwrap_or((0.0, 0.0))
    };
    let (lat1, tput1) = stats("commits/nodes/1");
    let (lat3, tput3) = stats("commits/nodes/3");
    let (lat3a, tput3a) = stats("commits/async/3");
    let steps_per_commit_1 = single_steps as f64 / single_commits.max(1) as f64;
    let steps_per_commit_3 = triple_steps as f64 / triple_commits.max(1) as f64;
    eprintln!(
        "commit latency: {lat1:.1}us (1 node) -> {lat3:.1}us (3 nodes sync) \
         -> {lat3a:.1}us (3 nodes async); \
         commits/s: {tput1:.0} -> {tput3:.0} -> {tput3a:.0}; \
         transport steps/commit: {steps_per_commit_1:.2} -> {steps_per_commit_3:.2} \
         -> {steps_per_commit_3_async:.2}"
    );

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"ops_per_iter\": {OPS},\n  \
         \"quorum_required_3\": {quorum_required},\n  \
         \"commit_latency_us_1\": {lat1:.2},\n  \"commit_latency_us_3\": {lat3:.2},\n  \
         \"commit_latency_us_3_async\": {lat3a:.2},\n  \
         \"commits_per_sec_1\": {tput1:.1},\n  \"commits_per_sec_3\": {tput3:.1},\n  \
         \"commits_per_sec_3_async\": {tput3a:.1},\n  \
         \"transport_steps_per_commit_1\": {steps_per_commit_1:.3},\n  \
         \"transport_steps_per_commit_3\": {steps_per_commit_3:.3},\n  \
         \"transport_steps_per_commit_3_async\": {steps_per_commit_3_async:.3},\n  \
         \"join_catchup_ms\": {join_catchup_ms:.2},\n  \
         \"commit_latency_us_during_reconfig\": {lat_reconfig:.2},\n  \
         \"commit_latency_us_steady_state\": {lat_steady:.2},\n  \
         \"results\": {}\n}}\n",
        c.to_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_quorum.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    std::fs::remove_dir_all(&base).ok();
}
