//! Cube costs (DESIGN.md `bench_cube`): materialising the aggregate
//! lattice, and the navigation operators against the precomputed cube.
//!
//! Expected shape: lattice build is (levels+1) × time-levels evaluations;
//! navigation (roll-up + read) is orders of magnitude cheaper than
//! re-aggregation because it only consults precomputed nodes.

use mvolap_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvolap_core::TemporalMode;
use mvolap_cube::{Cube, CubeSpec, CubeView};
use mvolap_workload::{generate, GeneratedWorkload, WorkloadConfig};

fn workload(departments: usize) -> GeneratedWorkload {
    let mut cfg = WorkloadConfig::small(66)
        .with_departments(departments)
        .with_periods(4)
        .with_facts_per_department(6);
    cfg.create_prob = 0.0;
    cfg.delete_prob = 0.0;
    generate(&cfg).expect("workload generates")
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube/build");
    group.sample_size(10);
    for departments in [20usize, 80] {
        let w = workload(departments);
        let svs = w.tmd.structure_versions();
        group.bench_with_input(BenchmarkId::from_parameter(departments), &w, |b, w| {
            b.iter(|| {
                Cube::build(&w.tmd, &svs, CubeSpec::for_mode(TemporalMode::Consistent))
                    .expect("cube builds")
            })
        });
    }
    group.finish();
}

/// Ablation: building every node from facts vs deriving coarser nodes
/// from finer precomputed ones (sound in version modes with
/// decomposable aggregates).
fn bench_build_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube/build_strategy");
    group.sample_size(10);
    for departments in [20usize, 80] {
        let w = workload(departments);
        let svs = w.tmd.structure_versions();
        let mode = TemporalMode::Version(svs.last().expect("versions").id);
        group.bench_with_input(BenchmarkId::new("from_facts", departments), &w, |b, w| {
            b.iter(|| {
                Cube::build(&w.tmd, &svs, CubeSpec::for_mode(mode.clone())).expect("cube builds")
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", departments), &w, |b, w| {
            b.iter(|| {
                let cube = Cube::build_incremental(&w.tmd, &svs, CubeSpec::for_mode(mode.clone()))
                    .expect("cube builds");
                assert!(cube.stats().derived > 0, "derivation path must engage");
                cube
            })
        });
    }
    group.finish();
}

fn bench_navigation(c: &mut Criterion) {
    let w = workload(40);
    let svs = w.tmd.structure_versions();
    let cube = Cube::build(&w.tmd, &svs, CubeSpec::for_mode(TemporalMode::Consistent))
        .expect("cube builds");

    c.bench_function("cube/rollup_and_read", |b| {
        b.iter(|| {
            let mut view = CubeView::open(&cube);
            view.roll_up(w.dim).expect("dimension exists");
            view.rows()
        })
    });

    c.bench_function("cube/slice_and_render", |b| {
        b.iter(|| {
            let mut view = CubeView::open(&cube);
            view.slice(w.dim, "Dept0").expect("dimension exists");
            view.render()
        })
    });
}

criterion_group!(
    benches,
    bench_build,
    bench_build_incremental,
    bench_navigation
);
criterion_main!(benches);
