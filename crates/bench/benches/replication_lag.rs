//! Replication shipping lag: frames/second moving WAL frame batches
//! through the in-process channel transport versus real loopback TCP
//! (`TcpTransport` against a `MsgRouter`).
//!
//! Both transports carry the identical `ReplicaMsg::Frames` message —
//! canonical escaped-token text — so the delta is pure transport cost:
//! the socket adds one CRC frame per request and reply, two syscalls,
//! and the kernel loopback path. Expected shape: the channel moves
//! frames at memory speed; TCP sits 1–2 orders of magnitude behind on
//! round-trip latency but still far above any realistic WAL production
//! rate. Emits `BENCH_replication.json` at the workspace root.

use mvolap_bench::harness::{BenchmarkId, Criterion, Throughput};
use mvolap_core::case_study;
use mvolap_durable::{DurableTmd, FactRow, Io, Options, TailFrame, WalRecord};
use mvolap_replica::{
    ChannelTransport, MsgRouter, NetAddr, NetConfig, ReplicaMsg, ReplicaTransport, TcpTransport,
};
use mvolap_temporal::Instant;

/// Frames per shipped `Frames` message — the server's default batch.
const BATCH: usize = 64;

/// Builds a real WAL tail: the case study plus enough fact batches to
/// fill one shipping batch, read back as the frames a primary serves.
fn wal_frames() -> Vec<TailFrame> {
    let base = std::env::temp_dir().join(format!("mvolap_bench_repl_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let cs = case_study::case_study();
    let mut store =
        DurableTmd::create_with(&base, cs.tmd, Options::default(), Io::plain()).expect("store");
    for i in 0..BATCH as u32 {
        store
            .apply(WalRecord::FactBatch {
                rows: vec![FactRow {
                    coords: vec![cs.bill],
                    at: Instant::ym(2003, 1 + (i % 12)),
                    values: vec![f64::from(i)],
                }],
            })
            .expect("journal fact batch");
    }
    let frames = store.tail(1).expect("tail");
    drop(store);
    std::fs::remove_dir_all(&base).ok();
    frames
}

/// One shipping round trip: the batch goes out, then is drained back —
/// what a supervisor pump does per tick, minus the replay.
fn ship<T: ReplicaTransport>(t: &mut T, msg: &ReplicaMsg) {
    t.send("f1", msg).expect("send");
    while t.recv("f1").expect("recv").is_some() {}
}

fn bench_shipping(c: &mut Criterion, msg: &ReplicaMsg, frames: u64) {
    let mut group = c.benchmark_group("replication_lag/ship_frames");
    group.sample_size(10);
    group.throughput(Throughput::Elements(frames));

    let mut chan = ChannelTransport::new();
    group.bench_with_input(BenchmarkId::new("channel", frames), msg, |b, msg| {
        b.iter(|| ship(&mut chan, msg))
    });

    let router = MsgRouter::spawn(&NetAddr::Tcp("127.0.0.1:0".into())).expect("router");
    let mut tcp = TcpTransport::connect(router.addr().clone(), NetConfig::default());
    group.bench_with_input(BenchmarkId::new("tcp_loopback", frames), msg, |b, msg| {
        b.iter(|| ship(&mut tcp, msg))
    });
    group.finish();
    drop(tcp);
}

fn main() {
    let frames = wal_frames();
    let wire_bytes: usize = frames.iter().map(|f| f.payload.len()).sum();
    let n = frames.len() as u64;
    let msg = ReplicaMsg::Frames { epoch: 0, frames };

    let mut c = Criterion::from_env();
    bench_shipping(&mut c, &msg, n);
    c.final_summary();

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let median = |needle: &str| {
        c.results()
            .iter()
            .find(|r| r.name.contains(needle))
            .map(|r| r.median_ns)
    };
    if let (Some(ch), Some(tcp)) = (median("ship_frames/channel"), median("ship_frames/tcp")) {
        eprintln!(
            "shipping {n} frames: channel {:.1}us, tcp loopback {:.1}us ({:.1}x slower)",
            ch / 1_000.0,
            tcp / 1_000.0,
            tcp / ch
        );
    }

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"frames_per_batch\": {n},\n  \
         \"payload_bytes\": {wire_bytes},\n  \"results\": {}\n}}\n",
        c.to_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replication.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
