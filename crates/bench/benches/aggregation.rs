//! Aggregation throughput (DESIGN.md `bench_aggregate`): evaluating the
//! paper's Q1-shaped query in the consistent mode vs mapped
//! structure-version modes.
//!
//! Expected shape: tcm is cheapest (no mapping-route resolution); mapped
//! modes pay per distinct coordinate needing routes, then converge to
//! the same group-by cost.

use mvolap_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvolap_core::aggregate::{evaluate, AggregateQuery};
use mvolap_core::TemporalMode;
use mvolap_workload::{generate, WorkloadConfig};

fn bench_modes(c: &mut Criterion) {
    let mut cfg = WorkloadConfig::small(21)
        .with_departments(30)
        .with_periods(5)
        .with_facts_per_department(8);
    cfg.split_prob = 0.20;
    cfg.reclassify_prob = 0.10;
    cfg.create_prob = 0.0;
    cfg.delete_prob = 0.0;
    let w = generate(&cfg).expect("workload generates");
    let svs = w.tmd.structure_versions();
    let n = w.tmd.facts().len() as u64;

    let mut group = c.benchmark_group("aggregate/modes");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n));
    let modes: Vec<(String, TemporalMode)> =
        std::iter::once(("tcm".to_owned(), TemporalMode::Consistent))
            .chain(
                svs.iter()
                    .map(|sv| (sv.id.to_string(), TemporalMode::Version(sv.id))),
            )
            .collect();
    for (label, mode) in modes {
        let q = AggregateQuery::by_year(w.dim, "Division", mode);
        group.bench_with_input(BenchmarkId::from_parameter(label), &q, |b, q| {
            b.iter(|| evaluate(&w.tmd, &svs, q).expect("evaluates"))
        });
    }
    group.finish();
}

fn bench_fact_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate/fact_scaling");
    group.sample_size(10);
    for facts in [4usize, 16, 64] {
        let mut cfg = WorkloadConfig::small(22)
            .with_departments(25)
            .with_periods(4)
            .with_facts_per_department(facts);
        cfg.create_prob = 0.0;
        cfg.delete_prob = 0.0;
        let w = generate(&cfg).expect("workload generates");
        let svs = w.tmd.structure_versions();
        let n = w.tmd.facts().len();
        let q = AggregateQuery::by_year(w.dim, "Department", TemporalMode::Consistent);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &q, |b, q| {
            b.iter(|| evaluate(&w.tmd, &svs, q).expect("evaluates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes, bench_fact_scaling);
criterion_main!(benches);
