//! Structure-version inference cost (DESIGN.md
//! `bench_structure_versions`): partitioning history as the number of
//! evolution events grows.
//!
//! Expected shape: near-linear in the number of validity intervals
//! (members + relationships), with the boundary sort dominating.

use mvolap_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvolap_core::infer_structure_versions;
use mvolap_workload::{generate, WorkloadConfig};

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("structure_versions/infer");
    group.sample_size(20);
    for (departments, periods) in [(10usize, 3u32), (30, 6), (60, 10)] {
        let mut cfg = WorkloadConfig::small(31)
            .with_departments(departments)
            .with_periods(periods)
            .with_facts_per_department(1);
        cfg.split_prob = 0.25;
        cfg.merge_prob = 0.10;
        cfg.reclassify_prob = 0.15;
        let w = generate(&cfg).expect("workload generates");
        let dims = w.tmd.dimensions();
        let elements: usize = dims
            .iter()
            .map(|d| d.versions().len() + d.relationships().len())
            .sum();
        group.throughput(Throughput::Elements(elements as u64));
        group.bench_with_input(BenchmarkId::from_parameter(elements), &dims, |b, dims| {
            b.iter(|| infer_structure_versions(dims))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
