//! SCD baselines vs the multiversion model (DESIGN.md
//! `bench_scd_baselines`): ingesting the same snapshot stream.
//!
//! Expected shape: SCD1 is cheapest (overwrite), SCD3 close behind,
//! SCD2 pays row rewriting, and the multiversion load pays the
//! evolution operators (validity maintenance, DAG checks) — the price of
//! being the only strategy that can answer *both* history and
//! cross-transition comparison queries (see `examples/scd_comparison`).
//!
//! The `load_durable` group journals every maintainer — the SCD
//! baselines through [`DurableScd`] (WAL append + fsync per snapshot),
//! the multiversion model through [`DurableTmd`] (one journaled record
//! per evolution operator) — and `recover` prices replaying those
//! journals, so the comparison includes the durability and recovery
//! cost each strategy would pay in production.

use std::path::{Path, PathBuf};

use mvolap_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvolap_core::{MeasureDef, TemporalDimension, Tmd};
use mvolap_durable::DurableTmd;
use mvolap_etl::load::{apply_changes_in, bootstrap_in};
use mvolap_etl::{
    apply_changes, diff, DurableScd, Scd1Dimension, Scd2Dimension, Scd3Dimension, ScdMaintainer,
    Snapshot, SnapshotRow,
};
use mvolap_prng::Rng;
use mvolap_temporal::{Granularity, Instant};

/// Generates a stream of yearly snapshots with `members` departments,
/// each year reclassifying ~10% of them across `divisions` divisions.
fn snapshot_stream(members: usize, divisions: usize, years: usize, seed: u64) -> Vec<Snapshot> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut parent_of: Vec<usize> = (0..members).map(|i| i % divisions).collect();
    let mut out = Vec::with_capacity(years);
    for y in 0..years {
        if y > 0 {
            for p in parent_of.iter_mut() {
                if rng.f64_unit() < 0.10 {
                    *p = rng.usize_below(divisions);
                }
            }
        }
        let rows = (0..divisions)
            .map(|d| SnapshotRow::new(format!("Div{d}"), None).at_level("Division"))
            .chain((0..members).map(|m| {
                SnapshotRow::new(format!("Dept{m}"), Some(&format!("Div{}", parent_of[m])))
                    .at_level("Department")
            }));
        out.push(Snapshot::new(Instant::ym(2001 + y as i32, 1), rows));
    }
    out
}

fn bench_loads(c: &mut Criterion) {
    let mut group = c.benchmark_group("scd/load");
    group.sample_size(10);
    for members in [20usize, 100] {
        let stream = snapshot_stream(members, 4, 6, 77);
        let rows: usize = stream.iter().map(Snapshot::len).sum();
        group.throughput(Throughput::Elements(rows as u64));

        group.bench_with_input(BenchmarkId::new("scd1", members), &stream, |b, stream| {
            b.iter(|| {
                let mut d = Scd1Dimension::new("org").expect("schema");
                for s in stream {
                    d.load(s).expect("load");
                }
                d
            })
        });
        group.bench_with_input(BenchmarkId::new("scd2", members), &stream, |b, stream| {
            b.iter(|| {
                let mut d = Scd2Dimension::new("org").expect("schema");
                for s in stream {
                    d.load(s).expect("load");
                }
                d
            })
        });
        group.bench_with_input(BenchmarkId::new("scd3", members), &stream, |b, stream| {
            b.iter(|| {
                let mut d = Scd3Dimension::new("org").expect("schema");
                for s in stream {
                    d.load(s).expect("load");
                }
                d
            })
        });
        group.bench_with_input(
            BenchmarkId::new("multiversion", members),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let mut tmd = Tmd::new("org", Granularity::Month);
                    let dim = tmd
                        .add_dimension(TemporalDimension::new("Org"))
                        .expect("fresh schema");
                    tmd.add_measure(MeasureDef::summed("Amount"))
                        .expect("fresh schema");
                    mvolap_etl::load::bootstrap(&mut tmd, dim, &stream[0]).expect("bootstrap");
                    for pair in stream.windows(2) {
                        let events = diff(&pair[0], &pair[1]);
                        apply_changes(&mut tmd, dim, &events, pair[1].period).expect("load");
                    }
                    tmd
                })
            },
        );
    }
    group.finish();
}

fn bench_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mvolap_bench_scdj_{name}_{}", std::process::id()))
}

fn fresh(dir: &Path) {
    std::fs::remove_dir_all(dir).ok();
    std::fs::create_dir_all(dir).expect("bench dir");
}

/// One full journaled SCD run: fresh WAL, every snapshot appended and
/// fsynced before it hits the table.
fn durable_scd_run<D: ScdMaintainer>(dir: &Path, stream: &[Snapshot]) -> u64 {
    fresh(dir);
    let mut d: DurableScd<D> = DurableScd::create(dir, "org").expect("journal");
    for s in stream {
        d.load(s).expect("load");
    }
    d.journaled()
}

/// One full journaled multiversion run: bootstrap + every evolution
/// operator journaled through the write-ahead log.
fn durable_mv_run(dir: &Path, stream: &[Snapshot]) -> u64 {
    fresh(dir);
    let mut tmd = Tmd::new("org", Granularity::Month);
    let dim = tmd
        .add_dimension(TemporalDimension::new("Org"))
        .expect("fresh schema");
    tmd.add_measure(MeasureDef::summed("Amount"))
        .expect("fresh schema");
    let mut store = DurableTmd::create(dir, tmd).expect("store");
    bootstrap_in(&mut store, dim, &stream[0]).expect("bootstrap");
    for pair in stream.windows(2) {
        let events = diff(&pair[0], &pair[1]);
        apply_changes_in(&mut store, dim, &events, pair[1].period).expect("load");
    }
    store.wal_position()
}

fn bench_durable_loads(c: &mut Criterion) {
    let mut group = c.benchmark_group("scd/load_durable");
    group.sample_size(10);
    let members = 20usize;
    let stream = snapshot_stream(members, 4, 6, 77);
    let rows: usize = stream.iter().map(Snapshot::len).sum();
    group.throughput(Throughput::Elements(rows as u64));

    let d = bench_dir("load");
    group.bench_with_input(BenchmarkId::new("scd1", members), &stream, |b, stream| {
        b.iter(|| durable_scd_run::<Scd1Dimension>(&d, stream))
    });
    group.bench_with_input(BenchmarkId::new("scd2", members), &stream, |b, stream| {
        b.iter(|| durable_scd_run::<Scd2Dimension>(&d, stream))
    });
    group.bench_with_input(BenchmarkId::new("scd3", members), &stream, |b, stream| {
        b.iter(|| durable_scd_run::<Scd3Dimension>(&d, stream))
    });
    group.bench_with_input(
        BenchmarkId::new("multiversion", members),
        &stream,
        |b, stream| b.iter(|| durable_mv_run(&d, stream)),
    );
    group.finish();
    std::fs::remove_dir_all(&d).ok();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("scd/recover");
    group.sample_size(10);
    let members = 20usize;
    let stream = snapshot_stream(members, 4, 6, 77);
    let rows: usize = stream.iter().map(Snapshot::len).sum();
    group.throughput(Throughput::Elements(rows as u64));

    // Prepare the journals once; each iteration replays them cold.
    let scd_dir = bench_dir("recover_scd2");
    durable_scd_run::<Scd2Dimension>(&scd_dir, &stream);
    let mv_dir = bench_dir("recover_mv");
    durable_mv_run(&mv_dir, &stream);

    group.bench_with_input(BenchmarkId::new("scd2", members), &scd_dir, |b, dir| {
        b.iter(|| DurableScd::<Scd2Dimension>::open(dir, "org").expect("recover"))
    });
    group.bench_with_input(
        BenchmarkId::new("multiversion", members),
        &mv_dir,
        |b, dir| b.iter(|| DurableTmd::open(dir).expect("recover")),
    );
    group.finish();
    std::fs::remove_dir_all(&scd_dir).ok();
    std::fs::remove_dir_all(&mv_dir).ok();
}

criterion_group!(benches, bench_loads, bench_durable_loads, bench_recovery);
criterion_main!(benches);
