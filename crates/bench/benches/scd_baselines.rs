//! SCD baselines vs the multiversion model (DESIGN.md
//! `bench_scd_baselines`): ingesting the same snapshot stream.
//!
//! Expected shape: SCD1 is cheapest (overwrite), SCD3 close behind,
//! SCD2 pays row rewriting, and the multiversion load pays the
//! evolution operators (validity maintenance, DAG checks) — the price of
//! being the only strategy that can answer *both* history and
//! cross-transition comparison queries (see `examples/scd_comparison`).

use mvolap_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvolap_core::{MeasureDef, TemporalDimension, Tmd};
use mvolap_etl::{
    apply_changes, diff, Scd1Dimension, Scd2Dimension, Scd3Dimension, Snapshot, SnapshotRow,
};
use mvolap_prng::Rng;
use mvolap_temporal::{Granularity, Instant};

/// Generates a stream of yearly snapshots with `members` departments,
/// each year reclassifying ~10% of them across `divisions` divisions.
fn snapshot_stream(members: usize, divisions: usize, years: usize, seed: u64) -> Vec<Snapshot> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut parent_of: Vec<usize> = (0..members).map(|i| i % divisions).collect();
    let mut out = Vec::with_capacity(years);
    for y in 0..years {
        if y > 0 {
            for p in parent_of.iter_mut() {
                if rng.f64_unit() < 0.10 {
                    *p = rng.usize_below(divisions);
                }
            }
        }
        let rows = (0..divisions)
            .map(|d| SnapshotRow::new(format!("Div{d}"), None).at_level("Division"))
            .chain((0..members).map(|m| {
                SnapshotRow::new(format!("Dept{m}"), Some(&format!("Div{}", parent_of[m])))
                    .at_level("Department")
            }));
        out.push(Snapshot::new(Instant::ym(2001 + y as i32, 1), rows));
    }
    out
}

fn bench_loads(c: &mut Criterion) {
    let mut group = c.benchmark_group("scd/load");
    group.sample_size(10);
    for members in [20usize, 100] {
        let stream = snapshot_stream(members, 4, 6, 77);
        let rows: usize = stream.iter().map(Snapshot::len).sum();
        group.throughput(Throughput::Elements(rows as u64));

        group.bench_with_input(BenchmarkId::new("scd1", members), &stream, |b, stream| {
            b.iter(|| {
                let mut d = Scd1Dimension::new("org").expect("schema");
                for s in stream {
                    d.load(s).expect("load");
                }
                d
            })
        });
        group.bench_with_input(BenchmarkId::new("scd2", members), &stream, |b, stream| {
            b.iter(|| {
                let mut d = Scd2Dimension::new("org").expect("schema");
                for s in stream {
                    d.load(s).expect("load");
                }
                d
            })
        });
        group.bench_with_input(BenchmarkId::new("scd3", members), &stream, |b, stream| {
            b.iter(|| {
                let mut d = Scd3Dimension::new("org").expect("schema");
                for s in stream {
                    d.load(s).expect("load");
                }
                d
            })
        });
        group.bench_with_input(
            BenchmarkId::new("multiversion", members),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let mut tmd = Tmd::new("org", Granularity::Month);
                    let dim = tmd
                        .add_dimension(TemporalDimension::new("Org"))
                        .expect("fresh schema");
                    tmd.add_measure(MeasureDef::summed("Amount"))
                        .expect("fresh schema");
                    mvolap_etl::load::bootstrap(&mut tmd, dim, &stream[0]).expect("bootstrap");
                    for pair in stream.windows(2) {
                        let events = diff(&pair[0], &pair[1]);
                        apply_changes(&mut tmd, dim, &events, pair[1].period).expect("load");
                    }
                    tmd
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_loads);
criterion_main!(benches);
