//! Thread-scaling of the morsel-parallel execution engine
//! (`mvolap-exec`): MVFT inference and a Q1-style aggregation swept
//! over worker counts 1/2/4/8 on a large evolving workload, with the
//! shared memo cache measured both cold (fresh per run) and warm
//! (shared across runs).
//!
//! Expected shape: on a multi-core host the fold scales with workers
//! until morsel count or the merge step dominates; results are
//! bit-identical at every point of the sweep (asserted here). On a
//! single-core host the sweep measures engine overhead instead —
//! `host_cpus` is recorded in the emitted JSON so readers can tell
//! which regime a run measured. Emits `BENCH_parallel.json` at the
//! workspace root.

use mvolap_bench::harness::{BenchmarkId, Criterion, Throughput};
use mvolap_core::aggregate::{evaluate_par, AggregateQuery};
use mvolap_core::tmp::TemporalMode;
use mvolap_core::{ExecContext, MultiVersionFactTable, QueryMemo};
use mvolap_workload::{generate, GeneratedWorkload, WorkloadConfig};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn large_workload() -> GeneratedWorkload {
    let mut cfg = WorkloadConfig::small(42)
        .with_departments(40)
        .with_periods(5)
        .with_facts_per_department(24);
    cfg.split_prob = 0.25;
    cfg.merge_prob = 0.10;
    cfg.reclassify_prob = 0.15;
    cfg.create_prob = 0.0;
    cfg.delete_prob = 0.0;
    generate(&cfg).expect("workload generates")
}

fn bench_mvft_inference(c: &mut Criterion, w: &GeneratedWorkload) {
    let facts = w.tmd.facts().len() as u64;
    let mut group = c.benchmark_group("parallel_scaling/mvft_infer");
    group.sample_size(10);
    group.throughput(Throughput::Elements(facts));
    for threads in THREAD_SWEEP {
        let ctx = ExecContext::new(threads);
        group.bench_with_input(BenchmarkId::new("cold", threads), w, |b, w| {
            b.iter(|| {
                // Fresh memo: every run pays full route resolution.
                MultiVersionFactTable::infer_par(&w.tmd, &ctx, &QueryMemo::new())
                    .expect("inference")
            })
        });
        let warm = QueryMemo::new();
        group.bench_with_input(BenchmarkId::new("warm", threads), w, |b, w| {
            b.iter(|| MultiVersionFactTable::infer_par(&w.tmd, &ctx, &warm).expect("inference"))
        });
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion, w: &GeneratedWorkload) {
    let svs = w.tmd.structure_versions();
    let latest = svs.last().expect("versions exist").id;
    let query = AggregateQuery::by_year(w.dim, "Division", TemporalMode::Version(latest));
    let facts = w.tmd.facts().len() as u64;

    let mut group = c.benchmark_group("parallel_scaling/aggregate_q1");
    group.sample_size(10);
    group.throughput(Throughput::Elements(facts));
    for threads in THREAD_SWEEP {
        let ctx = ExecContext::new(threads);
        let warm = QueryMemo::new();
        group.bench_with_input(BenchmarkId::new("warm", threads), &(), |b, ()| {
            b.iter(|| evaluate_par(&w.tmd, &svs, &query, &ctx, &warm).expect("evaluation"))
        });
    }
    group.finish();
}

/// The engine's determinism contract, spot-checked on the bench
/// workload so the sweep above provably measures identical work.
fn assert_determinism(w: &GeneratedWorkload) {
    let svs = w.tmd.structure_versions();
    let latest = svs.last().expect("versions exist").id;
    let query = AggregateQuery::by_year(w.dim, "Division", TemporalMode::Version(latest));
    let baseline = evaluate_par(
        &w.tmd,
        &svs,
        &query,
        &ExecContext::sequential(),
        &QueryMemo::new(),
    )
    .expect("evaluation");
    for threads in THREAD_SWEEP {
        let rs = evaluate_par(
            &w.tmd,
            &svs,
            &query,
            &ExecContext::new(threads),
            &QueryMemo::new(),
        )
        .expect("evaluation");
        assert_eq!(baseline.rows.len(), rs.rows.len());
        for (a, b) in baseline.rows.iter().zip(&rs.rows) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.keys, b.keys);
            for (x, y) in a.cells.iter().zip(&b.cells) {
                assert_eq!(x.value.map(f64::to_bits), y.value.map(f64::to_bits));
                assert_eq!(x.confidence, y.confidence);
            }
        }
    }
}

fn main() {
    let w = large_workload();
    assert_determinism(&w);

    let mut c = Criterion::from_env();
    bench_mvft_inference(&mut c, &w);
    bench_aggregation(&mut c, &w);
    c.final_summary();

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Speedup of the 4-thread point over 1 thread, per benchmark family
    // (cold MVFT inference is the headline number).
    let median = |needle: &str| {
        c.results()
            .iter()
            .find(|r| r.name.contains(needle))
            .map(|r| r.median_ns)
    };
    if let (Some(t1), Some(t4)) = (median("mvft_infer/cold/1"), median("mvft_infer/cold/4")) {
        eprintln!(
            "mvft_infer cold speedup at 4 threads: {:.2}x (host has {host_cpus} cpu(s){})",
            t1 / t4,
            if host_cpus < 4 {
                " — scaling beyond the core count is not physically possible"
            } else {
                ""
            }
        );
    }

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"facts\": {},\n  \"results\": {}\n}}\n",
        w.tmd.facts().len(),
        c.to_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
