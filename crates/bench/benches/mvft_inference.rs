//! MultiVersion Fact Table inference cost (DESIGN.md
//! `bench_mvft_inference`): full materialisation vs the differences-only
//! extension, swept over fact volume and structure-version count.
//!
//! Expected shape: inference is linear in facts; full materialisation
//! grows with the number of structure versions (the §5.1 redundancy)
//! while the delta representation's stored volume stays near the mapped
//! fraction.

use mvolap_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvolap_core::{DeltaMvft, MultiVersionFactTable};
use mvolap_workload::{generate, WorkloadConfig};

fn evolving(
    seed: u64,
    departments: usize,
    periods: u32,
    facts: usize,
) -> mvolap_workload::GeneratedWorkload {
    let mut cfg = WorkloadConfig::small(seed)
        .with_departments(departments)
        .with_periods(periods)
        .with_facts_per_department(facts);
    cfg.split_prob = 0.20;
    cfg.merge_prob = 0.05;
    cfg.reclassify_prob = 0.10;
    cfg.create_prob = 0.0;
    cfg.delete_prob = 0.0;
    generate(&cfg).expect("workload generates")
}

fn bench_fact_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvft_inference/facts");
    group.sample_size(10);
    for facts_per_dept in [2usize, 8, 32] {
        let w = evolving(7, 20, 4, facts_per_dept);
        let n = w.tmd.facts().len();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("full", n), &w, |b, w| {
            b.iter(|| MultiVersionFactTable::infer(&w.tmd).expect("inference"))
        });
        group.bench_with_input(BenchmarkId::new("delta", n), &w, |b, w| {
            b.iter(|| DeltaMvft::infer(&w.tmd).expect("inference"))
        });
    }
    group.finish();
}

fn bench_version_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvft_inference/versions");
    group.sample_size(10);
    for periods in [2u32, 4, 8] {
        let w = evolving(11, 15, periods, 4);
        let versions = w.tmd.structure_versions().len();
        group.bench_with_input(BenchmarkId::new("full", versions), &w, |b, w| {
            b.iter(|| MultiVersionFactTable::infer(&w.tmd).expect("inference"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fact_sweep, bench_version_sweep);
criterion_main!(benches);
