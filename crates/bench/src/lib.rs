//! Benchmark support: paper-artifact reproduction, a self-contained
//! Criterion-compatible measurement harness, and shared workload
//! helpers for the benches.

pub mod harness;
pub mod paper;
