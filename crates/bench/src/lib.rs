//! Benchmark support: paper-artifact reproduction and shared workload
//! helpers for the Criterion benches.

pub mod paper;
