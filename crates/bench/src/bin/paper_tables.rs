//! Regenerates every table and figure of the paper from the engine.
//!
//! ```text
//! paper_tables              # print all artifacts
//! paper_tables table4       # print one (table1..table12, truth-table,
//!                           # structure-versions, figure2, quality)
//! paper_tables --list       # list artifact ids
//! ```

use mvolap_bench::paper::all_artifacts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let artifacts = all_artifacts();

    if args.iter().any(|a| a == "--list") {
        for a in &artifacts {
            println!("{:<20} {}", a.id, a.title);
        }
        return;
    }

    let selected: Vec<_> = if args.is_empty() {
        artifacts.iter().collect()
    } else {
        let picked: Vec<_> = artifacts
            .iter()
            .filter(|a| args.iter().any(|q| q == a.id))
            .collect();
        if picked.is_empty() {
            eprintln!(
                "unknown artifact(s) {:?}; try --list for available ids",
                args
            );
            std::process::exit(1);
        }
        picked
    };

    for a in selected {
        println!("=== {} ===", a.title);
        println!("{}", a.body);
    }
}
