//! Storage-redundancy experiment (DESIGN.md `bench_storage_redundancy`).
//!
//! §5.1 concedes that making the model run on commercial OLAP tools
//! means "duplicating the values in all versions … a high level of
//! useless redundancies", and suggests storing only differences between
//! versions. This report quantifies both strategies on evolving
//! workloads of growing version count:
//!
//! * **full** — rows materialised across all modes (tcm + each VMi);
//! * **delta** — tcm plus only the mapped rows per version (the
//!   differences-only extension), which reconstructs the full table
//!   exactly (property-tested in `tests/proptests.rs`).
//!
//! ```text
//! cargo run -p mvolap-bench --bin redundancy_report [--release]
//! ```

use mvolap_core::{DeltaMvft, MultiVersionFactTable};
use mvolap_workload::{generate, WorkloadConfig};

fn main() {
    println!(
        "{:>8} {:>9} {:>7} {:>10} {:>11} {:>11} {:>8}",
        "periods", "versions", "facts", "full_rows", "delta_rows", "saving", "blowup"
    );
    for periods in [2u32, 4, 6, 8, 10] {
        let mut cfg = WorkloadConfig::small(123)
            .with_departments(20)
            .with_periods(periods)
            .with_facts_per_department(5);
        cfg.split_prob = 0.20;
        cfg.merge_prob = 0.05;
        cfg.reclassify_prob = 0.10;
        cfg.create_prob = 0.0;
        cfg.delete_prob = 0.0;
        let w = generate(&cfg).expect("workload generates");
        let versions = w.tmd.structure_versions().len();
        let facts = w.tmd.facts().len();
        let full = MultiVersionFactTable::infer(&w.tmd).expect("full inference");
        let delta = DeltaMvft::infer(&w.tmd).expect("delta inference");
        // Delta storage = the consistent cells (stored once) + only the
        // mapped cells of each version.
        let tcm_rows = full
            .for_mode(&mvolap_core::TemporalMode::Consistent)
            .expect("tcm present")
            .rows
            .len();
        let delta_rows = tcm_rows + delta.stored_rows();
        let full_rows = full.total_rows();
        println!(
            "{:>8} {:>9} {:>7} {:>10} {:>11} {:>10.1}% {:>7.2}x",
            periods,
            versions,
            facts,
            full_rows,
            delta_rows,
            100.0 * (1.0 - delta_rows as f64 / full_rows as f64),
            full_rows as f64 / tcm_rows as f64,
        );
    }
    println!(
        "\nfull_rows grows with the number of structure versions (the §5.1\n\
         redundancy: every version re-stores nearly every fact); delta_rows\n\
         stays near facts + mapped rows only."
    );
}
