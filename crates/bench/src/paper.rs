//! Reproduction of every table and figure in the paper.
//!
//! The paper's evaluation is a worked case study; each function here
//! regenerates one of its artifacts *from the engine* (never from
//! hard-coded result literals), so the integration suite can assert the
//! implementation reproduces the published numbers exactly:
//!
//! | Artifact | Function |
//! |---|---|
//! | Table 1–2, 7 | [`table_org`] (the Org dimension at a year) |
//! | Table 3 | [`table_3_snapshot`] |
//! | Table 4–6 | [`table_q1`] (Q1 under a temporal mode) |
//! | Table 8–10 | [`table_q2`] (Q2 under a temporal mode) |
//! | Table 11 | [`table_11_operations`] |
//! | Table 12 | [`table_12_mapping_relations`] |
//! | Example 5 truth table | [`truth_table`] |
//! | Example 7 | [`structure_version_listing`] |
//! | Figure 2 | [`figure_2_dot`] |
//! | §5.2 quality | [`quality_listing`] |

use mvolap_core::case_study::{case_study, case_study_two_measures, CaseStudy, TABLE_3};
use mvolap_core::evolution::{self, MergeSource, PartialAnnexationSpec, SplitPart};
use mvolap_core::{
    Confidence, ConfidenceWeights, MeasureDef, MemberVersionSpec, TemporalDimension, Tmd,
};
use mvolap_cube::mode_qualities;
use mvolap_query::run;
use mvolap_storage::render::render_table;
use mvolap_storage::{ColumnDef, DataType, Table, TableSchema};
use mvolap_temporal::{Granularity, Instant, Interval};

/// One reproduced paper artifact.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Short id (`table4`, `figure2`, …).
    pub id: &'static str,
    /// Human title quoting the paper.
    pub title: &'static str,
    /// Rendered text.
    pub body: String,
}

/// The Org dimension as of `year` — Tables 1 (2001), 2 (2002) and
/// 7 (2003): `(Division, Department)` rows ordered as the paper prints
/// them (Sales block first, then member order).
pub fn table_org(year: i32) -> Table {
    let cs = case_study();
    let d = cs.tmd.dimension(cs.org).expect("case study dimension");
    let t = Instant::ym(year, 6);
    let schema = TableSchema::new(vec![
        ColumnDef::required("Division", DataType::Str),
        ColumnDef::required("Department", DataType::Str),
    ])
    .expect("static schema");
    let mut rows: Vec<(String, u32, String)> = Vec::new();
    for v in d.versions() {
        if v.level.as_deref() != Some("Department") || !v.validity.contains(t) {
            continue;
        }
        for p in d.parents_at(v.id, t) {
            let division = d.version(p).expect("parent exists").name.clone();
            rows.push((division, v.id.0, v.name.clone()));
        }
    }
    // Paper layout: Sales block first (reverse-alphabetical divisions),
    // then member-version order.
    rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut table = Table::new(format!("org_{year}"), schema);
    for (division, _, department) in rows {
        table
            .push_row(vec![division.into(), department.into()])
            .expect("schema-conformant row");
    }
    table
}

/// Table 3: the snapshot of fact data for 2001–2003, with the division
/// each department belonged to at the fact's own time.
pub fn table_3_snapshot() -> Table {
    let cs = case_study();
    let d = cs.tmd.dimension(cs.org).expect("case study dimension");
    let schema = TableSchema::new(vec![
        ColumnDef::required("Year", DataType::Int),
        ColumnDef::required("Division", DataType::Str),
        ColumnDef::required("Department", DataType::Str),
        ColumnDef::required("Amount", DataType::Float),
    ])
    .expect("static schema");
    let mut table = Table::new("table3", schema);
    for (year, dept, amount) in TABLE_3 {
        let t = Instant::ym(year, 6);
        let leaf = d.version_named_at(dept, t).expect("Table 3 member").id;
        let parent = d.parents_at(leaf, t)[0];
        let division = d.version(parent).expect("parent exists").name.clone();
        table
            .push_row(vec![
                (year as i64).into(),
                division.into(),
                dept.into(),
                amount.into(),
            ])
            .expect("schema-conformant row");
    }
    table
}

/// Q1 ("total amount by year and division", years 2001–2002) under a
/// temporal mode — Tables 4 (`tcm`), 5 (`VERSION 0`), 6 (`VERSION 1`).
pub fn table_q1(mode: &str) -> Table {
    let cs = case_study();
    let rs = run(
        &cs.tmd,
        &format!("SELECT sum(Amount) BY year, Org.Division FOR 2001..2002 IN MODE {mode}"),
    )
    .expect("Q1 is valid");
    rs.to_storage_table(&format!("q1_{mode}"))
        .expect("exportable")
}

/// Q2 ("total amounts per department", years 2002–2003) under a temporal
/// mode — Tables 8 (`tcm`), 9 (`VERSION 1`), 10 (`VERSION 2`).
pub fn table_q2(mode: &str) -> Table {
    let cs = case_study();
    let rs = run(
        &cs.tmd,
        &format!("SELECT sum(Amount) BY year, Org.Department FOR 2002..2003 IN MODE {mode}"),
    )
    .expect("Q2 is valid");
    rs.to_storage_table(&format!("q2_{mode}"))
        .expect("exportable")
}

/// A fresh minimal schema for demonstrating the Table 11 operator
/// translations: one division `P1`, departments `V`, `V1`, `V2`.
fn table_11_base() -> (
    Tmd,
    mvolap_core::DimensionId,
    [mvolap_core::MemberVersionId; 4],
) {
    let mut tmd = Tmd::new("t11", Granularity::Month);
    let mut d = TemporalDimension::new("Org");
    let all = Interval::since(Instant::ym(2001, 1));
    let p1 = d.add_version(MemberVersionSpec::named("P1").at_level("Division"), all);
    let v = d.add_version(MemberVersionSpec::named("V").at_level("Department"), all);
    let v1 = d.add_version(MemberVersionSpec::named("V1").at_level("Department"), all);
    let v2 = d.add_version(MemberVersionSpec::named("V2").at_level("Department"), all);
    for dept in [v, v1, v2] {
        d.add_relationship(dept, p1, all).expect("base edge");
    }
    let dim = tmd.add_dimension(d).expect("fresh schema");
    tmd.add_measure(MeasureDef::summed("m1"))
        .expect("fresh schema");
    (tmd, dim, [p1, v, v1, v2])
}

/// Table 11: each simple and complex operation compiled to its basic
/// operator sequence, rendered in the paper's notation. Every script is
/// *actually applied* to a fresh schema, not just pretty-printed.
pub fn table_11_operations() -> String {
    let t = Instant::ym(2003, 1);
    let mut out = String::new();

    {
        let (mut tmd, dim, [p1, ..]) = table_11_base();
        let o = evolution::create(&mut tmd, dim, "Vnew", Some("Department".into()), t, &[p1])
            .expect("create applies");
        out.push_str("Creation of Vnew at time T in the dimension Org as a child of P1:\n");
        out.push_str(&o.render(&tmd));
        out.push_str("\n\n");
    }
    {
        let (mut tmd, dim, [_, v, ..]) = table_11_base();
        let o = evolution::transform(&mut tmd, dim, v, "V'", Default::default(), t)
            .expect("transform applies");
        out.push_str("Change from V to V' at time T (equivalence relationship):\n");
        out.push_str(&o.render(&tmd));
        out.push_str("\n\n");
    }
    {
        let (mut tmd, dim, [p1, _, v1, v2]) = table_11_base();
        let o = evolution::merge(
            &mut tmd,
            dim,
            &[
                MergeSource::with_share(v1, 0.5, 1),
                MergeSource::with_unknown_share(v2, 1),
            ],
            "V12",
            Some("Department".into()),
            t,
            &[p1],
        )
        .expect("merge applies");
        out.push_str(
            "Merge of V1 and V2 into V12 at time T (half of V12 maps back to V1, \
             V12->V2 unknown):\n",
        );
        out.push_str(&o.render(&tmd));
        out.push_str("\n\n");
    }
    {
        let (mut tmd, dim, [p1, v, ..]) = table_11_base();
        let o =
            evolution::increase(&mut tmd, dim, v, "V+", 2.0, t, &[p1]).expect("increase applies");
        out.push_str("Increase V in V+ at time T (values increase with a factor 2):\n");
        out.push_str(&o.render(&tmd));
        out.push_str("\n\n");
    }
    {
        let (mut tmd, dim, [p1, _, v1, v2]) = table_11_base();
        let o = evolution::partial_annexation(
            &mut tmd,
            dim,
            v1,
            v2,
            "V1-",
            "V2+",
            PartialAnnexationSpec {
                moved: 0.1,
                target_growth: 0.2,
            },
            t,
            &[p1],
        )
        .expect("partial annexation applies");
        out.push_str(
            "Partial annexation of a portion of V1 to V2 at time T \
             (10% of V1 goes to V2, a 20% increase for V2):\n",
        );
        out.push_str(&o.render(&tmd));
        out.push('\n');
    }
    out
}

/// A split demonstration used by the Table 11 suite: the case-study
/// split expressed through the high-level operator (rather than the
/// pre-built case study).
pub fn split_outcome() -> (Tmd, evolution::EvolutionOutcome) {
    let (mut tmd, dim, [p1, v, ..]) = table_11_base();
    let o = evolution::split(
        &mut tmd,
        dim,
        v,
        &[
            SplitPart::proportional("Va", 0.4, 1),
            SplitPart::proportional("Vb", 0.6, 1),
        ],
        Instant::ym(2003, 1),
        &[p1],
    )
    .expect("split applies");
    (tmd, o)
}

/// Table 12: the mapping-relations metadata table of the two-measure
/// case study (Turnover split 60/40, Profit split 80/20).
pub fn table_12_mapping_relations() -> Table {
    let cs: CaseStudy = case_study_two_measures();
    mvolap_core::logical::export_mapping_relations(&cs.tmd, cs.org).expect("exportable")
}

/// Example 5's `⊗cf` truth table, rendered as the paper prints it.
pub fn truth_table() -> Table {
    let schema = TableSchema::new(
        std::iter::once(ColumnDef::required("⊗cf", DataType::Str))
            .chain(
                Confidence::ALL
                    .iter()
                    .map(|c| ColumnDef::required(c.code(), DataType::Str)),
            )
            .collect(),
    )
    .expect("static schema");
    let mut table = Table::new("truth_table", schema);
    for a in Confidence::ALL {
        let mut row: Vec<mvolap_storage::Value> = vec![a.code().into()];
        for b in Confidence::ALL {
            row.push(a.combine(b).code().into());
        }
        table.push_row(row).expect("schema-conformant row");
    }
    table
}

/// Examples 1–3: member versions and temporal relationships of the
/// case study in the paper's tuple notation
/// (`<MVid, Name, Level, ti, tf>` and `<Id_from, Id_to, ti, tf>`).
pub fn examples_1_3_tuples() -> String {
    let cs = case_study();
    let d = cs.tmd.dimension(cs.org).expect("case study dimension");
    let mut out = String::new();
    out.push_str("Member Versions (Definition 1):\n");
    for v in d.versions() {
        out.push_str("  ");
        out.push_str(&v.tuple_notation());
        out.push('\n');
    }
    out.push_str("Temporal Relationships (Definition 2):\n");
    for r in d.relationships() {
        let child = d.version(r.child).expect("exists");
        let parent = d.version(r.parent).expect("exists");
        out.push_str(&format!(
            "  <{}_id, {}_id, {}, {}>\n",
            child.name,
            parent.name,
            r.validity.start(),
            r.validity.end()
        ));
    }
    out
}

/// Example 7: the inferred structure versions of the case study.
pub fn structure_version_listing() -> String {
    let cs = case_study();
    let svs = cs.tmd.structure_versions();
    let d = cs.tmd.dimension(cs.org).expect("case study dimension");
    let mut out = String::new();
    for sv in &svs {
        out.push_str(&sv.label());
        let members: Vec<String> = sv.members[cs.org.index()]
            .iter()
            .map(|&id| d.version(id).expect("member exists").name.clone())
            .collect();
        out.push_str(&format!("  members: {}\n", members.join(", ")));
    }
    out
}

/// Figure 2: the Org dimension as a GraphViz DOT digraph with node and
/// edge validities.
pub fn figure_2_dot() -> String {
    let cs = case_study();
    cs.tmd
        .dimension(cs.org)
        .expect("case study dimension")
        .to_dot(Granularity::Month)
}

/// §5.2: the global quality factor of Q2 under every temporal mode,
/// with the default confidence weights.
pub fn quality_listing() -> String {
    let cs = case_study();
    let svs = cs.tmd.structure_versions();
    let q = mvolap_core::AggregateQuery::by_year(
        cs.org,
        "Department",
        mvolap_core::TemporalMode::Consistent,
    )
    .in_range(Interval::years(2002, 2003));
    let scores = mode_qualities(&cs.tmd, &svs, &q, &ConfidenceWeights::DEFAULT)
        .expect("Q2 evaluates in every mode");
    let mut out = String::new();
    for s in scores {
        out.push_str(&format!(
            "{:<6} Q = {:.3}  ({} rows, {} unmapped)\n",
            s.mode.label(),
            s.quality,
            s.rows,
            s.unmapped_rows
        ));
    }
    out
}

/// Every artifact, in paper order.
pub fn all_artifacts() -> Vec<Artifact> {
    vec![
        Artifact {
            id: "table1",
            title: "Table 1. The organization dimension in 2001",
            body: render_table(&table_org(2001)),
        },
        Artifact {
            id: "table2",
            title: "Table 2. The organization dimension in 2002",
            body: render_table(&table_org(2002)),
        },
        Artifact {
            id: "table3",
            title: "Table 3. Snapshot of data for year 2001, 2002, 2003",
            body: render_table(&table_3_snapshot()),
        },
        Artifact {
            id: "table4",
            title: "Table 4. Result of Q1 in consistent time",
            body: render_table(&table_q1("tcm")),
        },
        Artifact {
            id: "table5",
            title: "Table 5. Result of Q1 mapped on 2001 organization",
            body: render_table(&table_q1("VERSION 0")),
        },
        Artifact {
            id: "table6",
            title: "Table 6. Result of Q1 mapped on 2002 organization",
            body: render_table(&table_q1("VERSION 1")),
        },
        Artifact {
            id: "table7",
            title: "Table 7. The organization dimension in 2003",
            body: render_table(&table_org(2003)),
        },
        Artifact {
            id: "table8",
            title: "Table 8. Result of Q2 in consistent time",
            body: render_table(&table_q2("tcm")),
        },
        Artifact {
            id: "table9",
            title: "Table 9. Result of Q2 on 2002 organization",
            body: render_table(&table_q2("VERSION 1")),
        },
        Artifact {
            id: "table10",
            title: "Table 10. Result of Q2 on 2003 organization",
            body: render_table(&table_q2("VERSION 2")),
        },
        Artifact {
            id: "table11",
            title: "Table 11. Examples of simple and complex operations",
            body: table_11_operations(),
        },
        Artifact {
            id: "table12",
            title: "Table 12. Table of mapping relations between version members",
            body: render_table(&table_12_mapping_relations()),
        },
        Artifact {
            id: "examples1-3",
            title: "Examples 1-3. Member versions and temporal relationships (tuple notation)",
            body: examples_1_3_tuples(),
        },
        Artifact {
            id: "truth-table",
            title: "Example 5. The ⊗cf aggregation truth table",
            body: render_table(&truth_table()),
        },
        Artifact {
            id: "structure-versions",
            title: "Example 7. Inferred structure versions",
            body: structure_version_listing(),
        },
        Artifact {
            id: "figure2",
            title: "Figure 2. The Org dimension (GraphViz DOT)",
            body: figure_2_dot(),
        },
        Artifact {
            id: "quality",
            title: "§5.2 Global quality factor of Q2 per temporal mode",
            body: quality_listing(),
        },
    ]
}
