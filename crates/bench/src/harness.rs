//! A minimal Criterion-compatible benchmark harness.
//!
//! The build environment has no network route to a crates registry, so
//! the external `criterion` crate cannot be fetched. This module
//! re-implements the (small) API surface the benches in
//! `crates/bench/benches/` actually use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], [`Bencher`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — over plain
//! `std::time::Instant` sampling, so every bench file needs only its
//! import line changed.
//!
//! Measurement model: per benchmark, a short warm-up estimates the cost
//! of one iteration; each *sample* then runs enough iterations to fill
//! a fixed time slice, and the reported figure is the median over the
//! samples (robust to scheduler noise on small machines). Results
//! accumulate on the [`Criterion`] value and can be dumped as JSON for
//! machine-readable reports.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::hint::black_box;
use std::time::{Duration, Instant};

pub use crate::{criterion_group, criterion_main};

/// Throughput annotation attached to a group (elements per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter: `name/param`.
    pub fn new<P: std::fmt::Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// One measured benchmark, as recorded on the [`Criterion`] value.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark path, e.g. `mvft_inference/facts/full/160`.
    pub name: String,
    /// Median nanoseconds per iteration over the samples.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration over the samples.
    pub mean_ns: f64,
    /// Fastest sample (ns per iteration).
    pub min_ns: f64,
    /// Slowest sample (ns per iteration).
    pub max_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Total iterations across all samples.
    pub iterations: u64,
    /// Elements per iteration, when the group declared a throughput.
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Elements processed per second at the median, if declared.
    #[must_use]
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements.map(|e| e as f64 / (self.median_ns / 1.0e9))
    }
}

/// Measurement knobs (a subset of Criterion's, honouring the same
/// defaults the benches relied on).
#[derive(Debug, Clone, Copy)]
pub struct MeasureConfig {
    /// Samples per benchmark.
    pub sample_size: usize,
    /// Warm-up budget before sampling.
    pub warmup: Duration,
    /// Target wall time per sample.
    pub sample_time: Duration,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sample_size: 20,
            warmup: Duration::from_millis(50),
            sample_time: Duration::from_millis(20),
        }
    }
}

/// The harness entry point: owns config, an optional name filter, and
/// the accumulated [`BenchResult`]s.
#[derive(Debug, Default)]
pub struct Criterion {
    config: MeasureConfig,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// A harness with default config and CLI-derived filter: the first
    /// non-flag argument (as passed by `cargo bench -- <substr>`)
    /// restricts which benchmarks run. Flags Criterion would accept
    /// (`--bench`, `--quick`, …) are ignored for compatibility.
    #[must_use]
    pub fn from_env() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let mut config = MeasureConfig::default();
        if let Ok(ms) = std::env::var("MVOLAP_BENCH_SAMPLE_MS") {
            if let Ok(ms) = ms.parse::<u64>() {
                config.sample_time = Duration::from_millis(ms.max(1));
            }
        }
        Criterion {
            config,
            filter,
            results: Vec::new(),
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.to_string(), None, None, |b| f(b));
        self
    }

    /// All results measured so far, in execution order.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints a one-line-per-benchmark summary footer.
    pub fn final_summary(&self) {
        eprintln!("\n{} benchmarks measured", self.results.len());
    }

    /// Serialises all results as a JSON array (no external JSON crate;
    /// names contain only identifier-ish characters, so plain string
    /// escaping of `"` and `\` suffices).
    #[must_use]
    pub fn to_json(&self) -> String {
        results_to_json(&self.results)
    }

    fn run_one<F>(
        &mut self,
        name: String,
        sample_size: Option<usize>,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut config = self.config;
        if let Some(n) = sample_size {
            config.sample_size = n.max(2);
        }
        let mut bencher = Bencher {
            config,
            measurement: None,
        };
        f(&mut bencher);
        let Some(m) = bencher.measurement else {
            return; // the closure never called iter()
        };
        let elements = throughput.map(|t| match t {
            Throughput::Elements(e) | Throughput::Bytes(e) => e,
        });
        let result = BenchResult {
            name,
            median_ns: m.median_ns,
            mean_ns: m.mean_ns,
            min_ns: m.min_ns,
            max_ns: m.max_ns,
            samples: m.samples,
            iterations: m.iterations,
            elements,
        };
        let rate = result
            .elements_per_sec()
            .map(|r| format!("  ({} elem/s)", human_count(r)))
            .unwrap_or_default();
        eprintln!(
            "{:<56} median {:>12}  mean {:>12}{rate}",
            result.name,
            human_time(result.median_ns),
            human_time(result.mean_ns),
        );
        self.results.push(result);
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` against `input` under `group_name/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        let (sample_size, throughput) = (self.sample_size, self.throughput);
        self.criterion
            .run_one(name, sample_size, throughput, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `group_name/name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let (sample_size, throughput) = (self.sample_size, self.throughput);
        self.criterion
            .run_one(full, sample_size, throughput, |b| f(b));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iterations: u64,
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) runs
/// and times the routine.
#[derive(Debug)]
pub struct Bencher {
    config: MeasureConfig,
    measurement: Option<Measurement>,
}

impl Bencher {
    /// Measures `routine`, timing batches sized from a warm-up estimate.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the budget elapses (at least once) to get
        // a per-iteration estimate and to populate caches.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_iters == 0 || warmup_start.elapsed() < self.config.warmup {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);
        let per_sample = ((self.config.sample_time.as_nanos() as f64 / est_ns).floor() as u64)
            .clamp(1, 1_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        let mut iterations: u64 = 0;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            samples_ns.push(elapsed / per_sample as f64);
            iterations += per_sample;
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median_ns = if samples_ns.len() % 2 == 1 {
            samples_ns[samples_ns.len() / 2]
        } else {
            let hi = samples_ns.len() / 2;
            (samples_ns[hi - 1] + samples_ns[hi]) / 2.0
        };
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.measurement = Some(Measurement {
            median_ns,
            mean_ns,
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().expect("at least one sample"),
            samples: samples_ns.len(),
            iterations,
        });
    }
}

/// Formats nanoseconds with an auto-scaled unit.
#[must_use]
pub fn human_time(ns: f64) -> String {
    if ns < 1.0e3 {
        format!("{ns:.1} ns")
    } else if ns < 1.0e6 {
        format!("{:.2} µs", ns / 1.0e3)
    } else if ns < 1.0e9 {
        format!("{:.2} ms", ns / 1.0e6)
    } else {
        format!("{:.3} s", ns / 1.0e9)
    }
}

fn human_count(n: f64) -> String {
    if n < 1.0e3 {
        format!("{n:.0}")
    } else if n < 1.0e6 {
        format!("{:.1}K", n / 1.0e3)
    } else {
        format!("{:.2}M", n / 1.0e6)
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialises results as a JSON array (shared by [`Criterion::to_json`]
/// and report writers).
#[must_use]
pub fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let elements = r
            .elements
            .map(|e| e.to_string())
            .unwrap_or_else(|| "null".to_string());
        let rate = r
            .elements_per_sec()
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \
             \"iterations\": {}, \"elements\": {}, \"elements_per_sec\": {}}}{}",
            json_escape(&r.name),
            r.median_ns,
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            r.iterations,
            elements,
            rate,
            if i + 1 == results.len() { "\n" } else { ",\n" },
        ));
    }
    out.push(']');
    out
}

/// Expands to a function running each target against the shared
/// [`Criterion`] value — compatible with criterion's macro of the same
/// name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Expands to `main`, running every group then printing the summary —
/// compatible with criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::from_env();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_records() {
        let mut c = Criterion {
            config: MeasureConfig {
                sample_size: 5,
                warmup: Duration::from_millis(1),
                sample_time: Duration::from_millis(1),
            },
            filter: None,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("f", 1), &7u64, |b, &x| b.iter(|| x * 2));
        group.finish();
        c.bench_function("solo", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 2);
        let r = &c.results()[0];
        assert_eq!(r.name, "g/f/1");
        assert_eq!(r.samples, 3);
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.elements_per_sec().expect("throughput set") > 0.0);
        assert_eq!(c.results()[1].name, "solo");

        let json = c.to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"name\": \"g/f/1\""));
        assert!(json.contains("\"elements\": 100"));
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut c = Criterion {
            config: MeasureConfig::default(),
            filter: Some("match-me".to_string()),
            results: Vec::new(),
        };
        c.bench_function("other", |b| b.iter(|| 1));
        assert!(c.results().is_empty());
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("full", 42).to_string(), "full/42");
        assert_eq!(BenchmarkId::from_parameter("tcm").to_string(), "tcm");
    }

    #[test]
    fn human_time_scales_units() {
        assert_eq!(human_time(12.0), "12.0 ns");
        assert_eq!(human_time(1.5e3), "1.50 µs");
        assert_eq!(human_time(2.5e6), "2.50 ms");
        assert_eq!(human_time(3.0e9), "3.000 s");
    }
}
