//! Session-server integration tests: the acceptance gates of the
//! serving subsystem.
//!
//! - **Serializability / bit-identity.** M concurrent clients
//!   interleaving commits and queries leave the store in a state
//!   bit-identical to replaying the same records sequentially in LSN
//!   order (snapshot bytes + result-table digests) — swept across pool
//!   sizes 1, 2 and the host's CPU count, plus the `workers: 0`
//!   thread-per-session baseline.
//! - **Pool admission.** Queue overflow under a busy pool refuses with
//!   a typed `Busy` from the poll loop without blocking the worker;
//!   a parked session dropping releases its slot (RAII permit).
//! - **Group commit over the wire.** 8 concurrent committers share a
//!   single fsync under a manual timeline — strictly fewer fsyncs than
//!   commits.
//! - **Admission control.** The `max_sessions + max_queued + 1`st
//!   session is refused with a typed `Busy`, not an unbounded queue.
//! - **Mid-query disconnect.** A client vanishing after sending a
//!   request neither hangs nor poisons the server.
//! - **Read routing.** A stale follower refuses a bounded read with a
//!   typed `TooStale`; after catch-up it serves bytes identical to the
//!   primary.

use std::path::PathBuf;

use mvolap_core::case_study::case_study;
use mvolap_core::persist::write_tmd;
use mvolap_durable::{
    DurableTmd, FactRow, GroupCommit, GroupConfig, Io, Options, TimeSource, WalRecord,
};
use mvolap_replica::{Follower, NetAddr, NetConfig, NetStream};
use mvolap_server::{proto, Request, ServerError, ServerOptions, SessionClient, SessionServer};
use mvolap_storage::persist::table_digest;
use mvolap_temporal::Instant;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mvolap_srv_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn local_addr() -> NetAddr {
    NetAddr::parse("127.0.0.1:0").unwrap()
}

fn snapshot(tmd: &mvolap_core::Tmd) -> Vec<u8> {
    let mut buf = Vec::new();
    write_tmd(tmd, &mut buf).unwrap();
    buf
}

const QUERY: &str = "SELECT sum(Amount) BY year, Org.Division FOR 2001..2003 IN MODE tcm";

/// M clients interleaving commits and queries are serializable: the
/// final state equals a sequential replay of the journaled records in
/// LSN order, and every rendered query matches the replayed store.
/// Swept across pool sizes — multiplexing sessions over 1, 2 or
/// `host_cpus` workers must not change a single byte — and the
/// `workers: 0` thread-per-session baseline.
#[test]
fn concurrent_sessions_are_bit_identical_to_a_sequential_replay() {
    let host_cpus = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let mut sweep = vec![0, 1, 2, host_cpus];
    sweep.sort_unstable();
    sweep.dedup();
    for workers in sweep {
        bit_identity_at(workers);
    }
}

fn bit_identity_at(workers: usize) {
    let dir = tmp(&format!("bitident_w{workers}"));
    let cs = case_study();
    let store = DurableTmd::create(&dir, cs.tmd.clone()).unwrap();
    let group = GroupCommit::new(store, GroupConfig::default());
    let opts = ServerOptions {
        workers,
        ..ServerOptions::default()
    };
    let server = SessionServer::spawn(&local_addr(), group, opts).unwrap();

    // Each client writes to its own leaf member (disjoint group-by
    // cells) and runs the shared query between commits.
    let leaves = [cs.brian, cs.smith, cs.bill, cs.paul];
    let handles: Vec<_> = leaves
        .iter()
        .enumerate()
        .map(|(c, &leaf)| {
            let addr = server.addr().clone();
            std::thread::spawn(move || {
                let mut client = SessionClient::connect(addr, NetConfig::default());
                for k in 0..5u32 {
                    let record = WalRecord::FactBatch {
                        rows: vec![FactRow {
                            coords: vec![leaf],
                            at: Instant::ym(2003, 1 + (k % 12)),
                            values: vec![(c as f64 + 1.0) * 10.0 + f64::from(k)],
                        }],
                    };
                    client.commit(&record).unwrap();
                    client.query(QUERY).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Sequential replay of the journal into a fresh store.
    let replay_dir = tmp(&format!("bitident_replay_w{workers}"));
    let mut replayed = DurableTmd::create(&replay_dir, cs.tmd.clone()).unwrap();
    let frames = server.group().with_store(|s| s.tail(1).unwrap());
    assert_eq!(
        frames.len(),
        1 + leaves.len() * 5,
        "snapshot seed + 20 commits"
    );
    // Frame 1 is the schema-seed record written by `create`; skip it —
    // the replay store journals its own.
    for frame in &frames[1..] {
        let record = WalRecord::decode(&frame.payload).unwrap();
        replayed.apply(record).unwrap();
    }

    let served = server.group().with_store(|s| snapshot(s.schema()));
    assert_eq!(
        served,
        snapshot(replayed.schema()),
        "state must be bit-identical"
    );

    // Query bit-identity: the served rendering and digest equal the
    // sequential store's.
    let mut client = SessionClient::connect(server.addr().clone(), NetConfig::default());
    let over_wire = client.query(QUERY).unwrap();
    let local = mvolap_query::run(replayed.schema(), QUERY).unwrap();
    assert_eq!(over_wire, local.render("result").unwrap());
    let served_digest = server.group().with_store(|s| {
        let rs = mvolap_query::run(s.schema(), QUERY).unwrap();
        table_digest(&rs.to_storage_table("result").unwrap())
    });
    assert_eq!(
        served_digest,
        table_digest(&local.to_storage_table("result").unwrap())
    );

    // The pool actually carried the load: every request went through
    // the workers, and the sharded memo absorbed the repeated lookups.
    let stats = server.pool_stats();
    assert_eq!(stats.workers, workers);
    assert!(
        stats.served >= 4 * 5 * 2,
        "20 commits + 20 queries must be counted, got {}",
        stats.served
    );
    assert_eq!(stats.memo.len(), workers.max(1));
    let memo_total = stats.memo.iter().fold(0u64, |acc, m| {
        acc + m.routes.hits + m.routes.misses + m.ancestors.hits + m.ancestors.misses
    });
    assert!(memo_total > 0, "queries must exercise the sharded memo");

    drop(server);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&replay_dir).ok();
}

/// 8 concurrent committers, one manual-clock hold window: strictly
/// fewer fsyncs than commits (here exactly one shared sync), and every
/// commit acknowledged durable.
#[test]
fn concurrent_commits_share_a_sync_over_the_wire() {
    let dir = tmp("groupwire");
    let cs = case_study();
    let store = DurableTmd::create(&dir, cs.tmd.clone()).unwrap();
    let time = TimeSource::manual(0);
    let group = GroupCommit::new(
        store,
        GroupConfig {
            hold_ms: 60,
            time: time.clone(),
        },
    );
    let base_lsn = group.wal_position();
    let fsyncs_before = group.fsyncs();
    // Every committer parks inside the manual-clock hold window at
    // once, each occupying a worker — the pool must be at least as
    // wide as the committers or the window could never fill.
    let opts = ServerOptions {
        workers: 8,
        ..ServerOptions::default()
    };
    let server = SessionServer::spawn(&local_addr(), group.clone(), opts).unwrap();

    const COMMITTERS: u64 = 8;
    let handles: Vec<_> = (0..COMMITTERS)
        .map(|c| {
            let addr = server.addr().clone();
            let leaf = cs.brian;
            std::thread::spawn(move || {
                let mut client = SessionClient::connect(addr, NetConfig::default());
                client
                    .commit(&WalRecord::FactBatch {
                        rows: vec![FactRow {
                            coords: vec![leaf],
                            at: Instant::ym(2003, 1 + (c % 12) as u32),
                            values: vec![c as f64],
                        }],
                    })
                    .unwrap()
            })
        })
        .collect();

    // Let every committer append into the held batch, then close the
    // window: one leader, one fsync, eight acknowledgements.
    while group.wal_position() < base_lsn + COMMITTERS {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    time.advance(10_000);

    let mut lsns: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    lsns.sort_unstable();
    let expect: Vec<u64> = (base_lsn..base_lsn + COMMITTERS).collect();
    assert_eq!(lsns, expect, "dense LSNs, no gaps, no duplicates");
    let spent = group.fsyncs() - fsyncs_before;
    assert!(
        spent < COMMITTERS,
        "group commit must share fsyncs: {spent} fsyncs for {COMMITTERS} commits"
    );
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

/// The session past `max_sessions + max_queued` is refused with a
/// typed `Busy` carrying the gate's occupancy.
#[test]
fn admission_overflow_is_a_typed_busy_refusal() {
    let dir = tmp("busy");
    let cs = case_study();
    let store = DurableTmd::create(&dir, cs.tmd).unwrap();
    let group = GroupCommit::new(store, GroupConfig::default());
    let opts = ServerOptions {
        max_sessions: 1,
        max_queued: 0,
        ..ServerOptions::default()
    };
    let server = SessionServer::spawn(&local_addr(), group, opts).unwrap();

    let mut first = SessionClient::connect(server.addr().clone(), NetConfig::default());
    first.ping().unwrap(); // occupies the only slot for its lifetime

    let mut second = SessionClient::connect(server.addr().clone(), NetConfig::default());
    match second.ping() {
        Err(ServerError::Busy { active, queued }) => {
            assert_eq!((active, queued), (1, 0));
        }
        other => panic!("expected Busy, got {other:?}"),
    }

    // The admitted session keeps working; a slot freed by disconnect
    // is reusable.
    first.ping().unwrap();
    drop(first);
    let mut third = SessionClient::connect(server.addr().clone(), NetConfig::default());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match third.ping() {
            Ok(()) => break,
            Err(ServerError::Busy { .. }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

/// Queue overflow under the pooled loop: with the only worker parked
/// inside a commit's hold window, a second session's request finds
/// every queue slot taken and is refused with a typed `Busy` straight
/// from the poll loop — the refused session stays connected (it is
/// parked again, not dropped) and is served normally once the worker
/// frees up. No worker ever blocks on the overflow.
#[test]
fn queue_overflow_is_refused_typed_without_blocking_a_worker() {
    let dir = tmp("overflow");
    let cs = case_study();
    let store = DurableTmd::create(&dir, cs.tmd.clone()).unwrap();
    let time = TimeSource::manual(0);
    let group = GroupCommit::new(
        store,
        GroupConfig {
            hold_ms: 60,
            time: time.clone(),
        },
    );
    let base_lsn = group.wal_position();
    let opts = ServerOptions {
        workers: 1,
        max_queued: 0,
        ..ServerOptions::default()
    };
    let server = SessionServer::spawn(&local_addr(), group.clone(), opts).unwrap();

    // Session A: a commit that parks in the hold window, pinning the
    // only worker until the manual clock advances.
    let committer = {
        let addr = server.addr().clone();
        let leaf = cs.brian;
        std::thread::spawn(move || {
            let mut client = SessionClient::connect(addr, NetConfig::default());
            client
                .commit(&WalRecord::FactBatch {
                    rows: vec![FactRow {
                        coords: vec![leaf],
                        at: Instant::ym(2003, 3),
                        values: vec![7.0],
                    }],
                })
                .unwrap()
        })
    };
    while group.wal_position() < base_lsn + 1 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // Session B: admitted (session slots are plentiful), but its
    // request overflows the zero-length worker queue.
    let mut second = SessionClient::connect(server.addr().clone(), NetConfig::default());
    match second.ping() {
        Err(ServerError::Busy { active, queued }) => {
            assert_eq!(queued, 0, "nothing can wait behind max_queued: 0");
            assert!(active >= 2, "both sessions hold slots, got {active}");
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    assert!(
        server.pool_stats().refused >= 1,
        "the refusal must be counted"
    );

    // Free the worker; the refused session keeps its connection and is
    // served on retry.
    time.advance(10_000);
    committer.join().unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match second.ping() {
            Ok(()) => break,
            Err(ServerError::Busy { .. }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("refused session must recover: {e}"),
        }
    }
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

/// A parked session dropping its connection releases its admission
/// slot (the RAII permit travels with the parked connection), and the
/// pool gauges see the park and the release.
#[test]
fn parked_session_drop_releases_its_slot() {
    let dir = tmp("parked_drop");
    let cs = case_study();
    let store = DurableTmd::create(&dir, cs.tmd).unwrap();
    let group = GroupCommit::new(store, GroupConfig::default());
    let opts = ServerOptions {
        workers: 2,
        max_sessions: 1,
        max_queued: 0,
        ..ServerOptions::default()
    };
    let server = SessionServer::spawn(&local_addr(), group, opts).unwrap();

    let mut first = SessionClient::connect(server.addr().clone(), NetConfig::default());
    first.ping().unwrap(); // round-trip: admitted and parked again
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let stats = server.pool_stats();
        if stats.active == 1 && stats.parked == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "session never parked: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // The parked session vanishes; its permit must free the only slot.
    drop(first);
    let mut second = SessionClient::connect(server.addr().clone(), NetConfig::default());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match second.ping() {
            Ok(()) => break,
            Err(ServerError::Busy { .. }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("slot never released by the dropped park: {e}"),
        }
    }
    assert_eq!(server.pool_stats().active, 1, "only the new session");
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

/// A client that sends a request and vanishes mid-exchange must not
/// hang a worker, leak its session slot or poison shared state.
#[test]
fn mid_query_disconnect_leaves_the_server_serving() {
    let dir = tmp("disconnect");
    let cs = case_study();
    let store = DurableTmd::create(&dir, cs.tmd).unwrap();
    let group = GroupCommit::new(store, GroupConfig::default());
    let opts = ServerOptions {
        max_sessions: 2,
        max_queued: 0,
        ..ServerOptions::default()
    };
    let server = SessionServer::spawn(&local_addr(), group, opts).unwrap();
    let NetAddr::Tcp(raw_addr) = server.addr().clone() else {
        panic!("tcp test");
    };

    for _ in 0..3 {
        // Raw connection: send a valid query frame, never read the
        // reply, slam the connection shut.
        let tcp = std::net::TcpStream::connect(&raw_addr).unwrap();
        let mut stream = NetStream::Tcp(tcp);
        mvolap_replica::write_frame(
            &mut stream,
            &proto::encode_request(&Request::Query(QUERY.to_string())),
        )
        .unwrap();
        drop(stream);
    }
    // Half a frame, then gone.
    {
        use std::io::Write as _;
        let mut tcp = std::net::TcpStream::connect(&raw_addr).unwrap();
        tcp.write_all(&[0x01, 0x02, 0x03]).unwrap();
        drop(tcp);
    }

    // The server still admits (slots were all returned), queries and
    // commits.
    let mut client = SessionClient::connect(server.addr().clone(), NetConfig::default());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match client.ping() {
            Ok(()) => break,
            Err(ServerError::Busy { .. }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => panic!("server wedged after disconnects: {e}"),
        }
    }
    client.query(QUERY).unwrap();
    let lsn = client
        .commit(&WalRecord::FactBatch {
            rows: vec![FactRow {
                coords: vec![cs.brian],
                at: Instant::ym(2003, 6),
                values: vec![1.0],
            }],
        })
        .unwrap();
    assert!(lsn > 0);
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

/// Read routing: a follower behind the reader's staleness bound
/// refuses with a typed `TooStale`; after `pump_follower` it serves
/// bytes identical to the primary.
#[test]
fn stale_follower_reads_are_refused_then_served_after_catch_up() {
    let dir = tmp("routing_primary");
    let fdir = tmp("routing_follower");
    let cs = case_study();
    let store = DurableTmd::create(&dir, cs.tmd).unwrap();
    let group = GroupCommit::new(store, GroupConfig::default());
    let follower = Follower::create("reader", fdir.clone(), Options::default(), Io::plain());
    let server = SessionServer::spawn_with_follower(
        &local_addr(),
        group,
        follower,
        ServerOptions::default(),
    )
    .unwrap();
    let mut client = SessionClient::connect(server.addr().clone(), NetConfig::default());

    let lsn = client
        .commit(&WalRecord::FactBatch {
            rows: vec![FactRow {
                coords: vec![cs.paul],
                at: Instant::ym(2003, 2),
                values: vec![99.0],
            }],
        })
        .unwrap();

    // The follower has applied nothing yet: refused, with the bound
    // and its actual position in the typed error.
    match client.read_at(lsn, QUERY) {
        Err(ServerError::TooStale {
            required, applied, ..
        }) => {
            assert_eq!(required, lsn);
            assert_eq!(applied, 0);
        }
        other => panic!("expected TooStale, got {other:?}"),
    }

    let applied = server.pump_follower().unwrap();
    assert!(applied >= lsn, "follower applied through {applied}");
    assert_eq!(server.follower_applied(), applied);

    let from_follower = client.read_at(lsn, QUERY).unwrap();
    let from_primary = client.query(QUERY).unwrap();
    assert_eq!(
        from_follower, from_primary,
        "replica read must be bit-identical"
    );

    drop(server);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}
