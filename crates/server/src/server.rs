//! The session server: admission gate, per-connection workers, request
//! dispatch through the group-committed store, and read routing — to an
//! optional local follower or across a remote fleet of members.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use mvolap_core::{ExecContext, QueryMemo, Tmd};
use mvolap_durable::{DurableError, GroupCommit};
use mvolap_query::{run_compare_par, run_with_versions_par};
use mvolap_replica::{
    accept_loop, read_frame, stop_listener, write_frame, Follower, NetAddr, NetConfig, NetListener,
    NetStream, ReplicaMsg,
};

use crate::client::SessionClient;
use crate::proto::{self, Reply, Request, ServerError};

/// Tuning for [`SessionServer`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Sessions served concurrently; the `max_sessions + 1`st waits.
    pub max_sessions: usize,
    /// Sessions allowed to wait for a slot; one more is refused with a
    /// typed [`ServerError::Busy`].
    pub max_queued: usize,
    /// Per-connection socket read timeout (an idle session is dropped
    /// after this long without a request).
    pub read_timeout_ms: u64,
    /// Per-connection socket write timeout.
    pub write_timeout_ms: u64,
    /// Worker threads per query execution (morsel parallelism).
    pub exec_threads: usize,
    /// How long a `commit` waits for the replication quorum before the
    /// session gets a typed [`ServerError::Unreplicated`]. Only
    /// consulted when the group has a quorum configured
    /// ([`GroupCommit::quorum_size`] `> 1`).
    pub quorum_timeout_ms: u64,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_sessions: 8,
            max_queued: 8,
            read_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            exec_threads: 2,
            quorum_timeout_ms: 2_000,
        }
    }
}

/// One remote member a fleet-routing server can forward reads to: the
/// session address of the server fronting that member's replica.
#[derive(Debug, Clone)]
pub struct FleetMember {
    /// The member's name as known to the group-commit quorum tracker
    /// (its acked positions are looked up under this name).
    pub name: String,
    /// Session-server address serving reads from the member's replica.
    pub addr: NetAddr,
}

/// Read routing across a remote fleet: per-member staleness bounds
/// derived from the quorum acks the primary already collects. The
/// member list is shared and mutable so a live membership change
/// re-routes reads immediately — a removed member stops being
/// consulted the moment it leaves, a promoted joiner starts serving.
struct FleetRouting {
    members: Arc<Mutex<Vec<FleetMember>>>,
    net: NetConfig,
}

/// Locks a mutex, ignoring std's panic-poisoning: a server must keep
/// serving other sessions after one worker panics.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Debug)]
struct GateState {
    active: usize,
    queued: usize,
}

/// Bounded admission: at most `max_sessions` served at once, at most
/// `max_queued` waiting; everyone else is refused immediately.
#[derive(Debug)]
struct Gate {
    state: Mutex<GateState>,
    changed: Condvar,
    max_sessions: usize,
    max_queued: usize,
}

impl Gate {
    fn new(max_sessions: usize, max_queued: usize) -> Gate {
        Gate {
            state: Mutex::new(GateState {
                active: 0,
                queued: 0,
            }),
            changed: Condvar::new(),
            max_sessions: max_sessions.max(1),
            max_queued,
        }
    }

    /// Waits for a session slot, or refuses with `Busy` when the queue
    /// is full (or `Shutdown` when the server stops while waiting).
    fn admit(self: &Arc<Gate>, shutdown: &AtomicBool) -> Result<GatePermit, ServerError> {
        let mut st = lock(&self.state);
        if st.active >= self.max_sessions && st.queued >= self.max_queued {
            return Err(ServerError::Busy {
                active: st.active,
                queued: st.queued,
            });
        }
        st.queued += 1;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                st.queued -= 1;
                return Err(ServerError::Shutdown);
            }
            if st.active < self.max_sessions {
                st.queued -= 1;
                st.active += 1;
                return Ok(GatePermit {
                    gate: Arc::clone(self),
                });
            }
            // Timeout slices keep the wait responsive to shutdown even
            // if a notification is missed.
            st = self
                .changed
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }
}

/// RAII session slot: dropping it (normal end, disconnect, panic
/// unwind) frees the slot and wakes a queued session.
struct GatePermit {
    gate: Arc<Gate>,
}

impl Drop for GatePermit {
    fn drop(&mut self) {
        let mut st = lock(&self.gate.state);
        st.active = st.active.saturating_sub(1);
        self.gate.changed.notify_all();
    }
}

/// Everything a connection worker needs, shared across sessions.
struct SessionCtx {
    commit: GroupCommit,
    follower: Option<Arc<Mutex<Follower>>>,
    fleet: Option<FleetRouting>,
    gate: Arc<Gate>,
    shutdown: Arc<AtomicBool>,
    exec: ExecContext,
    memo: Arc<QueryMemo>,
    quorum_timeout_ms: u64,
}

/// A concurrent session server over a group-committed store.
///
/// Mirrors the replication server's lifecycle: `spawn` binds a
/// [`NetAddr`] and starts a nonblocking accept loop (one worker thread
/// per connection), [`SessionServer::stop`] (also run on drop) stops
/// accepting, joins the loop and flushes the group-commit batch so
/// everything acknowledged — and everything applied — is on disk.
pub struct SessionServer {
    addr: NetAddr,
    commit: GroupCommit,
    follower: Option<Arc<Mutex<Follower>>>,
    fleet: Option<Arc<Mutex<Vec<FleetMember>>>>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl SessionServer {
    /// Binds `bind` and serves sessions against `commit`'s store.
    ///
    /// # Errors
    ///
    /// [`ServerError::Transport`] when the address cannot be bound.
    pub fn spawn(
        bind: &NetAddr,
        commit: GroupCommit,
        opts: ServerOptions,
    ) -> Result<SessionServer, ServerError> {
        SessionServer::start(bind, commit, None, None, opts)
    }

    /// Like [`SessionServer::spawn`], with a local read follower:
    /// `read` requests are routed to it when it satisfies the staleness
    /// bound. The follower only advances when [`SessionServer::pump_follower`]
    /// is called — tests and the example drive replication explicitly.
    ///
    /// # Errors
    ///
    /// [`ServerError::Transport`] when the address cannot be bound.
    pub fn spawn_with_follower(
        bind: &NetAddr,
        commit: GroupCommit,
        follower: Follower,
        opts: ServerOptions,
    ) -> Result<SessionServer, ServerError> {
        SessionServer::start(
            bind,
            commit,
            Some(Arc::new(Mutex::new(follower))),
            None,
            opts,
        )
    }

    /// Like [`SessionServer::spawn`], with fleet read routing: `read`
    /// requests are forwarded to the freshest remote member whose
    /// quorum-acked position satisfies the staleness bound (positions
    /// come from the acks the group-commit layer already collects, so
    /// routing costs no extra round-trips). When no member qualifies
    /// the session gets a typed [`ServerError::TooStale`] naming the
    /// freshest member consulted.
    ///
    /// # Errors
    ///
    /// [`ServerError::Transport`] when the address cannot be bound.
    pub fn spawn_with_fleet(
        bind: &NetAddr,
        commit: GroupCommit,
        fleet: Vec<FleetMember>,
        net: NetConfig,
        opts: ServerOptions,
    ) -> Result<SessionServer, ServerError> {
        SessionServer::start(
            bind,
            commit,
            None,
            Some(FleetRouting {
                members: Arc::new(Mutex::new(fleet)),
                net,
            }),
            opts,
        )
    }

    fn start(
        bind: &NetAddr,
        commit: GroupCommit,
        follower: Option<Arc<Mutex<Follower>>>,
        fleet: Option<FleetRouting>,
        opts: ServerOptions,
    ) -> Result<SessionServer, ServerError> {
        let listener = NetListener::bind(bind)
            .map_err(|e| ServerError::Transport(mvolap_replica::ReplicaError::from_io(&e)))?;
        let addr = listener.local_addr().clone();
        let shutdown = Arc::new(AtomicBool::new(false));
        let fleet_handle = fleet.as_ref().map(|f| Arc::clone(&f.members));
        let ctx = Arc::new(SessionCtx {
            commit: commit.clone(),
            follower: follower.clone(),
            fleet,
            gate: Arc::new(Gate::new(opts.max_sessions, opts.max_queued)),
            shutdown: Arc::clone(&shutdown),
            exec: ExecContext::new(opts.exec_threads.max(1)),
            memo: QueryMemo::shared(),
            quorum_timeout_ms: opts.quorum_timeout_ms,
        });
        let serve = Arc::new(move |stream: NetStream| serve_conn(&ctx, stream));
        let flag = Arc::clone(&shutdown);
        let (read_ms, write_ms) = (opts.read_timeout_ms, opts.write_timeout_ms);
        let accept = std::thread::spawn(move || {
            accept_loop(&listener, &flag, read_ms, write_ms, &serve);
        });
        Ok(SessionServer {
            addr,
            commit,
            follower,
            fleet: fleet_handle,
            shutdown,
            accept: Some(accept),
        })
    }

    /// Adds (or re-addresses) a fleet member on a live fleet-routing
    /// server: `read` requests start considering it immediately.
    /// Returns `false` on a server spawned without a fleet.
    pub fn add_fleet_member(&self, member: FleetMember) -> bool {
        let Some(fleet) = &self.fleet else {
            return false;
        };
        let mut members = lock(fleet);
        if let Some(m) = members.iter_mut().find(|m| m.name == member.name) {
            m.addr = member.addr;
        } else {
            members.push(member);
        }
        true
    }

    /// Drops a fleet member from read routing: the next `read` no
    /// longer consults it, even when it was the freshest. Returns
    /// whether the member was present.
    pub fn remove_fleet_member(&self, name: &str) -> bool {
        let Some(fleet) = &self.fleet else {
            return false;
        };
        let mut members = lock(fleet);
        let before = members.len();
        members.retain(|m| m.name != name);
        members.len() != before
    }

    /// The bound address (with the OS-chosen port for `addr:0` binds).
    pub fn addr(&self) -> &NetAddr {
        &self.addr
    }

    /// A clone of the group-commit handle — for assertions (fsync
    /// counts, WAL position, digests) and out-of-band writes.
    pub fn group(&self) -> GroupCommit {
        self.commit.clone()
    }

    /// Ships the primary's WAL tail (or a checkpoint snapshot when the
    /// tail is pruned) to the attached follower and returns the highest
    /// LSN the follower has applied.
    ///
    /// # Errors
    ///
    /// [`ServerError::Protocol`] when no follower is attached;
    /// [`ServerError::Commit`] when the primary log cannot be read;
    /// [`ServerError::Transport`] when the follower refuses the batch.
    pub fn pump_follower(&self) -> Result<u64, ServerError> {
        /// Frames per `Frames` message: the tail is delivered in
        /// bounded envelopes — the same batch shape the async pump
        /// ships over the wire — instead of one unbounded message.
        const PUMP_BATCH: usize = 64;
        let Some(follower) = &self.follower else {
            return Err(ServerError::Protocol("no follower attached".to_string()));
        };
        let mut f = lock(follower);
        let epoch = f.epoch();
        let from = f.next_lsn();
        let msgs = self.commit.with_store(|s| match s.tail(from) {
            Ok(frames) => Ok(frames
                .chunks(PUMP_BATCH)
                .map(|chunk| ReplicaMsg::Frames {
                    epoch,
                    frames: chunk.to_vec(),
                })
                .collect::<Vec<_>>()),
            Err(DurableError::Pruned { .. }) => {
                let mut snapshot = Vec::new();
                mvolap_core::persist::write_tmd(s.schema(), &mut snapshot)
                    .map_err(|e| ServerError::Commit(e.to_string()))?;
                Ok(vec![ReplicaMsg::Snapshot {
                    epoch,
                    next_lsn: s.wal_position(),
                    snapshot,
                }])
            }
            Err(e) => Err(ServerError::Commit(e.to_string())),
        })?;
        for msg in msgs {
            f.handle(msg).map_err(ServerError::Transport)?;
        }
        Ok(f.next_lsn().saturating_sub(1))
    }

    /// The attached read follower, shared for out-of-band shipping —
    /// this is the handle an async pump engine delivers envelopes to.
    /// `None` on servers spawned without a follower.
    #[must_use]
    pub fn follower_handle(&self) -> Option<Arc<Mutex<Follower>>> {
        self.follower.clone()
    }

    /// Highest LSN the attached follower has applied (0 when none is
    /// attached or the follower is empty).
    pub fn follower_applied(&self) -> u64 {
        self.follower
            .as_ref()
            .map(|f| lock(f).next_lsn().saturating_sub(1))
            .unwrap_or(0)
    }

    /// Stops accepting, joins the accept loop (live sessions finish
    /// their current exchange and then see the shutdown flag) and
    /// flushes the group-commit batch. Idempotent.
    pub fn stop(&mut self) {
        if self.accept.is_some() {
            stop_listener(&self.shutdown, &mut self.accept);
            self.commit.flush().ok();
        }
    }
}

impl Drop for SessionServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One connection worker: admission, then a request/reply loop until
/// the peer disconnects, times out or the server stops. A mid-query
/// disconnect ends only this worker — the permit drop frees the slot
/// and no shared lock is left poisoned.
fn serve_conn(ctx: &Arc<SessionCtx>, mut stream: NetStream) {
    let _permit = match ctx.gate.admit(&ctx.shutdown) {
        Ok(p) => p,
        Err(refusal) => {
            write_frame(&mut stream, &proto::encode_reply(&Reply::Err(refusal))).ok();
            return;
        }
    };
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            write_frame(
                &mut stream,
                &proto::encode_reply(&Reply::Err(ServerError::Shutdown)),
            )
            .ok();
            return;
        }
        let Ok(payload) = read_frame(&mut stream) else {
            return; // disconnect, timeout or a corrupt frame
        };
        let reply = handle_request(ctx, &payload);
        if write_frame(&mut stream, &proto::encode_reply(&reply)).is_err() {
            return;
        }
    }
}

fn handle_request(ctx: &SessionCtx, payload: &[u8]) -> Reply {
    let req = match proto::decode_request(payload) {
        Ok(req) => req,
        Err(e) => return Reply::Err(e),
    };
    match req {
        Request::Ping => Reply::Result("pong".to_string()),
        Request::Query(text) => primary_query(ctx, &text),
        Request::Read { min_lsn, text } => follower_read(ctx, min_lsn, &text),
        Request::Commit(record) => {
            // With a replication quorum configured the session is only
            // acknowledged once a majority acked; without one this is
            // plain local group commit.
            let res = if ctx.commit.quorum_size() > 1 {
                ctx.commit.commit_replicated(record, ctx.quorum_timeout_ms)
            } else {
                ctx.commit.commit(record)
            };
            match res {
                Ok(lsn) => Reply::Lsn(lsn),
                Err(DurableError::Unreplicated { lsn, acked }) => {
                    Reply::Err(ServerError::Unreplicated { lsn, acked })
                }
                Err(e) => Reply::Err(ServerError::Commit(e.to_string())),
            }
        }
    }
}

/// Runs a query on the primary under the store's shared read lock, so
/// concurrent sessions execute in parallel and only commits serialise.
fn primary_query(ctx: &SessionCtx, text: &str) -> Reply {
    let rendered = ctx
        .commit
        .with_store(|s| render_query(s.schema(), text, &ctx.exec, &ctx.memo));
    match rendered {
        Ok(out) => Reply::Result(out),
        Err(e) => Reply::Err(e),
    }
}

/// Routes a `read`: across the fleet when one is configured, to the
/// attached local follower otherwise; refuses with a typed `TooStale`
/// when nothing satisfies the staleness bound. Without either, the
/// primary serves it (a primary is never stale).
fn follower_read(ctx: &SessionCtx, min_lsn: u64, text: &str) -> Reply {
    if let Some(fleet) = &ctx.fleet {
        return fleet_read(ctx, fleet, min_lsn, text);
    }
    let Some(follower) = &ctx.follower else {
        return primary_query(ctx, text);
    };
    let f = lock(follower);
    let applied = f.next_lsn().saturating_sub(1);
    if applied < min_lsn {
        return Reply::Err(ServerError::TooStale {
            required: min_lsn,
            applied,
            member: None,
        });
    }
    let Some(tmd) = f.schema() else {
        // Empty follower and min_lsn == 0: nothing applied yet.
        return Reply::Err(ServerError::TooStale {
            required: min_lsn,
            applied,
            member: None,
        });
    };
    match render_query(tmd, text, &ctx.exec, &ctx.memo) {
        Ok(out) => Reply::Result(out),
        Err(e) => Reply::Err(e),
    }
}

/// Forwards a `read` to the freshest fleet member whose quorum-acked
/// position covers `min_lsn`. The bound is derived from the acks the
/// group-commit layer collects — a member that acked LSN `n` has
/// fsynced and applied through `n`, so no extra probe is needed. Ties
/// break on the member name, making routing deterministic.
fn fleet_read(ctx: &SessionCtx, fleet: &FleetRouting, min_lsn: u64, text: &str) -> Reply {
    let positions = ctx.commit.member_positions();
    // The tracker speaks next-LSN ("synced everything below");
    // subtract one to get the highest LSN the member has applied.
    let acked_of = |name: &str| {
        positions
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, p)| p.saturating_sub(1))
    };
    // Snapshot the member list: membership can change under a live
    // server, and the forwarding round-trip below must not hold the
    // list lock.
    let members: Vec<FleetMember> = lock(&fleet.members).clone();
    let mut best: Option<(&FleetMember, u64)> = None;
    for m in &members {
        let acked = acked_of(&m.name);
        if best.is_none_or(|(b, p)| (acked, m.name.as_str()) > (p, b.name.as_str())) {
            best = Some((m, acked));
        }
    }
    let Some((freshest, applied)) = best else {
        // An empty fleet: the primary serves, as without a follower.
        return primary_query(ctx, text);
    };
    if applied < min_lsn {
        return Reply::Err(ServerError::TooStale {
            required: min_lsn,
            applied,
            member: Some(freshest.name.clone()),
        });
    }
    let mut client = SessionClient::connect(freshest.addr.clone(), fleet.net.clone());
    match client.read_at(min_lsn, text) {
        Ok(out) => Reply::Result(out),
        Err(e) => Reply::Err(e),
    }
}

/// Executes `text` against `tmd` and renders exactly what the
/// interactive shell prints, so a served query is byte-identical to a
/// local one.
fn render_query(
    tmd: &Tmd,
    text: &str,
    exec: &ExecContext,
    memo: &QueryMemo,
) -> Result<String, ServerError> {
    use std::fmt::Write as _;
    fn qerr(e: impl std::fmt::Display) -> ServerError {
        ServerError::Query(e.to_string())
    }
    let mut out = String::new();
    if mvolap_query::is_all_modes(text) {
        for r in run_compare_par(tmd, text, exec, memo).map_err(qerr)? {
            let _ = writeln!(
                out,
                "== mode {} (Q = {:.3}, {} unmapped) ==",
                r.result.mode.label(),
                r.quality,
                r.result.unmapped_rows
            );
            let _ = writeln!(out, "{}", r.result.render("result").map_err(qerr)?);
        }
    } else {
        let svs = tmd.structure_versions();
        let rs = run_with_versions_par(tmd, &svs, text, exec, memo).map_err(qerr)?;
        if rs.unmapped_rows > 0 {
            let _ = writeln!(
                out,
                "note: {} source facts have no representation in this mode",
                rs.unmapped_rows
            );
        }
        out.push_str(&rs.render("result").map_err(qerr)?);
    }
    Ok(out)
}
