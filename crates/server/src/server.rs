//! The session server: admission gate, a fixed worker pool
//! multiplexing nonblocking sessions (or the legacy thread-per-session
//! baseline), request dispatch through the group-committed store, and
//! read routing — to an optional local follower or across a remote
//! fleet of members.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use mvolap_core::{ExecContext, QueryMemo, ShardedMemo, Tmd};
use mvolap_durable::{DurableError, GroupCommit};
use mvolap_query::{run_compare_par, run_with_versions_par};
use mvolap_replica::{
    accept_loop, read_frame, stop_listener, write_frame, Follower, NetAddr, NetConfig, NetListener,
    NetStream, ReplicaMsg,
};

use crate::client::SessionClient;
use crate::pool::{self, JobQueue, PoolCounters, PoolStats};
use crate::proto::{self, Reply, Request, ServerError};

/// Tuning for [`SessionServer`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Pool worker threads multiplexing the connected sessions. `0`
    /// selects the legacy one-thread-per-session loop — kept as the
    /// measured baseline the pooled path is benchmarked against.
    pub workers: usize,
    /// Sessions held concurrently (each parked session costs a file
    /// descriptor, not a thread); the `max_sessions + 1`st is refused.
    pub max_sessions: usize,
    /// Requests allowed to wait for a free worker beyond one in flight
    /// per worker; one more is refused with a typed
    /// [`ServerError::Busy`]. (Under `workers: 0` this bounds sessions
    /// waiting for a thread slot instead.)
    pub max_queued: usize,
    /// Per-connection socket read timeout for blocking reads (legacy
    /// mode; pooled sessions park without a deadline).
    pub read_timeout_ms: u64,
    /// Per-connection socket write timeout.
    pub write_timeout_ms: u64,
    /// Worker threads per query execution (morsel parallelism).
    pub exec_threads: usize,
    /// How long a `commit` waits for the replication quorum before the
    /// session gets a typed [`ServerError::Unreplicated`]. Only
    /// consulted when the group has a quorum configured
    /// ([`GroupCommit::quorum_size`] `> 1`).
    pub quorum_timeout_ms: u64,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: 4,
            max_sessions: 256,
            max_queued: 64,
            read_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            exec_threads: 2,
            quorum_timeout_ms: 2_000,
        }
    }
}

/// One remote member a fleet-routing server can forward reads to: the
/// session address of the server fronting that member's replica.
#[derive(Debug, Clone)]
pub struct FleetMember {
    /// The member's name as known to the group-commit quorum tracker
    /// (its acked positions are looked up under this name).
    pub name: String,
    /// Session-server address serving reads from the member's replica.
    pub addr: NetAddr,
}

/// Read routing across a remote fleet: per-member staleness bounds
/// derived from the quorum acks the primary already collects. The
/// member list is shared and mutable so a live membership change
/// re-routes reads immediately — a removed member stops being
/// consulted the moment it leaves, a promoted joiner starts serving.
pub(crate) struct FleetRouting {
    members: Arc<Mutex<Vec<FleetMember>>>,
    net: NetConfig,
}

/// Locks a mutex, ignoring std's panic-poisoning: a server must keep
/// serving other sessions after one worker panics.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Debug)]
struct GateState {
    active: usize,
    queued: usize,
}

/// Bounded admission: at most `max_sessions` served at once, at most
/// `max_queued` waiting; everyone else is refused immediately.
#[derive(Debug)]
pub(crate) struct Gate {
    state: Mutex<GateState>,
    changed: Condvar,
    max_sessions: usize,
    max_queued: usize,
}

impl Gate {
    fn new(max_sessions: usize, max_queued: usize) -> Gate {
        Gate {
            state: Mutex::new(GateState {
                active: 0,
                queued: 0,
            }),
            changed: Condvar::new(),
            max_sessions: max_sessions.max(1),
            max_queued,
        }
    }

    /// Waits for a session slot, or refuses with `Busy` when the queue
    /// is full (or `Shutdown` when the server stops while waiting).
    fn admit(self: &Arc<Gate>, shutdown: &AtomicBool) -> Result<GatePermit, ServerError> {
        let mut st = lock(&self.state);
        if st.active >= self.max_sessions && st.queued >= self.max_queued {
            return Err(ServerError::Busy {
                active: st.active,
                queued: st.queued,
            });
        }
        st.queued += 1;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                st.queued -= 1;
                return Err(ServerError::Shutdown);
            }
            if st.active < self.max_sessions {
                st.queued -= 1;
                st.active += 1;
                return Ok(GatePermit {
                    gate: Arc::clone(self),
                });
            }
            // Timeout slices keep the wait responsive to shutdown even
            // if a notification is missed.
            st = self
                .changed
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// Nonblocking admission for the poll loop: a free slot or an
    /// immediate typed `Busy` carrying the pool's occupancy (`queued`
    /// reports requests waiting for a worker, passed in by the caller —
    /// a pooled server has no sessions waiting on admission).
    pub(crate) fn try_admit(
        self: &Arc<Gate>,
        queued_now: usize,
    ) -> Result<GatePermit, ServerError> {
        let mut st = lock(&self.state);
        if st.active >= self.max_sessions {
            return Err(ServerError::Busy {
                active: st.active,
                queued: queued_now,
            });
        }
        st.active += 1;
        Ok(GatePermit {
            gate: Arc::clone(self),
        })
    }

    /// Sessions currently holding a slot.
    pub(crate) fn active(&self) -> usize {
        lock(&self.state).active
    }
}

/// RAII session slot: dropping it (normal end, disconnect, panic
/// unwind) frees the slot and wakes a queued session.
pub(crate) struct GatePermit {
    gate: Arc<Gate>,
}

impl Drop for GatePermit {
    fn drop(&mut self) {
        let mut st = lock(&self.gate.state);
        st.active = st.active.saturating_sub(1);
        self.gate.changed.notify_all();
    }
}

/// Everything a request handler needs, shared across sessions and
/// workers.
pub(crate) struct SessionCtx {
    pub(crate) commit: GroupCommit,
    pub(crate) follower: Option<Arc<Mutex<Follower>>>,
    pub(crate) fleet: Option<FleetRouting>,
    pub(crate) gate: Arc<Gate>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) exec: ExecContext,
    pub(crate) memo: ShardedMemo,
    pub(crate) counters: PoolCounters,
    pub(crate) quorum_timeout_ms: u64,
}

/// A concurrent session server over a group-committed store.
///
/// With `workers > 0` (the default) a single poll loop owns every
/// connection: idle sessions are parked nonblocking and a fixed pool of
/// `workers` threads serves ready, fully-framed requests from a bounded
/// queue — see [`crate::pool`]. With `workers: 0` the server runs the
/// legacy one-thread-per-session loop. Either way `spawn` binds a
/// [`NetAddr`], and [`SessionServer::stop`] (also run on drop) stops
/// accepting, joins the loop and flushes the group-commit batch so
/// everything acknowledged — and everything applied — is on disk.
pub struct SessionServer {
    addr: NetAddr,
    commit: GroupCommit,
    follower: Option<Arc<Mutex<Follower>>>,
    fleet: Option<Arc<Mutex<Vec<FleetMember>>>>,
    ctx: Arc<SessionCtx>,
    workers: usize,
    queue: Option<Arc<JobQueue>>,
    pool: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl SessionServer {
    /// Binds `bind` and serves sessions against `commit`'s store.
    ///
    /// # Errors
    ///
    /// [`ServerError::Transport`] when the address cannot be bound.
    pub fn spawn(
        bind: &NetAddr,
        commit: GroupCommit,
        opts: ServerOptions,
    ) -> Result<SessionServer, ServerError> {
        SessionServer::start(bind, commit, None, None, opts)
    }

    /// Like [`SessionServer::spawn`], with a local read follower:
    /// `read` requests are routed to it when it satisfies the staleness
    /// bound. The follower only advances when [`SessionServer::pump_follower`]
    /// is called — tests and the example drive replication explicitly.
    ///
    /// # Errors
    ///
    /// [`ServerError::Transport`] when the address cannot be bound.
    pub fn spawn_with_follower(
        bind: &NetAddr,
        commit: GroupCommit,
        follower: Follower,
        opts: ServerOptions,
    ) -> Result<SessionServer, ServerError> {
        SessionServer::start(
            bind,
            commit,
            Some(Arc::new(Mutex::new(follower))),
            None,
            opts,
        )
    }

    /// Like [`SessionServer::spawn`], with fleet routing. Sessions —
    /// not just explicit `read min_lsn` requests — are spread across
    /// the replica fleet: a `query` is forwarded to the session's
    /// pinned member when that member's quorum-acked position reaches
    /// the quorum watermark (the freshest qualifying member otherwise),
    /// and falls back to the primary when nobody qualifies or the
    /// forward fails. Commits always stay on the primary. Explicit
    /// `read` requests keep their caller-chosen staleness bound and are
    /// forwarded to the freshest member satisfying it, refusing with a
    /// typed [`ServerError::TooStale`] that names the freshest member
    /// consulted. Member positions come from the acks the group-commit
    /// layer already collects, so routing costs no extra round-trips.
    ///
    /// # Errors
    ///
    /// [`ServerError::Transport`] when the address cannot be bound.
    pub fn spawn_with_fleet(
        bind: &NetAddr,
        commit: GroupCommit,
        fleet: Vec<FleetMember>,
        net: NetConfig,
        opts: ServerOptions,
    ) -> Result<SessionServer, ServerError> {
        SessionServer::start(
            bind,
            commit,
            None,
            Some(FleetRouting {
                members: Arc::new(Mutex::new(fleet)),
                net,
            }),
            opts,
        )
    }

    fn start(
        bind: &NetAddr,
        commit: GroupCommit,
        follower: Option<Arc<Mutex<Follower>>>,
        fleet: Option<FleetRouting>,
        opts: ServerOptions,
    ) -> Result<SessionServer, ServerError> {
        let listener = NetListener::bind(bind)
            .map_err(|e| ServerError::Transport(mvolap_replica::ReplicaError::from_io(&e)))?;
        let addr = listener.local_addr().clone();
        let shutdown = Arc::new(AtomicBool::new(false));
        let fleet_handle = fleet.as_ref().map(|f| Arc::clone(&f.members));
        let ctx = Arc::new(SessionCtx {
            commit: commit.clone(),
            follower: follower.clone(),
            fleet,
            gate: Arc::new(Gate::new(opts.max_sessions, opts.max_queued)),
            shutdown: Arc::clone(&shutdown),
            exec: ExecContext::new(opts.exec_threads.max(1)),
            memo: ShardedMemo::new(opts.workers.max(1)),
            counters: PoolCounters::default(),
            quorum_timeout_ms: opts.quorum_timeout_ms,
        });
        let (read_ms, write_ms) = (opts.read_timeout_ms, opts.write_timeout_ms);
        let (queue, pool, accept) = if opts.workers == 0 {
            // Legacy baseline: one thread per connection, blocking
            // request/reply loop behind the admission gate.
            let served_ctx = Arc::clone(&ctx);
            let sessions = AtomicU64::new(0);
            let serve = Arc::new(move |stream: NetStream| {
                let session = sessions.fetch_add(1, Ordering::Relaxed) + 1;
                serve_conn(&served_ctx, session, stream);
            });
            let flag = Arc::clone(&shutdown);
            let accept = std::thread::spawn(move || {
                accept_loop(&listener, &flag, read_ms, write_ms, &serve);
            });
            (None, Vec::new(), accept)
        } else {
            let queue = Arc::new(JobQueue::new(opts.workers, opts.max_queued));
            let (back, returned) = mpsc::channel();
            let pool = (0..opts.workers)
                .map(|_| {
                    let ctx = Arc::clone(&ctx);
                    let queue = Arc::clone(&queue);
                    let back = back.clone();
                    std::thread::spawn(move || pool::worker_loop(&ctx, &queue, &back))
                })
                .collect();
            let poll_ctx = Arc::clone(&ctx);
            let poll_queue = Arc::clone(&queue);
            let accept = std::thread::spawn(move || {
                pool::poll_loop(
                    &listener,
                    &poll_ctx,
                    &poll_queue,
                    &returned,
                    read_ms,
                    write_ms,
                );
            });
            (Some(queue), pool, accept)
        };
        Ok(SessionServer {
            addr,
            commit,
            follower,
            fleet: fleet_handle,
            ctx,
            workers: opts.workers,
            queue,
            pool,
            shutdown,
            accept: Some(accept),
        })
    }

    /// Adds (or re-addresses) a fleet member on a live fleet-routing
    /// server: `read` requests start considering it immediately.
    /// Returns `false` on a server spawned without a fleet.
    pub fn add_fleet_member(&self, member: FleetMember) -> bool {
        let Some(fleet) = &self.fleet else {
            return false;
        };
        let mut members = lock(fleet);
        if let Some(m) = members.iter_mut().find(|m| m.name == member.name) {
            m.addr = member.addr;
        } else {
            members.push(member);
        }
        true
    }

    /// Drops a fleet member from read routing: the next `read` no
    /// longer consults it, even when it was the freshest. Returns
    /// whether the member was present.
    pub fn remove_fleet_member(&self, name: &str) -> bool {
        let Some(fleet) = &self.fleet else {
            return false;
        };
        let mut members = lock(fleet);
        let before = members.len();
        members.retain(|m| m.name != name);
        members.len() != before
    }

    /// The bound address (with the OS-chosen port for `addr:0` binds).
    pub fn addr(&self) -> &NetAddr {
        &self.addr
    }

    /// A clone of the group-commit handle — for assertions (fsync
    /// counts, WAL position, digests) and out-of-band writes.
    pub fn group(&self) -> GroupCommit {
        self.commit.clone()
    }

    /// A point-in-time snapshot of the pool counters: occupancy
    /// (active / queued / parked), lifetime served / refused /
    /// forwarded totals and per-shard memo hit/miss counters. On a
    /// `workers: 0` server `workers`, `queued` and `parked` read 0 and
    /// the served counter stays at whatever the legacy loop pushed
    /// through it.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers,
            active: self.ctx.gate.active(),
            queued: self.queue.as_ref().map_or(0, |q| q.waiting()),
            parked: self.ctx.counters.parked.load(Ordering::Relaxed),
            served: self.ctx.counters.served.load(Ordering::Relaxed),
            refused: self.ctx.counters.refused.load(Ordering::Relaxed),
            forwarded: self.ctx.counters.forwarded.load(Ordering::Relaxed),
            memo: self.ctx.memo.shard_stats(),
        }
    }

    /// Ships the primary's WAL tail (or a checkpoint snapshot when the
    /// tail is pruned) to the attached follower and returns the highest
    /// LSN the follower has applied.
    ///
    /// # Errors
    ///
    /// [`ServerError::Protocol`] when no follower is attached;
    /// [`ServerError::Commit`] when the primary log cannot be read;
    /// [`ServerError::Transport`] when the follower refuses the batch.
    pub fn pump_follower(&self) -> Result<u64, ServerError> {
        /// Frames per `Frames` message: the tail is delivered in
        /// bounded envelopes — the same batch shape the async pump
        /// ships over the wire — instead of one unbounded message.
        const PUMP_BATCH: usize = 64;
        let Some(follower) = &self.follower else {
            return Err(ServerError::Protocol("no follower attached".to_string()));
        };
        let mut f = lock(follower);
        let epoch = f.epoch();
        let from = f.next_lsn();
        let msgs = self.commit.with_store(|s| match s.tail(from) {
            Ok(frames) => Ok(frames
                .chunks(PUMP_BATCH)
                .map(|chunk| ReplicaMsg::Frames {
                    epoch,
                    frames: chunk.to_vec(),
                })
                .collect::<Vec<_>>()),
            Err(DurableError::Pruned { .. }) => {
                let mut snapshot = Vec::new();
                mvolap_core::persist::write_tmd(s.schema(), &mut snapshot)
                    .map_err(|e| ServerError::Commit(e.to_string()))?;
                Ok(vec![ReplicaMsg::Snapshot {
                    epoch,
                    next_lsn: s.wal_position(),
                    snapshot,
                }])
            }
            Err(e) => Err(ServerError::Commit(e.to_string())),
        })?;
        for msg in msgs {
            f.handle(msg).map_err(ServerError::Transport)?;
        }
        Ok(f.next_lsn().saturating_sub(1))
    }

    /// The attached read follower, shared for out-of-band shipping —
    /// this is the handle an async pump engine delivers envelopes to.
    /// `None` on servers spawned without a follower.
    #[must_use]
    pub fn follower_handle(&self) -> Option<Arc<Mutex<Follower>>> {
        self.follower.clone()
    }

    /// Highest LSN the attached follower has applied (0 when none is
    /// attached or the follower is empty).
    pub fn follower_applied(&self) -> u64 {
        self.follower
            .as_ref()
            .map(|f| lock(f).next_lsn().saturating_sub(1))
            .unwrap_or(0)
    }

    /// Stops accepting, joins the poll loop and the worker pool
    /// (requests already queued still get their reply; parked sessions
    /// are told `err shutdown`) and flushes the group-commit batch.
    /// Idempotent.
    pub fn stop(&mut self) {
        if self.accept.is_some() {
            stop_listener(&self.shutdown, &mut self.accept);
            if let Some(queue) = &self.queue {
                queue.wake_all();
            }
            for worker in self.pool.drain(..) {
                worker.join().ok();
            }
            self.commit.flush().ok();
        }
    }
}

impl Drop for SessionServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One legacy connection worker: admission, then a blocking
/// request/reply loop until the peer disconnects, times out or the
/// server stops. A mid-query disconnect ends only this worker — the
/// permit drop frees the slot and no shared lock is left poisoned.
fn serve_conn(ctx: &Arc<SessionCtx>, session: u64, mut stream: NetStream) {
    let _permit = match ctx.gate.admit(&ctx.shutdown) {
        Ok(p) => p,
        Err(refusal) => {
            ctx.counters.refused.fetch_add(1, Ordering::Relaxed);
            write_frame(&mut stream, &proto::encode_reply(&Reply::Err(refusal))).ok();
            return;
        }
    };
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            write_frame(
                &mut stream,
                &proto::encode_reply(&Reply::Err(ServerError::Shutdown)),
            )
            .ok();
            return;
        }
        let Ok(payload) = read_frame(&mut stream) else {
            return; // disconnect, timeout or a corrupt frame
        };
        let reply = handle_request(ctx, session, &payload);
        let sent = write_frame(&mut stream, &proto::encode_reply(&reply)).is_ok();
        ctx.counters.served.fetch_add(1, Ordering::Relaxed);
        if !sent {
            return;
        }
    }
}

/// Decodes and executes one request for `session` (the id picks the
/// memo shard and the fleet pin; it is server-assigned and stable for
/// the connection's lifetime).
pub(crate) fn handle_request(ctx: &SessionCtx, session: u64, payload: &[u8]) -> Reply {
    let req = match proto::decode_request(payload) {
        Ok(req) => req,
        Err(e) => return Reply::Err(e),
    };
    match req {
        Request::Ping => Reply::Result("pong".to_string()),
        Request::Query(text) => match &ctx.fleet {
            Some(fleet) => fleet_query(ctx, fleet, session, &text),
            None => primary_query(ctx, session, &text),
        },
        Request::Read { min_lsn, text } => follower_read(ctx, session, min_lsn, &text),
        Request::Commit(record) => {
            // With a replication quorum configured the session is only
            // acknowledged once a majority acked; without one this is
            // plain local group commit. Commits never leave the
            // primary, whatever the fleet routing does with reads.
            let res = if ctx.commit.quorum_size() > 1 {
                ctx.commit.commit_replicated(record, ctx.quorum_timeout_ms)
            } else {
                ctx.commit.commit(record)
            };
            match res {
                Ok(lsn) => Reply::Lsn(lsn),
                Err(DurableError::Unreplicated { lsn, acked }) => {
                    Reply::Err(ServerError::Unreplicated { lsn, acked })
                }
                Err(e) => Reply::Err(ServerError::Commit(e.to_string())),
            }
        }
    }
}

/// Runs a query on the primary under the store's shared read lock, so
/// concurrent sessions execute in parallel and only commits serialise.
fn primary_query(ctx: &SessionCtx, session: u64, text: &str) -> Reply {
    let memo = ctx.memo.for_session(session);
    let rendered = ctx
        .commit
        .with_store(|s| render_query(s.schema(), text, &ctx.exec, memo));
    match rendered {
        Ok(out) => Reply::Result(out),
        Err(e) => Reply::Err(e),
    }
}

/// Spreads a session's `query` across the fleet: the bound is the
/// quorum watermark (everything a quorum-acked commit was acknowledged
/// for — so a session that just committed reads its own write from any
/// qualifying member), the session's pinned member serves when it
/// qualifies, the freshest qualifying member otherwise, and the
/// primary when nobody qualifies or the forward fails. A member that
/// acked LSN `n` has fsynced **and applied** through `n`, so the
/// forwarded `read` renders the same bytes the primary would at that
/// watermark.
fn fleet_query(ctx: &SessionCtx, fleet: &FleetRouting, session: u64, text: &str) -> Reply {
    let bound = ctx.commit.quorum_lsn().saturating_sub(1);
    let positions = ctx.commit.member_positions();
    // The tracker speaks next-LSN ("synced everything below");
    // subtract one to get the highest LSN the member has applied.
    let acked_of = |name: &str| {
        positions
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, p)| p.saturating_sub(1))
    };
    let members: Vec<FleetMember> = lock(&fleet.members).clone();
    if members.is_empty() {
        return primary_query(ctx, session, text);
    }
    let pinned = &members[(session % members.len() as u64) as usize];
    let target = if acked_of(&pinned.name) >= bound {
        Some(pinned)
    } else {
        members
            .iter()
            .filter(|m| acked_of(&m.name) >= bound)
            .max_by_key(|m| (acked_of(&m.name), std::cmp::Reverse(m.name.clone())))
    };
    let Some(target) = target else {
        return primary_query(ctx, session, text);
    };
    let mut client = SessionClient::connect(target.addr.clone(), fleet.net.clone());
    match client.read_at(bound, text) {
        Ok(out) => {
            ctx.counters.forwarded.fetch_add(1, Ordering::Relaxed);
            Reply::Result(out)
        }
        // Any forward failure — the member restarted, refused as stale
        // after a membership race, or timed out — degrades to the
        // primary instead of surfacing a routing artefact.
        Err(_) => primary_query(ctx, session, text),
    }
}

/// Routes a `read`: across the fleet when one is configured, to the
/// attached local follower otherwise; refuses with a typed `TooStale`
/// when nothing satisfies the staleness bound. Without either, the
/// primary serves it (a primary is never stale).
fn follower_read(ctx: &SessionCtx, session: u64, min_lsn: u64, text: &str) -> Reply {
    if let Some(fleet) = &ctx.fleet {
        return fleet_read(ctx, fleet, session, min_lsn, text);
    }
    let Some(follower) = &ctx.follower else {
        return primary_query(ctx, session, text);
    };
    let f = lock(follower);
    let applied = f.next_lsn().saturating_sub(1);
    if applied < min_lsn {
        return Reply::Err(ServerError::TooStale {
            required: min_lsn,
            applied,
            member: None,
        });
    }
    let Some(tmd) = f.schema() else {
        // Empty follower and min_lsn == 0: nothing applied yet.
        return Reply::Err(ServerError::TooStale {
            required: min_lsn,
            applied,
            member: None,
        });
    };
    match render_query(tmd, text, &ctx.exec, ctx.memo.for_session(session)) {
        Ok(out) => Reply::Result(out),
        Err(e) => Reply::Err(e),
    }
}

/// Forwards a `read` to the freshest fleet member whose quorum-acked
/// position covers `min_lsn`. The bound is derived from the acks the
/// group-commit layer collects — a member that acked LSN `n` has
/// fsynced and applied through `n`, so no extra probe is needed. Ties
/// break on the member name, making routing deterministic.
fn fleet_read(
    ctx: &SessionCtx,
    fleet: &FleetRouting,
    session: u64,
    min_lsn: u64,
    text: &str,
) -> Reply {
    let positions = ctx.commit.member_positions();
    // The tracker speaks next-LSN ("synced everything below");
    // subtract one to get the highest LSN the member has applied.
    let acked_of = |name: &str| {
        positions
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, p)| p.saturating_sub(1))
    };
    // Snapshot the member list: membership can change under a live
    // server, and the forwarding round-trip below must not hold the
    // list lock.
    let members: Vec<FleetMember> = lock(&fleet.members).clone();
    let mut best: Option<(&FleetMember, u64)> = None;
    for m in &members {
        let acked = acked_of(&m.name);
        if best.is_none_or(|(b, p)| (acked, m.name.as_str()) > (p, b.name.as_str())) {
            best = Some((m, acked));
        }
    }
    let Some((freshest, applied)) = best else {
        // An empty fleet: the primary serves, as without a follower.
        return primary_query(ctx, session, text);
    };
    if applied < min_lsn {
        return Reply::Err(ServerError::TooStale {
            required: min_lsn,
            applied,
            member: Some(freshest.name.clone()),
        });
    }
    let mut client = SessionClient::connect(freshest.addr.clone(), fleet.net.clone());
    match client.read_at(min_lsn, text) {
        Ok(out) => {
            ctx.counters.forwarded.fetch_add(1, Ordering::Relaxed);
            Reply::Result(out)
        }
        Err(e) => Reply::Err(e),
    }
}

/// Executes `text` against `tmd` and renders exactly what the
/// interactive shell prints, so a served query is byte-identical to a
/// local one.
fn render_query(
    tmd: &Tmd,
    text: &str,
    exec: &ExecContext,
    memo: &QueryMemo,
) -> Result<String, ServerError> {
    use std::fmt::Write as _;
    fn qerr(e: impl std::fmt::Display) -> ServerError {
        ServerError::Query(e.to_string())
    }
    let mut out = String::new();
    if mvolap_query::is_all_modes(text) {
        for r in run_compare_par(tmd, text, exec, memo).map_err(qerr)? {
            let _ = writeln!(
                out,
                "== mode {} (Q = {:.3}, {} unmapped) ==",
                r.result.mode.label(),
                r.quality,
                r.result.unmapped_rows
            );
            let _ = writeln!(out, "{}", r.result.render("result").map_err(qerr)?);
        }
    } else {
        let svs = tmd.structure_versions();
        let rs = run_with_versions_par(tmd, &svs, text, exec, memo).map_err(qerr)?;
        if rs.unmapped_rows > 0 {
            let _ = writeln!(
                out,
                "note: {} source facts have no representation in this mode",
                rs.unmapped_rows
            );
        }
        out.push_str(&rs.render("result").map_err(qerr)?);
    }
    Ok(out)
}
