//! Session wire protocol: requests and replies, one CRC frame each.
//!
//! The grammar reuses the replication transport's building blocks — a
//! length-prefixed CRC-32 frame per message ([`mvolap_replica::read_frame`]
//! / [`mvolap_replica::write_frame`]) whose payload is a line of
//! space-separated tokens, every variable-length field escaped with
//! [`mvolap_replica::esc_bytes`] so tokens never contain separators.
//!
//! Requests:
//!
//! ```text
//! query  <esc(text)>              run a query on the primary
//! read   <min_lsn> <esc(text)>    run a read-only query, follower-ok,
//!                                 requiring LSNs 1..=min_lsn applied
//! commit <esc(walrecord-bytes)>   group-commit one journal record
//! ping                            liveness probe
//! ```
//!
//! Replies:
//!
//! ```text
//! ok <esc(payload)>               rendered query result / "pong"
//! lsn <u64>                       commit durable at this LSN
//! err busy <active> <queued>      admission refused (typed Busy)
//! err stale <required> <applied> [<esc(member)>]
//!                                 replica behind the staleness bound;
//!                                 the optional trailing token names
//!                                 the member consulted (omitted when
//!                                 unknown, e.g. a local follower)
//! err unreplicated <lsn> <acked>  commit fsynced locally but the
//!                                 quorum never acknowledged it
//! err query <esc(msg)>            query failed (parse/plan/exec)
//! err commit <esc(msg)>           commit rejected or store poisoned
//! err proto <esc(msg)>            malformed request
//! err shutdown                    server is stopping
//! ```

use std::fmt;

use mvolap_durable::WalRecord;
use mvolap_replica::{esc_bytes, unesc_bytes, ReplicaError};

/// One client request, a single frame on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run `text` against the primary's current schema.
    Query(String),
    /// Run `text` read-only; a follower may serve it **iff** it has
    /// applied every LSN up to and including `min_lsn` (`0` accepts
    /// any staleness). A server without a follower serves it from the
    /// primary, which is never stale.
    Read {
        /// Highest LSN the reader requires to be applied.
        min_lsn: u64,
        /// The query text.
        text: String,
    },
    /// Journal one record through the group-commit path.
    Commit(WalRecord),
    /// Liveness probe; the server answers `ok pong`.
    Ping,
}

/// One server reply, a single frame on the wire.
#[derive(Debug, PartialEq)]
pub enum Reply {
    /// Rendered query result (or `pong`).
    Result(String),
    /// The commit is durable at this LSN.
    Lsn(u64),
    /// A typed refusal or failure.
    Err(ServerError),
}

/// Everything that can go wrong between a session client and server.
#[derive(Debug)]
pub enum ServerError {
    /// Admission control refused the session: `active` sessions are
    /// being served and `queued` more already wait.
    Busy {
        /// Sessions currently being served.
        active: usize,
        /// Sessions waiting for a slot.
        queued: usize,
    },
    /// A replica read was refused: the reader required LSNs through
    /// `required` applied, but the freshest replica consulted has only
    /// applied through `applied`.
    TooStale {
        /// The reader's staleness bound (highest LSN required).
        required: u64,
        /// Highest LSN the replica has applied.
        applied: u64,
        /// Name of the member consulted, when the server routed across
        /// a fleet (`None` for a local anonymous follower — and for
        /// replies from servers speaking the older three-token
        /// grammar).
        member: Option<String>,
    },
    /// The commit is fsynced on the primary but the replication quorum
    /// never acknowledged it within the commit timeout. The record may
    /// yet replicate — or be truncated away if the primary is deposed.
    Unreplicated {
        /// LSN the record occupies in the primary's journal.
        lsn: u64,
        /// Members (primary included) known to have synced it.
        acked: usize,
    },
    /// The query failed to parse, plan or execute.
    Query(String),
    /// The commit was rejected (validation) or failed (I/O; the store
    /// is then poisoned and later commits fail too).
    Commit(String),
    /// The peer violated the wire grammar.
    Protocol(String),
    /// Client-local transport failure (connect/read/write); never
    /// travels on the wire.
    Transport(ReplicaError),
    /// The server is shutting down.
    Shutdown,
}

impl PartialEq for ServerError {
    fn eq(&self, other: &ServerError) -> bool {
        use ServerError::*;
        match (self, other) {
            (
                Busy {
                    active: a,
                    queued: q,
                },
                Busy {
                    active: a2,
                    queued: q2,
                },
            ) => a == a2 && q == q2,
            (
                TooStale {
                    required: r,
                    applied: a,
                    member: m,
                },
                TooStale {
                    required: r2,
                    applied: a2,
                    member: m2,
                },
            ) => r == r2 && a == a2 && m == m2,
            (Unreplicated { lsn: l, acked: k }, Unreplicated { lsn: l2, acked: k2 }) => {
                l == l2 && k == k2
            }
            (Query(m), Query(m2)) | (Commit(m), Commit(m2)) | (Protocol(m), Protocol(m2)) => {
                m == m2
            }
            // Transport wraps a non-comparable error chain; fall back
            // to the rendered message.
            (Transport(e), Transport(e2)) => e.to_string() == e2.to_string(),
            (Shutdown, Shutdown) => true,
            _ => false,
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Busy { active, queued } => {
                write!(f, "server busy: {active} active sessions, {queued} queued")
            }
            ServerError::TooStale {
                required,
                applied,
                member,
            } => {
                let who = member.as_deref().unwrap_or("follower");
                write!(
                    f,
                    "replica too stale: reader requires LSN {required} applied, {who} is at {applied}"
                )
            }
            ServerError::Unreplicated { lsn, acked } => write!(
                f,
                "commit unreplicated: LSN {lsn} fsynced locally but only {acked} member(s) acked before the timeout"
            ),
            ServerError::Query(m) => write!(f, "query failed: {m}"),
            ServerError::Commit(m) => write!(f, "commit failed: {m}"),
            ServerError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ServerError::Transport(e) => write!(f, "transport: {e}"),
            ServerError::Shutdown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<ReplicaError> for ServerError {
    fn from(e: ReplicaError) -> Self {
        ServerError::Transport(e)
    }
}

fn proto_err(msg: impl Into<String>) -> ServerError {
    ServerError::Protocol(msg.into())
}

fn text_token(tok: &str, what: &str) -> Result<String, ServerError> {
    let bytes = unesc_bytes(tok, what).map_err(|e| proto_err(e.to_string()))?;
    String::from_utf8(bytes).map_err(|_| proto_err(format!("{what}: not UTF-8")))
}

fn u64_token(tok: &str, what: &str) -> Result<u64, ServerError> {
    tok.parse()
        .map_err(|_| proto_err(format!("{what}: bad integer {tok:?}")))
}

fn usize_token(tok: &str, what: &str) -> Result<usize, ServerError> {
    tok.parse()
        .map_err(|_| proto_err(format!("{what}: bad integer {tok:?}")))
}

/// Serialises a request into a frame payload.
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Query(text) => format!("query {}", esc_bytes(text.as_bytes())),
        Request::Read { min_lsn, text } => {
            format!("read {min_lsn} {}", esc_bytes(text.as_bytes()))
        }
        Request::Commit(record) => format!("commit {}", esc_bytes(&record.encode())),
        Request::Ping => "ping".to_string(),
    }
    .into_bytes()
}

/// Parses a frame payload into a request.
///
/// # Errors
///
/// [`ServerError::Protocol`] on any grammar violation — unknown verb,
/// wrong token count, bad escape, non-UTF-8 query text or an
/// undecodable journal record.
pub fn decode_request(payload: &[u8]) -> Result<Request, ServerError> {
    let line = std::str::from_utf8(payload).map_err(|_| proto_err("request: not UTF-8"))?;
    let toks: Vec<&str> = line.split(' ').collect();
    match toks.as_slice() {
        ["query", text] => Ok(Request::Query(text_token(text, "query text")?)),
        ["read", min_lsn, text] => Ok(Request::Read {
            min_lsn: u64_token(min_lsn, "read min_lsn")?,
            text: text_token(text, "read text")?,
        }),
        ["commit", rec] => {
            let bytes = unesc_bytes(rec, "commit record").map_err(|e| proto_err(e.to_string()))?;
            let record =
                WalRecord::decode(&bytes).map_err(|e| proto_err(format!("commit record: {e}")))?;
            Ok(Request::Commit(record))
        }
        ["ping"] => Ok(Request::Ping),
        _ => Err(proto_err(format!("unknown request {line:?}"))),
    }
}

/// Serialises a reply into a frame payload. [`ServerError::Transport`]
/// is client-local; encoding it degrades to `err proto`.
#[must_use]
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    match reply {
        Reply::Result(text) => format!("ok {}", esc_bytes(text.as_bytes())),
        Reply::Lsn(lsn) => format!("lsn {lsn}"),
        Reply::Err(e) => match e {
            ServerError::Busy { active, queued } => format!("err busy {active} {queued}"),
            ServerError::TooStale {
                required,
                applied,
                member,
            } => match member {
                // The member token is optional for wire compatibility
                // with pre-fleet servers: omitted when unknown.
                Some(m) => format!("err stale {required} {applied} {}", esc_bytes(m.as_bytes())),
                None => format!("err stale {required} {applied}"),
            },
            ServerError::Unreplicated { lsn, acked } => {
                format!("err unreplicated {lsn} {acked}")
            }
            ServerError::Query(m) => format!("err query {}", esc_bytes(m.as_bytes())),
            ServerError::Commit(m) => format!("err commit {}", esc_bytes(m.as_bytes())),
            ServerError::Protocol(m) => format!("err proto {}", esc_bytes(m.as_bytes())),
            ServerError::Transport(e) => {
                format!("err proto {}", esc_bytes(e.to_string().as_bytes()))
            }
            ServerError::Shutdown => "err shutdown".to_string(),
        },
    }
    .into_bytes()
}

/// Parses a frame payload into a reply.
///
/// # Errors
///
/// [`ServerError::Protocol`] when the payload violates the grammar.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, ServerError> {
    let line = std::str::from_utf8(payload).map_err(|_| proto_err("reply: not UTF-8"))?;
    let toks: Vec<&str> = line.split(' ').collect();
    match toks.as_slice() {
        ["ok", text] => Ok(Reply::Result(text_token(text, "ok payload")?)),
        ["lsn", lsn] => Ok(Reply::Lsn(u64_token(lsn, "lsn")?)),
        ["err", "busy", active, queued] => Ok(Reply::Err(ServerError::Busy {
            active: usize_token(active, "busy active")?,
            queued: usize_token(queued, "busy queued")?,
        })),
        ["err", "stale", required, applied] => Ok(Reply::Err(ServerError::TooStale {
            required: u64_token(required, "stale required")?,
            applied: u64_token(applied, "stale applied")?,
            member: None,
        })),
        ["err", "stale", required, applied, member] => Ok(Reply::Err(ServerError::TooStale {
            required: u64_token(required, "stale required")?,
            applied: u64_token(applied, "stale applied")?,
            member: Some(text_token(member, "stale member")?),
        })),
        ["err", "unreplicated", lsn, acked] => Ok(Reply::Err(ServerError::Unreplicated {
            lsn: u64_token(lsn, "unreplicated lsn")?,
            acked: usize_token(acked, "unreplicated acked")?,
        })),
        ["err", "query", m] => Ok(Reply::Err(ServerError::Query(text_token(m, "query msg")?))),
        ["err", "commit", m] => Ok(Reply::Err(ServerError::Commit(text_token(
            m,
            "commit msg",
        )?))),
        ["err", "proto", m] => Ok(Reply::Err(ServerError::Protocol(text_token(
            m,
            "proto msg",
        )?))),
        ["err", "shutdown"] => Ok(Reply::Err(ServerError::Shutdown)),
        _ => Err(proto_err(format!("unknown reply {line:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvolap_durable::FactRow;
    use mvolap_temporal::Instant;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Query("SELECT sum(Amount) BY year IN MODE tcm".to_string()),
            Request::Read {
                min_lsn: 42,
                text: "SELECT sum(Amount) BY year IN ALL MODES".to_string(),
            },
            Request::Commit(WalRecord::FactBatch {
                rows: vec![FactRow {
                    coords: vec![mvolap_core::MemberVersionId(3)],
                    at: Instant::ym(2003, 7),
                    values: vec![12.5],
                }],
            }),
            Request::Ping,
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            Reply::Result("a table\nwith lines\t& bytes".to_string()),
            Reply::Result(String::new()),
            Reply::Lsn(7),
            Reply::Err(ServerError::Busy {
                active: 4,
                queued: 2,
            }),
            Reply::Err(ServerError::TooStale {
                required: 9,
                applied: 3,
                member: None,
            }),
            Reply::Err(ServerError::TooStale {
                required: 9,
                applied: 3,
                member: Some("m2".to_string()),
            }),
            Reply::Err(ServerError::Unreplicated { lsn: 14, acked: 1 }),
            Reply::Err(ServerError::Query("no such level".to_string())),
            Reply::Err(ServerError::Commit("store poisoned".to_string())),
            Reply::Err(ServerError::Protocol("bad frame".to_string())),
            Reply::Err(ServerError::Shutdown),
        ];
        for reply in replies {
            let bytes = encode_reply(&reply);
            assert_eq!(decode_reply(&bytes).unwrap(), reply);
        }
    }

    #[test]
    fn stale_member_token_is_backward_compatible() {
        // The three-token form emitted by pre-fleet servers decodes
        // with the member unknown.
        assert_eq!(
            decode_reply(b"err stale 9 3").unwrap(),
            Reply::Err(ServerError::TooStale {
                required: 9,
                applied: 3,
                member: None,
            })
        );
    }

    #[test]
    fn garbage_is_a_typed_protocol_error() {
        assert!(matches!(
            decode_request(b"drop tables"),
            Err(ServerError::Protocol(_))
        ));
        assert!(matches!(
            decode_request(&[0xFF, 0xFE]),
            Err(ServerError::Protocol(_))
        ));
        assert!(matches!(decode_reply(b"ok"), Err(ServerError::Protocol(_))));
    }
}
