//! The session client: a thin typed wrapper over the shared
//! reconnecting [`NetClient`] transport.

use mvolap_durable::WalRecord;
use mvolap_replica::{NetAddr, NetClient, NetConfig};

use crate::proto::{self, Reply, Request, ServerError};

/// A connected session. One request is in flight at a time; the
/// underlying transport reconnects with bounded backoff on transient
/// failures.
///
/// Retry caveat: a reconnect re-sends the request, so a `commit` whose
/// acknowledgement was lost may be journaled twice (at-least-once
/// semantics). Queries and pings are idempotent.
pub struct SessionClient {
    net: NetClient,
}

impl SessionClient {
    /// Prepares a client for `addr`. The TCP/unix connection is
    /// established lazily on the first request.
    #[must_use]
    pub fn connect(addr: NetAddr, cfg: NetConfig) -> SessionClient {
        SessionClient {
            net: NetClient::connect(addr, cfg),
        }
    }

    /// The server address this client talks to.
    #[must_use]
    pub fn addr(&self) -> &NetAddr {
        self.net.addr()
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Reply, ServerError> {
        let reply = self
            .net
            .rpc(&proto::encode_request(req))
            .map_err(ServerError::Transport)?;
        proto::decode_reply(&reply)
    }

    /// Runs `text` on the primary and returns the rendered result —
    /// byte-identical to what the interactive shell would print.
    ///
    /// # Errors
    ///
    /// Typed [`ServerError`]s from the wire (`Busy`, `Query`,
    /// `Shutdown`, …) or [`ServerError::Transport`] locally.
    pub fn query(&mut self, text: &str) -> Result<String, ServerError> {
        match self.roundtrip(&Request::Query(text.to_string()))? {
            Reply::Result(out) => Ok(out),
            Reply::Err(e) => Err(e),
            Reply::Lsn(_) => Err(ServerError::Protocol("lsn reply to a query".to_string())),
        }
    }

    /// Runs a read-only query that a follower may serve, requiring
    /// every LSN up to and including `min_lsn` applied (`0` accepts any
    /// staleness).
    ///
    /// # Errors
    ///
    /// [`ServerError::TooStale`] when the follower is behind the bound;
    /// otherwise as for [`SessionClient::query`].
    pub fn read_at(&mut self, min_lsn: u64, text: &str) -> Result<String, ServerError> {
        match self.roundtrip(&Request::Read {
            min_lsn,
            text: text.to_string(),
        })? {
            Reply::Result(out) => Ok(out),
            Reply::Err(e) => Err(e),
            Reply::Lsn(_) => Err(ServerError::Protocol("lsn reply to a read".to_string())),
        }
    }

    /// Group-commits one journal record; returns its LSN once durable.
    ///
    /// # Errors
    ///
    /// [`ServerError::Commit`] when validation rejects the record or
    /// the store is poisoned; transport/typed errors as above.
    pub fn commit(&mut self, record: &WalRecord) -> Result<u64, ServerError> {
        match self.roundtrip(&Request::Commit(record.clone()))? {
            Reply::Lsn(lsn) => Ok(lsn),
            Reply::Err(e) => Err(e),
            Reply::Result(_) => Err(ServerError::Protocol("ok reply to a commit".to_string())),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// [`ServerError::Transport`] when the server is unreachable;
    /// [`ServerError::Busy`]/[`ServerError::Shutdown`] when refused.
    pub fn ping(&mut self) -> Result<(), ServerError> {
        match self.roundtrip(&Request::Ping)? {
            Reply::Result(_) => Ok(()),
            Reply::Err(e) => Err(e),
            Reply::Lsn(_) => Err(ServerError::Protocol("lsn reply to a ping".to_string())),
        }
    }
}
