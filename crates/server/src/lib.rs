//! # mvolap-server — concurrent session server
//!
//! Serves the temporal multidimensional warehouse to many clients at
//! once over the replication stack's transport (TCP or unix sockets,
//! CRC-framed messages):
//!
//! - **Sessions.** One worker thread per connection, speaking the
//!   typed request/reply grammar in [`proto`]: `query`, `read`,
//!   `commit`, `ping`.
//! - **Admission control.** At most `max_sessions` sessions run
//!   concurrently and at most `max_queued` wait; the next client gets
//!   a typed [`ServerError::Busy`] refusal instead of an unbounded
//!   queue.
//! - **Group commit.** Writes go through
//!   [`mvolap_durable::GroupCommit`]: concurrent committers append
//!   unsynced and share a single fsync per batch, so N sessions
//!   committing together cost ~1 flush, not N — without weakening the
//!   durability contract (a reply arrives only after the covering
//!   sync).
//! - **Read routing.** `read` requests carry an explicit staleness
//!   bound (`min_lsn`); a server with an attached
//!   [`mvolap_replica::Follower`] serves them from the replica when it
//!   is fresh enough and refuses with a typed
//!   [`ServerError::TooStale`] when it is behind — the client chooses
//!   between retrying on the primary or relaxing its bound. A server
//!   fronting a replication group routes across the remote fleet
//!   instead ([`SessionServer::spawn_with_fleet`]): the bound is
//!   checked against each member's quorum-acked position and the read
//!   is forwarded to the freshest member that satisfies it; the
//!   refusal then names the member consulted.
//! - **Quorum commit.** When the group-commit layer has a replication
//!   quorum configured, a `commit` is acknowledged only after a
//!   majority of members acked it; on timeout the session gets a typed
//!   [`ServerError::Unreplicated`] (the record is locally durable but
//!   not majority-committed).
//!
//! ```no_run
//! use mvolap_durable::{DurableTmd, GroupCommit, GroupConfig};
//! use mvolap_replica::{NetAddr, NetConfig};
//! use mvolap_server::{ServerOptions, SessionClient, SessionServer};
//!
//! let cs = mvolap_core::case_study::case_study();
//! let store = DurableTmd::create(std::path::Path::new("warehouse"), cs.tmd).unwrap();
//! let group = GroupCommit::new(store, GroupConfig::default());
//! let server = SessionServer::spawn(
//!     &NetAddr::parse("127.0.0.1:0").unwrap(),
//!     group,
//!     ServerOptions::default(),
//! )
//! .unwrap();
//!
//! let mut client = SessionClient::connect(server.addr().clone(), NetConfig::default());
//! let table = client
//!     .query("SELECT sum(Amount) BY year, Org.Division FOR 2001..2002 IN MODE tcm")
//!     .unwrap();
//! println!("{table}");
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::SessionClient;
pub use proto::{
    decode_reply, decode_request, encode_reply, encode_request, Reply, Request, ServerError,
};
pub use server::{FleetMember, ServerOptions, SessionServer};
