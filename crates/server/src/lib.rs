//! # mvolap-server — concurrent session server
//!
//! Serves the temporal multidimensional warehouse to many clients at
//! once over the replication stack's transport (TCP or unix sockets,
//! CRC-framed messages):
//!
//! - **Pooled sessions.** A fixed pool of `workers` threads
//!   multiplexes every connection ([`pool`]): one poll loop parks idle
//!   sessions nonblocking and hands ready, fully-framed requests —
//!   speaking the typed request/reply grammar in [`proto`]: `query`,
//!   `read`, `commit`, `ping` — to the workers over a bounded queue.
//!   An idle session costs a file descriptor, not a thread, so
//!   hundreds of mostly-idle clients are held by a handful of threads.
//!   `workers: 0` keeps the legacy one-thread-per-session loop as the
//!   measured baseline. The query memo is sharded by session affinity
//!   ([`mvolap_core::ShardedMemo`]) so workers serving different
//!   sessions stop contending on one cache's locks.
//! - **Admission control.** At most `max_sessions` sessions hold a
//!   slot and at most `max_queued` requests wait for a worker; the
//!   next client gets a typed [`ServerError::Busy`] refusal instead of
//!   an unbounded queue. [`SessionServer::pool_stats`] snapshots the
//!   occupancy (active / queued / parked, served / refused /
//!   forwarded, per-shard memo hits).
//! - **Group commit.** Writes go through
//!   [`mvolap_durable::GroupCommit`]: concurrent committers append
//!   unsynced and share a single fsync per batch, so N sessions
//!   committing together cost ~1 flush, not N — without weakening the
//!   durability contract (a reply arrives only after the covering
//!   sync).
//! - **Read routing.** `read` requests carry an explicit staleness
//!   bound (`min_lsn`); a server with an attached
//!   [`mvolap_replica::Follower`] serves them from the replica when it
//!   is fresh enough and refuses with a typed
//!   [`ServerError::TooStale`] when it is behind — the client chooses
//!   between retrying on the primary or relaxing its bound. A server
//!   fronting a replication group routes across the remote fleet
//!   instead ([`SessionServer::spawn_with_fleet`]): the bound is
//!   checked against each member's quorum-acked position and the read
//!   is forwarded to the freshest member that satisfies it; the
//!   refusal then names the member consulted. Plain `query` sessions
//!   are spread too: each session is pinned to a member (hash of the
//!   session id) and its queries forwarded there — or to the freshest
//!   qualifying member — whenever the member has acked the quorum
//!   watermark, falling back to the primary otherwise. Commits always
//!   stay on the primary.
//! - **Quorum commit.** When the group-commit layer has a replication
//!   quorum configured, a `commit` is acknowledged only after a
//!   majority of members acked it; on timeout the session gets a typed
//!   [`ServerError::Unreplicated`] (the record is locally durable but
//!   not majority-committed).
//!
//! ```no_run
//! use mvolap_durable::{DurableTmd, GroupCommit, GroupConfig};
//! use mvolap_replica::{NetAddr, NetConfig};
//! use mvolap_server::{ServerOptions, SessionClient, SessionServer};
//!
//! let cs = mvolap_core::case_study::case_study();
//! let store = DurableTmd::create(std::path::Path::new("warehouse"), cs.tmd).unwrap();
//! let group = GroupCommit::new(store, GroupConfig::default());
//! let server = SessionServer::spawn(
//!     &NetAddr::parse("127.0.0.1:0").unwrap(),
//!     group,
//!     ServerOptions::default(),
//! )
//! .unwrap();
//!
//! let mut client = SessionClient::connect(server.addr().clone(), NetConfig::default());
//! let table = client
//!     .query("SELECT sum(Amount) BY year, Org.Division FOR 2001..2002 IN MODE tcm")
//!     .unwrap();
//! println!("{table}");
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod pool;
pub mod proto;
pub mod server;

pub use client::SessionClient;
pub use pool::PoolStats;
pub use proto::{
    decode_reply, decode_request, encode_reply, encode_request, Reply, Request, ServerError,
};
pub use server::{FleetMember, ServerOptions, SessionServer};
