//! The fixed worker pool multiplexing nonblocking sessions.
//!
//! One **poll loop** (the thread that also accepts) owns every parked
//! connection: it reads bytes non-blockingly through
//! [`mvolap_replica::FrameReader`] until a full CRC frame is buffered,
//! then hands the `(connection, request)` pair to one of `N` worker
//! threads over a bounded queue. The worker decodes, executes, writes
//! the reply in blocking mode (socket timeouts apply) and returns the
//! connection to the poll loop. Idle sessions therefore cost one file
//! descriptor and a few buffered bytes — never a thread.
//!
//! Admission and overflow keep the typed [`ServerError::Busy`] shape:
//!
//! * a connection beyond `max_sessions` is answered `Busy` on its
//!   first frame and closed (the session-level refusal);
//! * a request arriving while all workers are busy and `max_queued`
//!   more requests already wait is answered `Busy` **from the poll
//!   loop** and the session stays parked — overflow never blocks a
//!   worker, and never blocks the poll loop.
//!
//! Every connection holds an RAII permit ([`super::server`]'s gate):
//! dropping a parked, queued or checked-out connection — disconnect,
//! worker write failure, shutdown — releases its session slot.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use mvolap_core::MemoStats;
use mvolap_replica::{write_frame, FrameReader, NetListener, NetStream};

use crate::proto::{self, Reply, ServerError};
use crate::server::{handle_request, lock, GatePermit, SessionCtx};

/// A point-in-time snapshot of the pool's occupancy counters — the
/// observability surface behind the shell's `\status`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Worker threads serving requests (`0` on a server running the
    /// unpooled one-thread-per-session baseline).
    pub workers: usize,
    /// Connected sessions holding a slot (parked, queued or being
    /// served).
    pub active: usize,
    /// Requests waiting in the bounded queue for a free worker.
    pub queued: usize,
    /// Idle connections currently parked in the poll set.
    pub parked: usize,
    /// Requests served to completion since the server started.
    pub served: u64,
    /// Typed `Busy` refusals issued (admission + queue overflow).
    pub refused: u64,
    /// Non-commit requests forwarded to a fleet member.
    pub forwarded: u64,
    /// Per-shard memo hit/miss counters, in shard order.
    pub memo: Vec<MemoStats>,
}

/// Monotonic pool counters shared between the poll loop, the workers
/// and the server handle.
#[derive(Debug, Default)]
pub(crate) struct PoolCounters {
    pub(crate) parked: AtomicUsize,
    pub(crate) served: AtomicU64,
    pub(crate) refused: AtomicU64,
    pub(crate) forwarded: AtomicU64,
}

/// One parked session: its socket (non-blocking while parked), the
/// partial-frame buffer, a stable session id (shard affinity) and the
/// RAII admission permit.
pub(crate) struct Conn {
    pub(crate) stream: NetStream,
    pub(crate) reader: FrameReader,
    pub(crate) session: u64,
    #[allow(dead_code)] // held for its Drop: releases the session slot
    pub(crate) permit: GatePermit,
}

/// A ready, fully-framed request checked out to a worker together with
/// its connection.
pub(crate) struct Job {
    pub(crate) conn: Conn,
    pub(crate) payload: Vec<u8>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Workers currently executing a request — counted so overflow is
    /// judged on *outstanding* work (queued + in flight), not just the
    /// queue depth.
    busy: usize,
}

/// The bounded hand-off between the poll loop and the workers.
/// Capacity is `workers + max_queued`: one outstanding request per
/// worker plus the configured wait allowance; pushes beyond that are
/// refused so the poll loop can answer `Busy` without ever waiting.
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    slots: usize,
}

impl JobQueue {
    pub(crate) fn new(workers: usize, max_queued: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                busy: 0,
            }),
            ready: Condvar::new(),
            slots: workers.max(1) + max_queued,
        }
    }

    /// Requests waiting for a worker (not counting those in flight).
    pub(crate) fn waiting(&self) -> usize {
        lock(&self.state).jobs.len()
    }

    /// Enqueues unless outstanding work already fills every slot; the
    /// job comes back on overflow so the caller can refuse typed.
    pub(crate) fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut st = lock(&self.state);
        if st.jobs.len() + st.busy >= self.slots {
            return Err(job);
        }
        st.jobs.push_back(job);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks (in bounded slices, responsive to shutdown) until a job
    /// is available; `None` once the server stops and the queue has
    /// drained — jobs accepted before shutdown still get their reply.
    pub(crate) fn pop(&self, shutdown: &std::sync::atomic::AtomicBool) -> Option<Job> {
        let mut st = lock(&self.state);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                st.busy += 1;
                return Some(job);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            st = self
                .ready
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// Marks the worker's current job finished.
    pub(crate) fn done(&self) {
        let mut st = lock(&self.state);
        st.busy = st.busy.saturating_sub(1);
    }

    /// Wakes every waiting worker (shutdown).
    pub(crate) fn wake_all(&self) {
        self.ready.notify_all();
    }
}

/// An accepted connection that was refused admission: it is answered
/// `Busy` on its first complete frame (request/reply discipline — the
/// client reads the refusal as a normal reply) and then closed.
struct Doomed {
    stream: NetStream,
    reader: FrameReader,
    refusal: Vec<u8>,
}

/// The poll loop: accept, reclaim worker-returned connections, poll
/// every parked socket for a full frame, dispatch ready requests to
/// the worker queue. Runs on the server's accept thread until the
/// shutdown flag is raised; on exit each parked session is sent a
/// best-effort `err shutdown` before its socket closes.
pub(crate) fn poll_loop(
    listener: &NetListener,
    ctx: &Arc<SessionCtx>,
    queue: &Arc<JobQueue>,
    returned: &mpsc::Receiver<Conn>,
    read_ms: u64,
    write_ms: u64,
) {
    let mut parked: Vec<Conn> = Vec::new();
    let mut doomed: Vec<Doomed> = Vec::new();
    let mut next_session: u64 = 1;
    // Consecutive scans that found nothing to do. While requests are
    // flowing the loop stays hot (yield, no sleep) so dispatch latency
    // is one scan, not a timer tick; once the set has proven idle it
    // backs off to a 1ms sleep so parked sessions cost almost no CPU.
    let mut idle_scans: u32 = 0;
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut progress = false;

        // Connections handed back by workers re-park.
        while let Ok(conn) = returned.try_recv() {
            parked.push(conn);
            progress = true;
        }

        // New connections: admit (slot permit for the connection's
        // lifetime) or schedule a typed refusal.
        while let Ok(Some(stream)) = listener.try_accept() {
            progress = true;
            stream.set_timeouts(read_ms, write_ms).ok();
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            match ctx.gate.try_admit(queue.waiting()) {
                Ok(permit) => {
                    parked.push(Conn {
                        stream,
                        reader: FrameReader::new(),
                        session: next_session,
                        permit,
                    });
                    next_session += 1;
                }
                Err(refusal) => {
                    ctx.counters.refused.fetch_add(1, Ordering::Relaxed);
                    doomed.push(Doomed {
                        stream,
                        reader: FrameReader::new(),
                        refusal: proto::encode_reply(&Reply::Err(refusal)),
                    });
                }
            }
        }

        // Refused connections: answer their first frame, then close.
        doomed.retain_mut(|d| match d.reader.poll(&mut d.stream) {
            Ok(Some(_)) => {
                progress = true;
                if d.stream.set_nonblocking(false).is_ok() {
                    let refusal = std::mem::take(&mut d.refusal);
                    write_frame(&mut d.stream, &refusal).ok();
                }
                false
            }
            Ok(None) => true,
            Err(_) => {
                progress = true;
                false
            }
        });

        // Parked sessions: a full frame dispatches (or overflows into
        // a typed Busy written right here); any read error drops the
        // connection and its permit with it.
        let mut i = 0;
        while i < parked.len() {
            let Conn { stream, reader, .. } = &mut parked[i];
            match reader.poll(stream) {
                Ok(Some(payload)) => {
                    progress = true;
                    let conn = parked.swap_remove(i);
                    if let Err(job) = queue.try_push(Job { conn, payload }) {
                        ctx.counters.refused.fetch_add(1, Ordering::Relaxed);
                        let mut conn = job.conn;
                        let busy = proto::encode_reply(&Reply::Err(ServerError::Busy {
                            active: ctx.gate.active(),
                            queued: queue.waiting(),
                        }));
                        // Blocking write (socket write timeout applies)
                        // so the refusal frame can never go out torn;
                        // a peer that stopped reading is dropped.
                        let wrote = conn.stream.set_nonblocking(false).is_ok()
                            && write_frame(&mut conn.stream, &busy).is_ok()
                            && conn.stream.set_nonblocking(true).is_ok();
                        if wrote {
                            parked.push(conn);
                        }
                    }
                }
                Ok(None) => i += 1,
                Err(_) => {
                    progress = true;
                    parked.swap_remove(i); // disconnect or corrupt frame
                }
            }
        }
        ctx.counters.parked.store(parked.len(), Ordering::Relaxed);

        if progress {
            idle_scans = 0;
        } else {
            idle_scans = idle_scans.saturating_add(1);
            if idle_scans > 256 {
                std::thread::sleep(Duration::from_millis(1));
            } else {
                std::thread::yield_now();
            }
        }
    }

    // Shutdown: tell every parked session, then drop the sockets (and
    // their permits). Checked-out connections are dropped by their
    // worker or when the return channel's receiver goes away.
    let shutdown = proto::encode_reply(&Reply::Err(ServerError::Shutdown));
    for mut conn in parked {
        conn.stream.set_nonblocking(false).ok();
        write_frame(&mut conn.stream, &shutdown).ok();
    }
    ctx.counters.parked.store(0, Ordering::Relaxed);
}

/// One pool worker: pop a ready request, execute it against the shared
/// context, write the reply in blocking mode and hand the connection
/// back to the poll loop. Any socket failure just drops the connection
/// — its permit releases the session slot, the worker moves on.
pub(crate) fn worker_loop(ctx: &Arc<SessionCtx>, queue: &Arc<JobQueue>, back: &mpsc::Sender<Conn>) {
    while let Some(Job { mut conn, payload }) = queue.pop(&ctx.shutdown) {
        let reply = handle_request(ctx, conn.session, &payload);
        // Count before the reply goes out: a client that has its answer
        // must already be visible in `served`.
        ctx.counters.served.fetch_add(1, Ordering::Relaxed);
        let wrote = conn.stream.set_nonblocking(false).is_ok()
            && write_frame(&mut conn.stream, &proto::encode_reply(&reply)).is_ok();
        queue.done();
        if wrote && conn.stream.set_nonblocking(true).is_ok() {
            back.send(conn).ok(); // a gone poll loop drops the conn here
        }
    }
}
