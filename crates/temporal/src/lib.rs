//! # mvolap-temporal
//!
//! Discrete time model for the multiversion OLAP engine.
//!
//! The paper ("Handling Evolutions in Multidimensional Structures",
//! Body et al., ICDE 2003) timestamps every element of the
//! multidimensional structure — member versions, roll-up relationships,
//! facts — with an *inclusive* validity interval `[ti, tf]` over a discrete
//! time axis, where `tf` may be the open end `Now`. The `Exclude` evolution
//! operator sets end times to `tf − 1`, so time must be discrete.
//!
//! This crate provides:
//!
//! * [`Instant`] — a discrete tick (month granularity helpers included,
//!   matching the paper's `01/2001` style timestamps);
//! * [`Interval`] — an inclusive validity interval with an open `Now` end;
//! * interval algebra: intersection, union, containment, [`AllenRelation`];
//! * [`partition_timeline`] — the boundary partition used to infer
//!   *Structure Versions* (paper Definition 9): the coarsest partition of
//!   history such that the set of valid elements is constant within each
//!   piece.

pub mod instant;
pub mod interval;
pub mod partition;

pub use instant::{Granularity, Instant, YearMonth};
pub use interval::{AllenRelation, Interval};
pub use partition::{partition_timeline, TimelineSegment};

/// Errors produced by temporal operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalError {
    /// An interval was constructed with `start > end`.
    EmptyInterval {
        /// Requested start tick.
        start: i64,
        /// Requested end tick.
        end: i64,
    },
    /// A month outside `1..=12` was supplied.
    InvalidMonth(u32),
    /// Arithmetic on an [`Instant`] overflowed the tick range.
    InstantOverflow,
}

impl std::fmt::Display for TemporalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemporalError::EmptyInterval { start, end } => {
                write!(f, "empty interval: start {start} is after end {end}")
            }
            TemporalError::InvalidMonth(m) => write!(f, "invalid month {m}, expected 1..=12"),
            TemporalError::InstantOverflow => write!(f, "instant arithmetic overflowed"),
        }
    }
}

impl std::error::Error for TemporalError {}
