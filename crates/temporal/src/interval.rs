//! Inclusive validity intervals.
//!
//! The paper attaches an inclusive valid time `[ti, tf]` to member versions
//! (Def. 1), temporal relationships (Def. 2) and structure versions
//! (Def. 9), where `tf` may be the open end `Now`. [`Interval`] models
//! exactly that: a non-empty inclusive range of [`Instant`]s whose end may
//! be [`Instant::FOREVER`].

use crate::{Instant, TemporalError};

/// An inclusive, non-empty validity interval `[start, end]`.
///
/// `end == Instant::FOREVER` represents the paper's `Now` (still valid).
/// The invariant `start <= end` is enforced at construction, so every
/// `Interval` contains at least one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    start: Instant,
    end: Instant,
}

impl Interval {
    /// The interval spanning the whole representable time axis.
    pub const ALL_TIME: Interval = Interval {
        start: Instant::DAWN,
        end: Instant::FOREVER,
    };

    /// Creates the interval `[start, end]`.
    ///
    /// # Errors
    ///
    /// Returns [`TemporalError::EmptyInterval`] when `start > end`.
    pub fn new(start: Instant, end: Instant) -> Result<Self, TemporalError> {
        if start > end {
            return Err(TemporalError::EmptyInterval {
                start: start.tick(),
                end: end.tick(),
            });
        }
        Ok(Interval { start, end })
    }

    /// Infallible constructor for literals; panics when `start > end`.
    ///
    /// Intended for tests and constant case-study data.
    #[inline]
    pub fn of(start: Instant, end: Instant) -> Self {
        Self::new(start, end).expect("interval literal must satisfy start <= end")
    }

    /// The still-open interval `[start, Now]`.
    #[inline]
    pub fn since(start: Instant) -> Self {
        Interval {
            start,
            end: Instant::FOREVER,
        }
    }

    /// The single-instant interval `[t, t]`.
    #[inline]
    pub fn at(t: Instant) -> Self {
        Interval { start: t, end: t }
    }

    /// Month-granularity convenience: `[ym(y1,m1), ym(y2,m2)]`.
    #[inline]
    pub fn ym(y1: i32, m1: u32, y2: i32, m2: u32) -> Self {
        Self::of(Instant::ym(y1, m1), Instant::ym(y2, m2))
    }

    /// Whole calendar years `[01/y1, 12/y2]` at month granularity.
    #[inline]
    pub fn years(y1: i32, y2: i32) -> Self {
        Self::of(Instant::year_start(y1), Instant::year_end(y2))
    }

    /// Inclusive start.
    #[inline]
    pub const fn start(self) -> Instant {
        self.start
    }

    /// Inclusive end (possibly [`Instant::FOREVER`]).
    #[inline]
    pub const fn end(self) -> Instant {
        self.end
    }

    /// Whether the interval is still open (`end == Now`).
    #[inline]
    pub fn is_current(self) -> bool {
        self.end.is_forever()
    }

    /// Whether the instant `t` lies inside the interval.
    #[inline]
    pub fn contains(self, t: Instant) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_interval(self, other: Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two intervals share at least one instant.
    #[inline]
    pub fn overlaps(self, other: Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The common sub-interval, if any.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(Interval { start, end })
    }

    /// Whether the two intervals are adjacent or overlapping, i.e. their
    /// union is itself an interval.
    pub fn touches(self, other: Interval) -> bool {
        self.overlaps(other) || self.end.succ() == other.start || other.end.succ() == self.start
    }

    /// The smallest interval covering both inputs, when they touch.
    ///
    /// Returns `None` when a gap separates them (the union would not be an
    /// interval).
    pub fn union(self, other: Interval) -> Option<Interval> {
        self.touches(other).then(|| Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        })
    }

    /// Truncates the interval so it ends at `new_end` (used by `Exclude`).
    ///
    /// # Errors
    ///
    /// Returns [`TemporalError::EmptyInterval`] when `new_end < start`.
    pub fn truncate_end(self, new_end: Instant) -> Result<Interval, TemporalError> {
        Interval::new(self.start, new_end.min(self.end))
    }

    /// Number of instants in the interval, or `None` for open / unbounded
    /// intervals.
    pub fn len(self) -> Option<u64> {
        if self.end.is_forever() || self.start.is_dawn() {
            return None;
        }
        Some((self.end.tick() - self.start.tick()) as u64 + 1)
    }

    /// Always `false`: the non-empty invariant holds by construction.
    ///
    /// Present for API symmetry with `len`.
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Classifies the relative position of `self` and `other` following
    /// Allen's interval algebra (collapsed onto discrete inclusive
    /// intervals).
    pub fn allen(self, other: Interval) -> AllenRelation {
        use std::cmp::Ordering::*;
        if self == other {
            return AllenRelation::Equals;
        }
        if self.end < other.start {
            return if self.end.succ() == other.start {
                AllenRelation::Meets
            } else {
                AllenRelation::Before
            };
        }
        if other.end < self.start {
            return if other.end.succ() == self.start {
                AllenRelation::MetBy
            } else {
                AllenRelation::After
            };
        }
        // The intervals overlap.
        match (self.start.cmp(&other.start), self.end.cmp(&other.end)) {
            (Equal, Less) => AllenRelation::Starts,
            (Equal, Greater) => AllenRelation::StartedBy,
            (Greater, Equal) => AllenRelation::Finishes,
            (Less, Equal) => AllenRelation::FinishedBy,
            (Greater, Less) => AllenRelation::During,
            (Less, Greater) => AllenRelation::Contains,
            (Less, Less) => AllenRelation::Overlaps,
            (Greater, Greater) => AllenRelation::OverlappedBy,
            (Equal, Equal) => AllenRelation::Equals,
        }
    }

    /// Iterates over all instants in the interval.
    ///
    /// Returns `None` for open or unbounded intervals, which cannot be
    /// enumerated.
    pub fn iter(self) -> Option<impl Iterator<Item = Instant>> {
        if self.end.is_forever() || self.start.is_dawn() {
            return None;
        }
        Some((self.start.tick()..=self.end.tick()).map(Instant::at))
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} ; {}]", self.start, self.end)
    }
}

/// Allen's thirteen interval relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllenRelation {
    /// `self` ends strictly before `other` starts, with a gap.
    Before,
    /// `self` ends immediately before `other` starts.
    Meets,
    /// Proper overlap with `self` starting and ending first.
    Overlaps,
    /// Same start, `self` ends first.
    Starts,
    /// `self` strictly inside `other`.
    During,
    /// Same end, `self` starts later.
    Finishes,
    /// The intervals are identical.
    Equals,
    /// Same end, `self` starts earlier.
    FinishedBy,
    /// `other` strictly inside `self`.
    Contains,
    /// Same start, `self` ends later.
    StartedBy,
    /// Proper overlap with `other` starting and ending first.
    OverlappedBy,
    /// `other` ends immediately before `self` starts.
    MetBy,
    /// `other` ends strictly before `self` starts, with a gap.
    After,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::of(Instant::at(a), Instant::at(b))
    }

    #[test]
    fn rejects_reversed_bounds() {
        assert!(Interval::new(Instant::at(5), Instant::at(4)).is_err());
        assert!(Interval::new(Instant::at(5), Instant::at(5)).is_ok());
    }

    #[test]
    fn contains_is_inclusive_on_both_ends() {
        let i = iv(3, 7);
        assert!(i.contains(Instant::at(3)));
        assert!(i.contains(Instant::at(7)));
        assert!(!i.contains(Instant::at(2)));
        assert!(!i.contains(Instant::at(8)));
    }

    #[test]
    fn since_contains_far_future() {
        let i = Interval::since(Instant::ym(2001, 1));
        assert!(i.contains(Instant::ym(3000, 1)));
        assert!(i.is_current());
        assert_eq!(i.len(), None);
    }

    #[test]
    fn intersect_cases() {
        assert_eq!(iv(1, 5).intersect(iv(3, 9)), Some(iv(3, 5)));
        assert_eq!(iv(1, 5).intersect(iv(5, 9)), Some(iv(5, 5)));
        assert_eq!(iv(1, 5).intersect(iv(6, 9)), None);
        assert_eq!(iv(1, 9).intersect(iv(3, 4)), Some(iv(3, 4)));
    }

    #[test]
    fn union_requires_touching() {
        assert_eq!(iv(1, 3).union(iv(4, 6)), Some(iv(1, 6))); // adjacent
        assert_eq!(iv(1, 3).union(iv(3, 6)), Some(iv(1, 6))); // overlapping
        assert_eq!(iv(1, 3).union(iv(5, 6)), None); // gap at 4
    }

    #[test]
    fn truncate_end_models_exclude() {
        // Exclude at tf sets validity end to tf - 1.
        let i = Interval::since(Instant::ym(2001, 1));
        let excluded_at = Instant::ym(2003, 1);
        let closed = i.truncate_end(excluded_at.pred()).unwrap();
        assert_eq!(closed.end(), Instant::ym(2002, 12));
        assert!(iv(5, 9).truncate_end(Instant::at(2)).is_err());
    }

    #[test]
    fn len_counts_inclusively() {
        assert_eq!(iv(3, 3).len(), Some(1));
        assert_eq!(iv(3, 7).len(), Some(5));
        assert_eq!(Interval::ALL_TIME.len(), None);
    }

    #[test]
    fn allen_all_thirteen() {
        use AllenRelation::*;
        assert_eq!(iv(1, 2).allen(iv(5, 6)), Before);
        assert_eq!(iv(1, 2).allen(iv(3, 6)), Meets);
        assert_eq!(iv(1, 4).allen(iv(3, 6)), Overlaps);
        assert_eq!(iv(1, 4).allen(iv(1, 6)), Starts);
        assert_eq!(iv(2, 4).allen(iv(1, 6)), During);
        assert_eq!(iv(4, 6).allen(iv(1, 6)), Finishes);
        assert_eq!(iv(1, 6).allen(iv(1, 6)), Equals);
        assert_eq!(iv(1, 6).allen(iv(4, 6)), FinishedBy);
        assert_eq!(iv(1, 6).allen(iv(2, 4)), Contains);
        assert_eq!(iv(1, 6).allen(iv(1, 4)), StartedBy);
        assert_eq!(iv(3, 6).allen(iv(1, 4)), OverlappedBy);
        assert_eq!(iv(3, 6).allen(iv(1, 2)), MetBy);
        assert_eq!(iv(5, 6).allen(iv(1, 2)), After);
    }

    #[test]
    fn iter_enumerates_instants() {
        let ts: Vec<i64> = iv(3, 6).iter().unwrap().map(Instant::tick).collect();
        assert_eq!(ts, vec![3, 4, 5, 6]);
        assert!(Interval::since(Instant::at(0)).iter().is_none());
    }

    #[test]
    fn display_uses_month_granularity() {
        let i = Interval::of(Instant::ym(2001, 1), Instant::FOREVER);
        assert_eq!(i.to_string(), "[01/2001 ; Now]");
    }
}
