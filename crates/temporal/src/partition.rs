//! Boundary partition of the timeline.
//!
//! Paper Definition 9 observes that the *Structure Versions* of a temporal
//! multidimensional schema "partition history and … can be inferred from
//! the schema, as the intersections of the valid time intervals of all
//! Member Versions and Temporal Relationships". This module implements that
//! inference generically: given a set of validity intervals, it produces the
//! coarsest partition of the covered timeline such that, inside each piece,
//! the set of valid intervals is constant.

use crate::{Instant, Interval};

/// One piece of a timeline partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSegment {
    /// The covered time slice.
    pub interval: Interval,
    /// Indices (into the input slice) of the intervals valid throughout
    /// this segment, in ascending order.
    pub active: Vec<usize>,
}

/// Partitions the timeline covered by `intervals` into maximal segments of
/// constant validity.
///
/// Every returned segment satisfies: an input interval either contains the
/// whole segment or is disjoint from it. Segments are returned in
/// chronological order and cover exactly the union of the inputs (gaps in
/// coverage produce no segment). Adjacent segments with identical active
/// sets are merged, which makes the partition coarsest — this situation
/// arises when coverage is interrupted by a gap.
///
/// The number of segments is at most `2 * intervals.len() - 1`.
pub fn partition_timeline(intervals: &[Interval]) -> Vec<TimelineSegment> {
    if intervals.is_empty() {
        return Vec::new();
    }

    // Critical instants: every interval start, and the instant just after
    // every interval end (where validity can change).
    let mut boundaries: Vec<Instant> = Vec::with_capacity(intervals.len() * 2);
    for iv in intervals {
        boundaries.push(iv.start());
        if !iv.end().is_forever() {
            boundaries.push(iv.end().succ());
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();

    let mut segments: Vec<TimelineSegment> = Vec::with_capacity(boundaries.len());
    for (i, &start) in boundaries.iter().enumerate() {
        let end = match boundaries.get(i + 1) {
            Some(next) => next.pred(),
            None => Instant::FOREVER,
        };
        if start > end {
            continue;
        }
        let segment = Interval::of(start, end);
        let active: Vec<usize> = intervals
            .iter()
            .enumerate()
            .filter(|(_, iv)| iv.contains_interval(segment))
            .map(|(idx, _)| idx)
            .collect();
        if active.is_empty() {
            continue; // gap in coverage
        }
        // Merge with the previous segment when both the active set matches
        // and the segments are adjacent (no gap swallowed in between).
        if let Some(prev) = segments.last_mut() {
            if prev.active == active && prev.interval.end().succ() == start {
                prev.interval = Interval::of(prev.interval.start(), end);
                continue;
            }
        }
        segments.push(TimelineSegment {
            interval: segment,
            active,
        });
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::of(Instant::at(a), Instant::at(b))
    }

    fn open(a: i64) -> Interval {
        Interval::since(Instant::at(a))
    }

    #[test]
    fn empty_input_yields_no_segments() {
        assert!(partition_timeline(&[]).is_empty());
    }

    #[test]
    fn single_interval_is_its_own_partition() {
        let segs = partition_timeline(&[iv(3, 9)]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].interval, iv(3, 9));
        assert_eq!(segs[0].active, vec![0]);
    }

    #[test]
    fn paper_example_7_two_structure_versions() {
        // Dpt.Jones [01/2001; 12/2002], Dpt.Paul & Dpt.Bill [01/2003; Now],
        // Sales [01/2001; Now] => two structure versions:
        //   [01/2001; 12/2002] and [01/2003; Now].
        let jones = Interval::of(Instant::ym(2001, 1), Instant::ym(2002, 12));
        let paul = Interval::since(Instant::ym(2003, 1));
        let bill = Interval::since(Instant::ym(2003, 1));
        let sales = Interval::since(Instant::ym(2001, 1));
        let segs = partition_timeline(&[jones, paul, bill, sales]);
        assert_eq!(segs.len(), 2);
        assert_eq!(
            segs[0].interval,
            Interval::of(Instant::ym(2001, 1), Instant::ym(2002, 12))
        );
        assert_eq!(segs[0].active, vec![0, 3]);
        assert_eq!(segs[1].interval, Interval::since(Instant::ym(2003, 1)));
        assert_eq!(segs[1].active, vec![1, 2, 3]);
    }

    #[test]
    fn overlapping_intervals_split_at_every_boundary() {
        let segs = partition_timeline(&[iv(1, 10), iv(5, 15)]);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].interval, iv(1, 4));
        assert_eq!(segs[0].active, vec![0]);
        assert_eq!(segs[1].interval, iv(5, 10));
        assert_eq!(segs[1].active, vec![0, 1]);
        assert_eq!(segs[2].interval, iv(11, 15));
        assert_eq!(segs[2].active, vec![1]);
    }

    #[test]
    fn gaps_produce_no_segment() {
        let segs = partition_timeline(&[iv(1, 3), iv(7, 9)]);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].interval, iv(1, 3));
        assert_eq!(segs[1].interval, iv(7, 9));
    }

    #[test]
    fn identical_intervals_share_a_segment() {
        let segs = partition_timeline(&[iv(2, 8), iv(2, 8), iv(2, 8)]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].active, vec![0, 1, 2]);
    }

    #[test]
    fn open_intervals_extend_to_forever() {
        let segs = partition_timeline(&[open(5), iv(5, 7)]);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].interval, iv(5, 7));
        assert_eq!(segs[0].active, vec![0, 1]);
        assert_eq!(segs[1].interval, Interval::since(Instant::at(8)));
        assert_eq!(segs[1].active, vec![0]);
    }

    #[test]
    fn segments_are_refinement_of_every_input() {
        let input = [iv(0, 20), iv(3, 8), iv(8, 12), open(15)];
        for seg in partition_timeline(&input) {
            for iv in &input {
                // Each input either contains the segment or misses it.
                assert!(
                    iv.contains_interval(seg.interval) || iv.intersect(seg.interval).is_none(),
                    "segment {} straddles input {}",
                    seg.interval,
                    iv
                );
            }
        }
    }

    #[test]
    fn single_instant_intervals() {
        let segs = partition_timeline(&[iv(5, 5), iv(5, 5), iv(4, 6)]);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[1].interval, iv(5, 5));
        assert_eq!(segs[1].active, vec![0, 1, 2]);
    }
}
