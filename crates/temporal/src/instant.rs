//! Discrete time instants.
//!
//! An [`Instant`] is an opaque tick on a discrete, totally ordered time
//! axis. The engine is granularity-agnostic: a tick can mean a month (the
//! paper's granularity), a day, or anything the application chooses. Helper
//! constructors for the month granularity are provided because the paper's
//! case study uses `MM/YYYY` timestamps.

use crate::TemporalError;

/// Granularity tag for rendering instants.
///
/// Purely presentational — arithmetic on [`Instant`] is granularity-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// Raw ticks, rendered as integers.
    #[default]
    Tick,
    /// Ticks are months since year 0 (tick = `year * 12 + (month - 1)`).
    Month,
    /// Ticks are years.
    Year,
}

/// A discrete instant on the time axis.
///
/// `Instant` is a transparent newtype over `i64` ticks. Two sentinel values
/// exist:
///
/// * [`Instant::FOREVER`] — the open interval end the paper writes as `Now`;
/// * [`Instant::DAWN`] — the earliest representable instant.
///
/// Regular instants must lie strictly between the sentinels; the month
/// helpers guarantee this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant(i64);

impl Instant {
    /// The open end of a still-valid interval (`Now` in the paper).
    pub const FOREVER: Instant = Instant(i64::MAX);
    /// The earliest representable instant.
    pub const DAWN: Instant = Instant(i64::MIN);

    /// Creates an instant at the given tick.
    #[inline]
    pub const fn at(tick: i64) -> Self {
        Instant(tick)
    }

    /// Creates an instant from a calendar year and month (month granularity).
    ///
    /// Ticks count months since year 0, so `ym(2001, 1)` is tick `24012`.
    ///
    /// # Errors
    ///
    /// Returns [`TemporalError::InvalidMonth`] when `month` is outside
    /// `1..=12`.
    pub fn from_ym(year: i32, month: u32) -> Result<Self, TemporalError> {
        if !(1..=12).contains(&month) {
            return Err(TemporalError::InvalidMonth(month));
        }
        Ok(Instant(year as i64 * 12 + (month as i64 - 1)))
    }

    /// Infallible month constructor for literals; panics on an invalid month.
    ///
    /// Intended for tests, examples and constant case-study data where the
    /// month is a literal. Use [`Instant::from_ym`] for untrusted input.
    #[inline]
    pub fn ym(year: i32, month: u32) -> Self {
        Self::from_ym(year, month).expect("month literal must be in 1..=12")
    }

    /// January of the given year at month granularity.
    #[inline]
    pub fn year_start(year: i32) -> Self {
        Instant(year as i64 * 12)
    }

    /// December of the given year at month granularity.
    #[inline]
    pub fn year_end(year: i32) -> Self {
        Instant(year as i64 * 12 + 11)
    }

    /// The raw tick value.
    #[inline]
    pub const fn tick(self) -> i64 {
        self.0
    }

    /// Decomposes a month-granularity instant into `(year, month)`.
    #[inline]
    pub fn to_ym(self) -> YearMonth {
        let year = self.0.div_euclid(12);
        let month = self.0.rem_euclid(12) + 1;
        YearMonth {
            year: year as i32,
            month: month as u32,
        }
    }

    /// The calendar year of a month-granularity instant.
    #[inline]
    pub fn year(self) -> i32 {
        self.to_ym().year
    }

    /// Whether this is the `Now` / open-end sentinel.
    #[inline]
    pub const fn is_forever(self) -> bool {
        self.0 == i64::MAX
    }

    /// Whether this is the earliest-representable sentinel.
    #[inline]
    pub const fn is_dawn(self) -> bool {
        self.0 == i64::MIN
    }

    /// The immediately preceding instant, saturating at the sentinels.
    ///
    /// Used by the `Exclude` evolution operator, which closes intervals at
    /// `tf − 1`.
    #[inline]
    pub fn pred(self) -> Self {
        if self.is_forever() || self.is_dawn() {
            self
        } else {
            Instant(self.0 - 1)
        }
    }

    /// The immediately following instant, saturating at the sentinels.
    #[inline]
    pub fn succ(self) -> Self {
        if self.is_forever() || self.is_dawn() {
            self
        } else {
            Instant(self.0 + 1)
        }
    }

    /// Checked tick addition.
    ///
    /// # Errors
    ///
    /// Returns [`TemporalError::InstantOverflow`] when the result leaves the
    /// regular tick range or when called on a sentinel.
    pub fn checked_add(self, delta: i64) -> Result<Self, TemporalError> {
        if self.is_forever() || self.is_dawn() {
            return Err(TemporalError::InstantOverflow);
        }
        match self.0.checked_add(delta) {
            Some(t) if t != i64::MAX && t != i64::MIN => Ok(Instant(t)),
            _ => Err(TemporalError::InstantOverflow),
        }
    }

    /// Renders this instant under the given granularity.
    pub fn display(self, granularity: Granularity) -> String {
        if self.is_forever() {
            return "Now".to_owned();
        }
        if self.is_dawn() {
            return "Dawn".to_owned();
        }
        match granularity {
            Granularity::Tick => self.0.to_string(),
            Granularity::Month => {
                let ym = self.to_ym();
                format!("{:02}/{}", ym.month, ym.year)
            }
            Granularity::Year => self.year().to_string(),
        }
    }
}

impl std::fmt::Display for Instant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.display(Granularity::Month))
    }
}

/// A decomposed month-granularity instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct YearMonth {
    /// Calendar year.
    pub year: i32,
    /// Calendar month, `1..=12`.
    pub month: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ym_roundtrip() {
        let i = Instant::ym(2001, 1);
        assert_eq!(
            i.to_ym(),
            YearMonth {
                year: 2001,
                month: 1
            }
        );
        assert_eq!(i.year(), 2001);
        let j = Instant::ym(2002, 12);
        assert_eq!(
            j.to_ym(),
            YearMonth {
                year: 2002,
                month: 12
            }
        );
    }

    #[test]
    fn ym_rejects_invalid_month() {
        assert_eq!(
            Instant::from_ym(2001, 0),
            Err(TemporalError::InvalidMonth(0))
        );
        assert_eq!(
            Instant::from_ym(2001, 13),
            Err(TemporalError::InvalidMonth(13))
        );
    }

    #[test]
    fn ordering_follows_calendar() {
        assert!(Instant::ym(2001, 12) < Instant::ym(2002, 1));
        assert!(Instant::ym(2001, 1) < Instant::FOREVER);
        assert!(Instant::DAWN < Instant::ym(1900, 1));
    }

    #[test]
    fn pred_succ_are_inverse_on_regular_instants() {
        let i = Instant::ym(2003, 6);
        assert_eq!(i.pred().succ(), i);
        assert_eq!(i.succ().pred(), i);
    }

    #[test]
    fn pred_succ_saturate_on_sentinels() {
        assert_eq!(Instant::FOREVER.pred(), Instant::FOREVER);
        assert_eq!(Instant::FOREVER.succ(), Instant::FOREVER);
        assert_eq!(Instant::DAWN.pred(), Instant::DAWN);
        assert_eq!(Instant::DAWN.succ(), Instant::DAWN);
    }

    #[test]
    fn pred_crosses_year_boundary() {
        assert_eq!(Instant::ym(2003, 1).pred(), Instant::ym(2002, 12));
    }

    #[test]
    fn year_start_end() {
        assert_eq!(Instant::year_start(2001), Instant::ym(2001, 1));
        assert_eq!(Instant::year_end(2001), Instant::ym(2001, 12));
    }

    #[test]
    fn checked_add_overflow() {
        assert!(Instant::FOREVER.checked_add(1).is_err());
        assert!(Instant::at(i64::MAX - 1).checked_add(5).is_err());
        assert_eq!(
            Instant::ym(2001, 1).checked_add(12).unwrap(),
            Instant::ym(2002, 1)
        );
    }

    #[test]
    fn display_granularities() {
        let i = Instant::ym(2001, 3);
        assert_eq!(i.display(Granularity::Month), "03/2001");
        assert_eq!(i.display(Granularity::Year), "2001");
        assert_eq!(Instant::FOREVER.display(Granularity::Month), "Now");
        assert_eq!(i.display(Granularity::Tick), (2001 * 12 + 2).to_string());
    }

    #[test]
    fn negative_year_euclid_decomposition() {
        let i = Instant::ym(-1, 11);
        assert_eq!(
            i.to_ym(),
            YearMonth {
                year: -1,
                month: 11
            }
        );
    }
}
