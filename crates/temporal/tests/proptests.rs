//! Randomized property tests for the temporal algebra, driven by the
//! in-repo deterministic generator (`mvolap_prng::check` replaces the
//! external `proptest` crate, which the offline build cannot fetch).

use mvolap_prng::{check, Rng};
use mvolap_temporal::{partition_timeline, AllenRelation, Instant, Interval};

const CASES: u64 = 256;

/// An arbitrary valid interval over a small tick range, including open
/// (`Now`-ended) ones.
fn any_interval(rng: &mut Rng) -> Interval {
    let start = rng.i64_in(-50, 50);
    let len = rng.i64_in(0, 40);
    let s = Instant::at(start);
    if rng.bool() {
        Interval::since(s)
    } else {
        Interval::of(s, Instant::at(start + len))
    }
}

fn intervals(rng: &mut Rng, lo: usize, hi: usize) -> Vec<Interval> {
    (0..rng.usize_in(lo, hi))
        .map(|_| any_interval(rng))
        .collect()
}

#[test]
fn intersect_is_commutative() {
    check(CASES, 0x7e01, |rng| {
        let (a, b) = (any_interval(rng), any_interval(rng));
        assert_eq!(a.intersect(b), b.intersect(a));
    });
}

#[test]
fn intersect_is_idempotent() {
    check(CASES, 0x7e02, |rng| {
        let a = any_interval(rng);
        assert_eq!(a.intersect(a), Some(a));
    });
}

#[test]
fn intersection_contained_in_both() {
    check(CASES, 0x7e03, |rng| {
        let (a, b) = (any_interval(rng), any_interval(rng));
        if let Some(c) = a.intersect(b) {
            assert!(a.contains_interval(c));
            assert!(b.contains_interval(c));
        }
    });
}

#[test]
fn overlaps_agrees_with_intersect() {
    check(CASES, 0x7e04, |rng| {
        let (a, b) = (any_interval(rng), any_interval(rng));
        assert_eq!(a.overlaps(b), a.intersect(b).is_some());
    });
}

#[test]
fn union_contains_both() {
    check(CASES, 0x7e05, |rng| {
        let (a, b) = (any_interval(rng), any_interval(rng));
        if let Some(u) = a.union(b) {
            assert!(u.contains_interval(a));
            assert!(u.contains_interval(b));
        }
    });
}

#[test]
fn allen_is_exhaustive_and_consistent() {
    use AllenRelation::*;
    check(CASES, 0x7e06, |rng| {
        let (a, b) = (any_interval(rng), any_interval(rng));
        let rel = a.allen(b);
        // Overlap-classifying relations must agree with `overlaps`.
        let overlapping = !matches!(rel, Before | Meets | MetBy | After);
        assert_eq!(overlapping, a.overlaps(b));
        // Equals iff identical.
        assert_eq!(rel == Equals, a == b);
    });
}

#[test]
fn allen_inverse_symmetry() {
    use AllenRelation::*;
    check(CASES, 0x7e07, |rng| {
        let (a, b) = (any_interval(rng), any_interval(rng));
        let inverse = match a.allen(b) {
            Before => After,
            Meets => MetBy,
            Overlaps => OverlappedBy,
            Starts => StartedBy,
            During => Contains,
            Finishes => FinishedBy,
            Equals => Equals,
            FinishedBy => Finishes,
            Contains => During,
            StartedBy => Starts,
            OverlappedBy => Overlaps,
            MetBy => Meets,
            After => Before,
        };
        assert_eq!(b.allen(a), inverse);
    });
}

#[test]
fn partition_segments_are_ordered_and_disjoint() {
    check(CASES, 0x7e08, |rng| {
        let ivs = intervals(rng, 0, 12);
        let segs = partition_timeline(&ivs);
        for w in segs.windows(2) {
            assert!(w[0].interval.end() < w[1].interval.start());
        }
    });
}

#[test]
fn partition_refines_every_input() {
    check(CASES, 0x7e09, |rng| {
        let ivs = intervals(rng, 0, 12);
        for seg in partition_timeline(&ivs) {
            for iv in &ivs {
                assert!(iv.contains_interval(seg.interval) || iv.intersect(seg.interval).is_none());
            }
        }
    });
}

#[test]
fn partition_covers_exactly_the_union() {
    check(CASES, 0x7e0a, |rng| {
        let ivs = intervals(rng, 1, 10);
        let t = Instant::at(rng.i64_in(-60, 120));
        let covered = ivs.iter().any(|iv| iv.contains(t));
        let in_segment = partition_timeline(&ivs)
            .iter()
            .any(|s| s.interval.contains(t));
        assert_eq!(covered, in_segment);
    });
}

#[test]
fn partition_active_sets_are_correct() {
    check(CASES, 0x7e0b, |rng| {
        let ivs = intervals(rng, 1, 10);
        for seg in partition_timeline(&ivs) {
            let probe = seg.interval.start();
            for (idx, iv) in ivs.iter().enumerate() {
                assert_eq!(seg.active.contains(&idx), iv.contains(probe));
            }
        }
    });
}

#[test]
fn pred_succ_monotonic() {
    check(CASES, 0x7e0c, |rng| {
        let i = Instant::at(rng.i64_in(-1000, 1000));
        assert!(i.pred() < i);
        assert!(i < i.succ());
    });
}
