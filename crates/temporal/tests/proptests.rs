//! Property-based tests for the temporal algebra.

use mvolap_temporal::{partition_timeline, AllenRelation, Instant, Interval};
use proptest::prelude::*;

/// Strategy producing arbitrary valid intervals over a small tick range,
/// including open (`Now`-ended) ones.
fn interval_strategy() -> impl Strategy<Value = Interval> {
    (-50i64..50, 0i64..40, prop::bool::ANY).prop_map(|(start, len, open)| {
        let s = Instant::at(start);
        if open {
            Interval::since(s)
        } else {
            Interval::of(s, Instant::at(start + len))
        }
    })
}

proptest! {
    #[test]
    fn intersect_is_commutative(a in interval_strategy(), b in interval_strategy()) {
        prop_assert_eq!(a.intersect(b), b.intersect(a));
    }

    #[test]
    fn intersect_is_idempotent(a in interval_strategy()) {
        prop_assert_eq!(a.intersect(a), Some(a));
    }

    #[test]
    fn intersection_contained_in_both(a in interval_strategy(), b in interval_strategy()) {
        if let Some(c) = a.intersect(b) {
            prop_assert!(a.contains_interval(c));
            prop_assert!(b.contains_interval(c));
        }
    }

    #[test]
    fn overlaps_agrees_with_intersect(a in interval_strategy(), b in interval_strategy()) {
        prop_assert_eq!(a.overlaps(b), a.intersect(b).is_some());
    }

    #[test]
    fn union_contains_both(a in interval_strategy(), b in interval_strategy()) {
        if let Some(u) = a.union(b) {
            prop_assert!(u.contains_interval(a));
            prop_assert!(u.contains_interval(b));
        }
    }

    #[test]
    fn allen_is_exhaustive_and_consistent(a in interval_strategy(), b in interval_strategy()) {
        use AllenRelation::*;
        let rel = a.allen(b);
        // Overlap-classifying relations must agree with `overlaps`.
        let overlapping = !matches!(rel, Before | Meets | MetBy | After);
        prop_assert_eq!(overlapping, a.overlaps(b));
        // Equals iff identical.
        prop_assert_eq!(rel == Equals, a == b);
    }

    #[test]
    fn allen_inverse_symmetry(a in interval_strategy(), b in interval_strategy()) {
        use AllenRelation::*;
        let inverse = match a.allen(b) {
            Before => After,
            Meets => MetBy,
            Overlaps => OverlappedBy,
            Starts => StartedBy,
            During => Contains,
            Finishes => FinishedBy,
            Equals => Equals,
            FinishedBy => Finishes,
            Contains => During,
            StartedBy => Starts,
            OverlappedBy => Overlaps,
            MetBy => Meets,
            After => Before,
        };
        prop_assert_eq!(b.allen(a), inverse);
    }

    #[test]
    fn partition_segments_are_ordered_and_disjoint(
        ivs in prop::collection::vec(interval_strategy(), 0..12)
    ) {
        let segs = partition_timeline(&ivs);
        for w in segs.windows(2) {
            prop_assert!(w[0].interval.end() < w[1].interval.start());
        }
    }

    #[test]
    fn partition_refines_every_input(
        ivs in prop::collection::vec(interval_strategy(), 0..12)
    ) {
        for seg in partition_timeline(&ivs) {
            for iv in &ivs {
                prop_assert!(
                    iv.contains_interval(seg.interval) || iv.intersect(seg.interval).is_none()
                );
            }
        }
    }

    #[test]
    fn partition_covers_exactly_the_union(
        ivs in prop::collection::vec(interval_strategy(), 1..10),
        probe in -60i64..120
    ) {
        let t = Instant::at(probe);
        let covered = ivs.iter().any(|iv| iv.contains(t));
        let in_segment = partition_timeline(&ivs)
            .iter()
            .any(|s| s.interval.contains(t));
        prop_assert_eq!(covered, in_segment);
    }

    #[test]
    fn partition_active_sets_are_correct(
        ivs in prop::collection::vec(interval_strategy(), 1..10)
    ) {
        for seg in partition_timeline(&ivs) {
            let probe = seg.interval.start();
            for (idx, iv) in ivs.iter().enumerate() {
                prop_assert_eq!(seg.active.contains(&idx), iv.contains(probe));
            }
        }
    }

    #[test]
    fn pred_succ_monotonic(t in -1000i64..1000) {
        let i = Instant::at(t);
        prop_assert!(i.pred() < i);
        prop_assert!(i < i.succ());
    }
}
