//! Cluster integration tests: quorum commit, deterministic election,
//! fencing, truncation-on-rejoin, read routing, and the full
//! fault-injection sweep.

use std::path::{Path, PathBuf};

use mvolap_cluster::{cluster_sweep, ClusterConfig, ClusterSet, LocalCluster, RejoinOutcome};
use mvolap_durable::fault::{generate, Step};
use mvolap_durable::{
    CheckpointPolicy, DurableError, GroupConfig, Io, Options, TimeSource, WalRecord,
};
use mvolap_replica::{ChannelTransport, NetAddr, NetConfig, ReplicaError};
use mvolap_server::{ServerError, ServerOptions};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mvolap_cluster_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> Options {
    Options {
        segment_bytes: 2048,
        policy: CheckpointPolicy::manual(),
        prune_on_checkpoint: true,
    }
}

fn group_cfg() -> GroupConfig {
    GroupConfig {
        hold_ms: 0,
        time: TimeSource::manual(0),
    }
}

/// A three-node group (primary + m1 + m2) with `n` quorum-committed
/// records from the seeded workload, plus the remaining records of the
/// workload for later use.
fn three_nodes(dir: &Path, n: usize) -> (ClusterSet<ChannelTransport>, Vec<WalRecord>) {
    let workload = generate(7, n + 4);
    let mut records: Vec<WalRecord> = workload
        .steps
        .iter()
        .filter_map(|s| match s {
            Step::Op(r) => Some(r.clone()),
            Step::Checkpoint => None,
        })
        .collect();
    let rest = records.split_off(n);
    let mut set = ClusterSet::bootstrap(
        dir,
        workload.seed_schema.clone(),
        opts(),
        group_cfg(),
        ClusterConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .expect("bootstrap");
    set.add_member("m1", Io::plain());
    set.add_member("m2", Io::plain());
    for r in records {
        set.commit_quorum(r).expect("quorum commit");
    }
    (set, rest)
}

#[test]
fn quorum_commit_advances_watermark_and_members() {
    let dir = tmp("watermark");
    let (set, _) = three_nodes(&dir, 5);
    let p = set.primary().expect("primary alive");
    let head = p.wal_position();
    assert!(
        p.quorum_lsn() >= head - 1,
        "watermark {} never caught head {head}",
        p.quorum_lsn()
    );
    // A majority acked every commit; with a fully-connected channel
    // transport *both* members end up at the head.
    for m in ["m1", "m2"] {
        assert!(
            set.member_synced(m) >= head - 1,
            "{m} synced only to {}",
            set.member_synced(m)
        );
    }
    assert_eq!(set.quorum_required(), 2);
    assert_eq!(set.group_size(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn commit_without_reachable_members_is_unreplicated() {
    let dir = tmp("unreplicated");
    let workload = generate(3, 2);
    let record = workload
        .steps
        .iter()
        .find_map(|s| match s {
            Step::Op(r) => Some(r.clone()),
            Step::Checkpoint => None,
        })
        .unwrap();
    // Both members crash on their very first I/O primitive: they exist
    // but can never fsync, so no ack ever arrives and the commit must
    // surface the typed unreplicated error while staying locally
    // durable.
    let mut set = ClusterSet::bootstrap(
        &dir,
        workload.seed_schema,
        opts(),
        group_cfg(),
        ClusterConfig {
            commit_ticks: 4,
            ..ClusterConfig::default()
        },
        ChannelTransport::new(),
        Io::plain(),
    )
    .expect("bootstrap");
    set.add_member(
        "m1",
        Io::faulty(mvolap_durable::FaultPlan::crash_after(0, 1)),
    );
    set.add_member(
        "m2",
        Io::faulty(mvolap_durable::FaultPlan::crash_after(0, 1)),
    );
    match set.commit_quorum(record) {
        Err(ReplicaError::Durable(DurableError::Unreplicated { lsn, acked })) => {
            assert_eq!(acked, 1, "only the primary's own fsync counts");
            assert!(lsn >= 2);
        }
        other => panic!("expected Unreplicated, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn election_is_deterministic_and_fences_the_deposed_primary() {
    let dir = tmp("election");
    let (mut set, rest) = three_nodes(&dir, 5);
    let epoch_before = set.epoch();
    let old = set.kill_primary().expect("primary present");
    drop(old);
    let (winner, epoch) = set.elect().expect("two live members elect");
    // Both members are at the same LSN, so the tie breaks on the
    // member id — deterministically the lexically greatest.
    assert_eq!(winner, "m2");
    assert!(epoch > epoch_before);
    assert_eq!(set.primary().expect("new primary").name(), "m2");
    assert_eq!(set.primary().expect("new primary").epoch(), epoch);
    // m2 left the member set; m1 remains.
    assert_eq!(set.member_names(), vec!["m1".to_string()]);
    // The group keeps committing at quorum (primary + m1 = 2 of 3).
    let mut rest = rest;
    let r = rest.remove(0);
    set.commit_quorum(r).expect("post-failover quorum commit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn operator_failover_fences_live_primary() {
    let dir = tmp("failover");
    let (mut set, mut rest) = three_nodes(&dir, 5);
    // Planned handover: the primary is alive and yields.
    let (winner, epoch) = set.elect().expect("operator failover");
    assert_eq!(winner, "m2");
    let retired = set.retired_mut().expect("deposed primary retained");
    assert!(retired.is_fenced());
    match retired.commit(rest.remove(0)) {
        Err(ReplicaError::Fenced { epoch: at }) => assert_eq!(at, epoch),
        other => panic!("deposed primary accepted a write: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejoin_truncates_unquorumed_suffix() {
    let dir = tmp("rejoin");
    let (mut set, mut rest) = three_nodes(&dir, 5);
    // Two more commits that never replicate: locally durable only.
    let first_lost = set.commit_local(rest.remove(0)).expect("local commit");
    set.commit_local(rest.remove(0)).expect("local commit");
    let old = set.kill_primary().expect("primary present");
    drop(old);
    let (winner, _) = set.elect().expect("election");
    assert_eq!(winner, "m2");
    // The deposed primary's log runs past the group's history; rejoin
    // must cut the un-quorum'd suffix at the divergence point.
    match set.rejoin_member("primary").expect("rejoin") {
        RejoinOutcome::Truncated { cut } => assert_eq!(cut, first_lost),
        other => panic!("expected truncation, got {other:?}"),
    }
    // And it now follows the new primary faithfully.
    let head = set.primary().expect("primary").wal_position();
    set.run_ticks(32);
    assert!(set.member("primary").expect("rejoined").next_lsn() >= head);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn election_without_any_member_state_is_refused() {
    let dir = tmp("noquorum");
    let workload = generate(11, 2);
    let mut set = ClusterSet::bootstrap(
        &dir,
        workload.seed_schema,
        opts(),
        group_cfg(),
        ClusterConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .expect("bootstrap");
    let old = set.kill_primary().expect("primary present");
    drop(old);
    match set.elect() {
        Err(ReplicaError::NoQuorum {
            votes, required, ..
        }) => {
            assert!(votes < required);
        }
        other => panic!("expected NoQuorum, got {other:?}"),
    }
    assert!(set.primary().is_none(), "no primary may appear sans quorum");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn read_routing_picks_the_freshest_member() {
    let dir = tmp("routing");
    let (set, _) = three_nodes(&dir, 5);
    let head = set.primary().expect("primary").wal_position();
    // Both members are at the head; the router must satisfy a bound
    // just under it and break the tie deterministically.
    let chosen = set.route_read(head - 1).expect("a member qualifies");
    assert_eq!(chosen, "m2");
    // A bound beyond every member is unsatisfiable.
    assert!(set.route_read(head + 10).is_none());
    std::fs::remove_dir_all(&dir).ok();
}

/// The quorum-envelope row the wire fuzz table cannot cover: a forged
/// ack claiming a *future* LSN decodes fine, so the refusal is
/// semantic — the supervisor must cap the claim at the primary's head
/// so neither the quorum watermark nor read routing ever points past
/// records that exist.
#[test]
fn forged_future_lsn_ack_never_advances_the_watermark() {
    let dir = tmp("forged_ack");
    let (mut set, _) = three_nodes(&dir, 4);
    let head = set.primary().expect("primary").wal_position();
    let epoch = set.epoch();
    use mvolap_replica::{ReplicaMsg, ReplicaTransport};
    set.transport_mut()
        .send(
            "primary",
            &ReplicaMsg::QuorumAck {
                node: "m1".to_string(),
                epoch,
                applied_lsn: head + 500,
                synced_lsn: head + 500,
            },
        )
        .unwrap();
    set.run_ticks(4);
    let p = set.primary().expect("primary");
    assert!(
        p.quorum_lsn() <= p.wal_position(),
        "forged ack pushed the watermark past the head"
    );
    assert!(
        set.member_synced("m1") <= head,
        "forged ack inflated m1's position to {}",
        set.member_synced("m1")
    );
    assert!(
        set.route_read(head + 100).is_none(),
        "read routed to a position nobody holds"
    );
    // An ack from a *future epoch* is ignored outright.
    set.transport_mut()
        .send(
            "primary",
            &ReplicaMsg::QuorumAck {
                node: "m1".to_string(),
                epoch: epoch + 10,
                applied_lsn: head + 500,
                synced_lsn: head + 500,
            },
        )
        .unwrap();
    set.run_ticks(4);
    assert!(set.member_synced("m1") <= head);
    std::fs::remove_dir_all(&dir).ok();
}

/// The served three-node loopback group: quorum-gated commits over the
/// wire, fleet read routing with the member named in refusals.
#[test]
fn served_cluster_quorums_commits_and_routes_reads() {
    let dir = tmp("served");
    let workload = generate(5, 3);
    let records: Vec<WalRecord> = workload
        .steps
        .iter()
        .filter_map(|s| match s {
            Step::Op(r) => Some(r.clone()),
            Step::Checkpoint => None,
        })
        .collect();
    let loopback = NetAddr::parse("127.0.0.1:0").unwrap();
    let cluster = LocalCluster::start(
        &dir,
        workload.seed_schema.clone(),
        &loopback,
        &[
            ("m1".to_string(), loopback.clone()),
            ("m2".to_string(), loopback.clone()),
        ],
        opts(),
        GroupConfig::default(),
        ServerOptions {
            quorum_timeout_ms: 300,
            ..ServerOptions::default()
        },
        NetConfig::default(),
    )
    .expect("cluster starts");

    // 1. With nobody pumping replication, a commit is locally durable
    //    but the quorum never forms: typed unreplicated refusal.
    let mut client = cluster.client(NetConfig::default());
    match client.commit(&records[0]) {
        Err(ServerError::Unreplicated { acked, .. }) => {
            assert_eq!(acked, 1, "only the primary acked");
        }
        other => panic!("expected Unreplicated, got {other:?}"),
    }

    // 2. With a pumper shipping the tail, the same commit path clears
    //    the quorum and acks.
    let group = cluster.group();
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                cluster.pump().expect("pump");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        let lsn = client.commit(&records[1]).expect("quorum commit over wire");
        assert!(group.quorum_lsn() > lsn);

        // 3. Fleet read routing: a bound at the committed LSN is
        //    served by a member; an unsatisfiable bound is refused
        //    naming the freshest member consulted.
        let out = client.read_at(lsn, "SELECT sum(Amount) BY year IN MODE tcm");
        let table = out.expect("fleet read served");
        assert!(!table.is_empty());
        match client.read_at(lsn + 100, "SELECT sum(Amount) BY year IN MODE tcm") {
            Err(ServerError::TooStale {
                required, member, ..
            }) => {
                assert_eq!(required, lsn + 100);
                let who = member.expect("fleet refusal names the member");
                assert!(who == "m1" || who == "m2", "unexpected member {who}");
            }
            other => panic!("expected TooStale with member, got {other:?}"),
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
    });
    drop(cluster);
    std::fs::remove_dir_all(&dir).ok();
}

/// The tentpole guarantee: the full fault sweep. Debug builds run a
/// smaller workload (the release CI job runs the big one).
#[test]
fn cluster_sweep_holds_every_invariant() {
    let records = if cfg!(debug_assertions) { 6 } else { 12 };
    let dir = tmp("sweep");
    let outcome = cluster_sweep(&dir, 0xC1u64, records).expect("sweep invariants hold");
    let floor = if cfg!(debug_assertions) { 60 } else { 200 };
    assert!(
        outcome.injection_points >= floor,
        "sweep too small: {} points (floor {floor})",
        outcome.injection_points
    );
    assert!(outcome.primary_crashes > 0, "no primary crash exercised");
    assert!(outcome.partitions > 0, "no partition exercised");
    assert!(outcome.healed_outages > 0, "no outage healed");
    assert!(outcome.elections > 0, "no election ran");
    assert!(outcome.fenced_refusals > 0, "dual-primary probe never ran");
    assert!(
        outcome.truncated_rejoins + outcome.rebuilt_rejoins + outcome.clean_rejoins > 0,
        "no rejoin exercised"
    );
    std::fs::remove_dir_all(&dir).ok();
}
