//! Cluster integration tests: quorum commit, deterministic election,
//! fencing, truncation-on-rejoin, read routing, and the full
//! fault-injection sweep.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mvolap_cluster::{
    cluster_sweep, ClusterConfig, ClusterSet, LocalCluster, MemberPump, PumpConfig, PumpShared,
    PumpState, PumpStep, PumpTracker, RejoinOutcome,
};
use mvolap_durable::fault::{generate, Step};
use mvolap_durable::{
    CheckpointPolicy, DurableError, DurableTmd, FaultPlan, GroupCommit, GroupConfig, Io, Options,
    TimeSource, WalRecord,
};
use mvolap_replica::{
    ChannelTransport, Follower, NetAddr, NetConfig, ReplicaError, ReplicaMsg, TailSource, WalTailer,
};
use mvolap_server::{ServerError, ServerOptions};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mvolap_cluster_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> Options {
    Options {
        segment_bytes: 2048,
        policy: CheckpointPolicy::manual(),
        prune_on_checkpoint: true,
    }
}

fn group_cfg() -> GroupConfig {
    GroupConfig {
        hold_ms: 0,
        time: TimeSource::manual(0),
    }
}

/// A three-node group (primary + m1 + m2) with `n` quorum-committed
/// records from the seeded workload, plus the remaining records of the
/// workload for later use.
fn three_nodes(dir: &Path, n: usize) -> (ClusterSet<ChannelTransport>, Vec<WalRecord>) {
    let workload = generate(7, n + 4);
    let mut records: Vec<WalRecord> = workload
        .steps
        .iter()
        .filter_map(|s| match s {
            Step::Op(r) => Some(r.clone()),
            Step::Checkpoint => None,
        })
        .collect();
    let rest = records.split_off(n);
    let mut set = ClusterSet::bootstrap(
        dir,
        workload.seed_schema.clone(),
        opts(),
        group_cfg(),
        ClusterConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .expect("bootstrap");
    set.add_member("m1", Io::plain());
    set.add_member("m2", Io::plain());
    for r in records {
        set.commit_quorum(r).expect("quorum commit");
    }
    (set, rest)
}

#[test]
fn quorum_commit_advances_watermark_and_members() {
    let dir = tmp("watermark");
    let (set, _) = three_nodes(&dir, 5);
    let p = set.primary().expect("primary alive");
    let head = p.wal_position();
    assert!(
        p.quorum_lsn() >= head - 1,
        "watermark {} never caught head {head}",
        p.quorum_lsn()
    );
    // A majority acked every commit; with a fully-connected channel
    // transport *both* members end up at the head.
    for m in ["m1", "m2"] {
        assert!(
            set.member_synced(m) >= head - 1,
            "{m} synced only to {}",
            set.member_synced(m)
        );
    }
    assert_eq!(set.quorum_required(), 2);
    assert_eq!(set.group_size(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn commit_without_reachable_members_is_unreplicated() {
    let dir = tmp("unreplicated");
    let workload = generate(3, 2);
    let record = workload
        .steps
        .iter()
        .find_map(|s| match s {
            Step::Op(r) => Some(r.clone()),
            Step::Checkpoint => None,
        })
        .unwrap();
    // Both members crash on their very first I/O primitive: they exist
    // but can never fsync, so no ack ever arrives and the commit must
    // surface the typed unreplicated error while staying locally
    // durable.
    let mut set = ClusterSet::bootstrap(
        &dir,
        workload.seed_schema,
        opts(),
        group_cfg(),
        ClusterConfig {
            commit_ticks: 4,
            ..ClusterConfig::default()
        },
        ChannelTransport::new(),
        Io::plain(),
    )
    .expect("bootstrap");
    set.add_member(
        "m1",
        Io::faulty(mvolap_durable::FaultPlan::crash_after(0, 1)),
    );
    set.add_member(
        "m2",
        Io::faulty(mvolap_durable::FaultPlan::crash_after(0, 1)),
    );
    match set.commit_quorum(record) {
        Err(ReplicaError::Durable(DurableError::Unreplicated { lsn, acked })) => {
            assert_eq!(acked, 1, "only the primary's own fsync counts");
            assert!(lsn >= 2);
        }
        other => panic!("expected Unreplicated, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn election_is_deterministic_and_fences_the_deposed_primary() {
    let dir = tmp("election");
    let (mut set, rest) = three_nodes(&dir, 5);
    let epoch_before = set.epoch();
    let old = set.kill_primary().expect("primary present");
    drop(old);
    let (winner, epoch) = set.elect().expect("two live members elect");
    // Both members are at the same LSN, so the tie breaks on the
    // member id — deterministically the lexically greatest.
    assert_eq!(winner, "m2");
    assert!(epoch > epoch_before);
    assert_eq!(set.primary().expect("new primary").name(), "m2");
    assert_eq!(set.primary().expect("new primary").epoch(), epoch);
    // m2 left the member set; m1 remains.
    assert_eq!(set.member_names(), vec!["m1".to_string()]);
    // The group keeps committing at quorum (primary + m1 = 2 of 3).
    let mut rest = rest;
    let r = rest.remove(0);
    set.commit_quorum(r).expect("post-failover quorum commit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn operator_failover_fences_live_primary() {
    let dir = tmp("failover");
    let (mut set, mut rest) = three_nodes(&dir, 5);
    // Planned handover: the primary is alive and yields.
    let (winner, epoch) = set.elect().expect("operator failover");
    assert_eq!(winner, "m2");
    let retired = set.retired_mut().expect("deposed primary retained");
    assert!(retired.is_fenced());
    match retired.commit(rest.remove(0)) {
        Err(ReplicaError::Fenced { epoch: at }) => assert_eq!(at, epoch),
        other => panic!("deposed primary accepted a write: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejoin_truncates_unquorumed_suffix() {
    let dir = tmp("rejoin");
    let (mut set, mut rest) = three_nodes(&dir, 5);
    // Two more commits that never replicate: locally durable only.
    let first_lost = set.commit_local(rest.remove(0)).expect("local commit");
    set.commit_local(rest.remove(0)).expect("local commit");
    let old = set.kill_primary().expect("primary present");
    drop(old);
    let (winner, _) = set.elect().expect("election");
    assert_eq!(winner, "m2");
    // The deposed primary's log runs past the group's history; rejoin
    // must cut the un-quorum'd suffix at the divergence point.
    match set.rejoin_member("primary").expect("rejoin") {
        RejoinOutcome::Truncated { cut } => assert_eq!(cut, first_lost),
        other => panic!("expected truncation, got {other:?}"),
    }
    // And it now follows the new primary faithfully.
    let head = set.primary().expect("primary").wal_position();
    set.run_ticks(32);
    assert!(set.member("primary").expect("rejoined").next_lsn() >= head);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn election_without_any_member_state_is_refused() {
    let dir = tmp("noquorum");
    let workload = generate(11, 2);
    let mut set = ClusterSet::bootstrap(
        &dir,
        workload.seed_schema,
        opts(),
        group_cfg(),
        ClusterConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .expect("bootstrap");
    let old = set.kill_primary().expect("primary present");
    drop(old);
    match set.elect() {
        Err(ReplicaError::NoQuorum {
            votes, required, ..
        }) => {
            assert!(votes < required);
        }
        other => panic!("expected NoQuorum, got {other:?}"),
    }
    assert!(set.primary().is_none(), "no primary may appear sans quorum");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn read_routing_picks_the_freshest_member() {
    let dir = tmp("routing");
    let (set, _) = three_nodes(&dir, 5);
    let head = set.primary().expect("primary").wal_position();
    // Both members are at the head; the router must satisfy a bound
    // just under it and break the tie deterministically.
    let chosen = set.route_read(head - 1).expect("a member qualifies");
    assert_eq!(chosen, "m2");
    // A bound beyond every member is unsatisfiable.
    assert!(set.route_read(head + 10).is_none());
    std::fs::remove_dir_all(&dir).ok();
}

/// The quorum-envelope row the wire fuzz table cannot cover: a forged
/// ack claiming a *future* LSN decodes fine, so the refusal is
/// semantic — the supervisor must cap the claim at the primary's head
/// so neither the quorum watermark nor read routing ever points past
/// records that exist.
#[test]
fn forged_future_lsn_ack_never_advances_the_watermark() {
    let dir = tmp("forged_ack");
    let (mut set, _) = three_nodes(&dir, 4);
    let head = set.primary().expect("primary").wal_position();
    let epoch = set.epoch();
    use mvolap_replica::{ReplicaMsg, ReplicaTransport};
    set.transport_mut()
        .send(
            "primary",
            &ReplicaMsg::QuorumAck {
                node: "m1".to_string(),
                epoch,
                applied_lsn: head + 500,
                synced_lsn: head + 500,
            },
        )
        .unwrap();
    set.run_ticks(4);
    let p = set.primary().expect("primary");
    assert!(
        p.quorum_lsn() <= p.wal_position(),
        "forged ack pushed the watermark past the head"
    );
    assert!(
        set.member_synced("m1") <= head,
        "forged ack inflated m1's position to {}",
        set.member_synced("m1")
    );
    assert!(
        set.route_read(head + 100).is_none(),
        "read routed to a position nobody holds"
    );
    // An ack from a *future epoch* is ignored outright.
    set.transport_mut()
        .send(
            "primary",
            &ReplicaMsg::QuorumAck {
                node: "m1".to_string(),
                epoch: epoch + 10,
                applied_lsn: head + 500,
                synced_lsn: head + 500,
            },
        )
        .unwrap();
    set.run_ticks(4);
    assert!(set.member_synced("m1") <= head);
    std::fs::remove_dir_all(&dir).ok();
}

/// The served three-node loopback group: quorum-gated commits over the
/// wire, fleet read routing with the member named in refusals.
#[test]
fn served_cluster_quorums_commits_and_routes_reads() {
    let dir = tmp("served");
    let workload = generate(5, 3);
    let records: Vec<WalRecord> = workload
        .steps
        .iter()
        .filter_map(|s| match s {
            Step::Op(r) => Some(r.clone()),
            Step::Checkpoint => None,
        })
        .collect();
    let loopback = NetAddr::parse("127.0.0.1:0").unwrap();
    let mut cluster = LocalCluster::start(
        &dir,
        workload.seed_schema.clone(),
        &loopback,
        &[
            ("m1".to_string(), loopback.clone()),
            ("m2".to_string(), loopback.clone()),
        ],
        opts(),
        GroupConfig::default(),
        ServerOptions {
            quorum_timeout_ms: 300,
            ..ServerOptions::default()
        },
        NetConfig::default(),
    )
    .expect("cluster starts");

    // 1. With nobody pumping replication, a commit is locally durable
    //    but the quorum never forms: typed unreplicated refusal.
    let mut client = cluster.client(NetConfig::default());
    match client.commit(&records[0]) {
        Err(ServerError::Unreplicated { acked, .. }) => {
            assert_eq!(acked, 1, "only the primary acked");
        }
        other => panic!("expected Unreplicated, got {other:?}"),
    }

    // 2. One caller-driven round reports per-member results — every
    //    member ships, nobody aborts the round.
    let round = cluster.pump();
    assert_eq!(round.len(), 2, "one result slot per member");
    for (name, res) in &round {
        let applied = res
            .as_ref()
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert!(*applied > 0, "{name} applied nothing");
    }

    // 3. Hand replication to the async pump threads: the same commit
    //    path clears the quorum with nobody driving a loop.
    cluster.spawn_pumps(PumpConfig::default());
    let group = cluster.group();
    let lsn = client.commit(&records[1]).expect("quorum commit over wire");
    assert!(group.quorum_lsn() > lsn);
    for (name, status) in cluster.pump_status() {
        assert!(
            !matches!(
                status.state,
                PumpState::Stalled { .. } | PumpState::Fenced { .. }
            ),
            "pump for {name} unhealthy: {:?}",
            status.state
        );
    }

    // 4. Fleet read routing: a bound at the committed LSN is served
    //    by a member (freshness advanced by the pump threads alone);
    //    an unsatisfiable bound is refused naming the freshest member
    //    consulted.
    let out = client.read_at(lsn, "SELECT sum(Amount) BY year IN MODE tcm");
    let table = out.expect("fleet read served");
    assert!(!table.is_empty());
    match client.read_at(lsn + 100, "SELECT sum(Amount) BY year IN MODE tcm") {
        Err(ServerError::TooStale {
            required, member, ..
        }) => {
            assert_eq!(required, lsn + 100);
            let who = member.expect("fleet refusal names the member");
            assert!(who == "m1" || who == "m2", "unexpected member {who}");
        }
        other => panic!("expected TooStale with member, got {other:?}"),
    }
    drop(cluster);
    std::fs::remove_dir_all(&dir).ok();
}

/// Extracts the plain ops of a generated workload.
fn ops(workload: &mvolap_durable::fault::Workload) -> Vec<WalRecord> {
    workload
        .steps
        .iter()
        .filter_map(|s| match s {
            Step::Op(r) => Some(r.clone()),
            Step::Checkpoint => None,
        })
        .collect()
}

/// Drives a pump until it reports Idle, panicking on anything other
/// than progress/blocked along the way.
fn drive_to_idle(pump: &mut MemberPump) {
    for _ in 0..200 {
        match pump.step() {
            PumpStep::Idle => return,
            PumpStep::Progress { .. } | PumpStep::Blocked { .. } => {}
            other => panic!("pump for {} derailed: {other:?}", pump.member()),
        }
    }
    panic!("pump for {} never converged", pump.member());
}

/// Backpressure: a member that stops acking caps the primary's
/// in-flight window — bounded queue, typed `Blocked` state in the
/// tracker, no further fetches — and the pump recovers cleanly when
/// the member heals. A member whose store crashes is typed `Stalled`
/// with every retry gated by the manual clock. Fully deterministic:
/// the engine is stepped directly, no threads.
#[test]
fn pump_backpressure_caps_window_and_recovers_on_heal() {
    let dir = tmp("backpressure");
    let workload = generate(9, 16);
    let records = ops(&workload);
    assert!(records.len() >= 12);
    let primary_dir = dir.join("primary");
    let store = DurableTmd::create_with(
        &primary_dir,
        workload.seed_schema.clone(),
        opts(),
        Io::plain(),
    )
    .unwrap();
    let commit = GroupCommit::new(store, group_cfg());
    commit.configure_quorum(2);
    let follower = Arc::new(Mutex::new(Follower::create(
        "m1",
        dir.join("m1"),
        opts(),
        Io::plain(),
    )));
    let time = TimeSource::manual(0);
    let cfg = PumpConfig {
        max_batch_frames: 2,
        max_inflight_frames: 4,
        max_inflight_bytes: 1 << 16,
        snap_chunk_bytes: 64 << 10,
        idle_wait_ms: 1,
        retry_wait_ms: 30,
        time: time.clone(),
    };
    let shared = PumpShared::new(commit.clone(), 0);
    let tracker = PumpTracker::new();
    let mut pump = MemberPump::new(
        shared.clone(),
        "m1",
        follower.clone(),
        &primary_dir,
        cfg.clone(),
        tracker.clone(),
    );

    for r in records.iter().take(12) {
        commit.commit(r.clone()).unwrap();
    }
    let head = commit.synced_lsn();

    // The first step fills the whole window into one envelope: 4
    // frames (2 per inner message) of the 12+ available.
    match pump.step() {
        PumpStep::Progress { shipped, acked } => {
            assert_eq!(shipped, 4, "window cap bounds the first ship");
            assert_eq!(acked, 0);
        }
        other => panic!("expected Progress, got {other:?}"),
    }

    // Wedge the member — a long-running read holds its lock, so it
    // stops acking. The window must not grow past its cap no matter
    // how often the pump steps.
    {
        let _wedge = follower.lock().unwrap();
        for _ in 0..5 {
            match pump.step() {
                PumpStep::Blocked { inflight } => assert_eq!(inflight, 4),
                other => panic!("expected Blocked, got {other:?}"),
            }
        }
        let st = tracker.status("m1").unwrap();
        assert_eq!(st.state, PumpState::Blocked);
        assert_eq!(st.inflight_frames, 4, "bounded in-flight queue");
        assert_eq!(st.requests, 1, "nothing further fetched while blocked");
        assert_eq!(st.replies, 0, "wedged member never acked");
    }

    // Healed: delivery drains the window, acks flow, the 2-of-2
    // quorum watermark passes the head.
    drive_to_idle(&mut pump);
    assert_eq!(commit.quorum_lsn(), head, "member acks formed the quorum");
    let st = tracker.status("m1").unwrap();
    assert_eq!(st.state, PumpState::Idle);
    assert_eq!(st.acked_lsn, head);
    assert_eq!(st.inflight_frames, 0);
    assert_eq!(st.shipped_frames, head - 1, "whole log shipped");
    assert!(
        st.requests < st.shipped_frames,
        "batching: fewer envelopes than frames"
    );

    // A member whose store crashes on its first I/O primitive is
    // typed Stalled; the manual clock gates every retry.
    let sick = Arc::new(Mutex::new(Follower::create(
        "m2",
        dir.join("m2"),
        opts(),
        Io::faulty(FaultPlan::crash_after(0, 1)),
    )));
    let mut sick_pump = MemberPump::new(
        shared.clone(),
        "m2",
        sick,
        &primary_dir,
        cfg,
        tracker.clone(),
    );
    assert!(matches!(sick_pump.step(), PumpStep::Progress { .. }));
    match sick_pump.step() {
        PumpStep::Stalled { reason } => assert!(!reason.is_empty()),
        other => panic!("expected Stalled, got {other:?}"),
    }
    let st = tracker.status("m2").unwrap();
    assert!(matches!(st.state, PumpState::Stalled { .. }));
    assert_eq!(st.stalls, 1);
    assert_eq!(st.inflight_frames, 0, "stall drops the window");
    // Inside the backoff window nothing moves — the manual clock
    // gates the retry. Past it the pump re-derives the member's
    // position and ships again; the crash plan was consumed by the
    // failed bootstrap, so the healed member now catches all the way
    // up.
    assert_eq!(sick_pump.step(), PumpStep::Backoff);
    time.advance(30);
    assert!(matches!(sick_pump.step(), PumpStep::Progress { .. }));
    drive_to_idle(&mut sick_pump);
    let st = tracker.status("m2").unwrap();
    assert_eq!(st.state, PumpState::Idle);
    assert_eq!(st.acked_lsn, head, "healed member caught up");
    assert_eq!(st.stalls, 1);
    assert_eq!(commit.quorum_lsn(), head);
    std::fs::remove_dir_all(&dir).ok();
}

/// Election interaction: a pump with an envelope mid-flight when its
/// primary is fenced stops shipping and drops the window; a member
/// that learned the new epoch refuses stale-epoch frames; and the new
/// primary's pumps (stamped with the higher epoch) take over shipping
/// to the surviving members.
#[test]
fn fenced_pump_stops_shipping_and_new_primary_pumps_take_over() {
    let dir = tmp("pumpfence");
    let workload = generate(11, 10);
    let records = ops(&workload);
    assert!(records.len() >= 7);
    let primary_dir = dir.join("primary");
    let store = DurableTmd::create_with(
        &primary_dir,
        workload.seed_schema.clone(),
        opts(),
        Io::plain(),
    )
    .unwrap();
    let commit = GroupCommit::new(store, group_cfg());
    commit.configure_quorum(3);
    let m1 = Arc::new(Mutex::new(Follower::create(
        "m1",
        dir.join("m1"),
        opts(),
        Io::plain(),
    )));
    let m2 = Arc::new(Mutex::new(Follower::create(
        "m2",
        dir.join("m2"),
        opts(),
        Io::plain(),
    )));
    let cfg = PumpConfig {
        max_batch_frames: 4,
        idle_wait_ms: 1,
        retry_wait_ms: 10,
        time: TimeSource::manual(0),
        ..PumpConfig::default()
    };
    let shared = PumpShared::new(commit.clone(), 1);
    let tracker = PumpTracker::new();
    let mut p1 = MemberPump::new(
        shared.clone(),
        "m1",
        m1.clone(),
        &primary_dir,
        cfg.clone(),
        tracker.clone(),
    );
    let mut p2 = MemberPump::new(
        shared.clone(),
        "m2",
        m2.clone(),
        &primary_dir,
        cfg.clone(),
        tracker.clone(),
    );

    // Steady state: 4 quorum-covered records on both members.
    for r in records.iter().take(4) {
        commit.commit(r.clone()).unwrap();
    }
    drive_to_idle(&mut p1);
    drive_to_idle(&mut p2);
    let h = commit.synced_lsn();
    assert_eq!(commit.quorum_lsn(), h);

    // Two more records land; m1 wedges with the envelope mid-flight
    // (shipped, not yet delivered).
    for r in records.iter().skip(4).take(2) {
        commit.commit(r.clone()).unwrap();
    }
    let wedge = m1.lock().unwrap();
    match p1.step() {
        PumpStep::Progress { shipped, acked } => {
            assert_eq!(shipped, 2);
            assert_eq!(acked, 0, "wedged member took nothing yet");
        }
        other => panic!("expected Progress, got {other:?}"),
    }

    // An election deposes this primary. Both pumps observe the fence
    // on their next step, drop their windows, and ship nothing more —
    // ever.
    shared.fence(2);
    assert_eq!(p1.step(), PumpStep::Fenced { epoch: 2 });
    assert_eq!(p2.step(), PumpStep::Fenced { epoch: 2 });
    let requests_at_fence = tracker.status("m1").unwrap().requests;
    assert_eq!(tracker.status("m1").unwrap().inflight_frames, 0);
    drop(wedge);
    assert_eq!(p1.step(), PumpStep::Fenced { epoch: 2 });
    assert_eq!(
        tracker.status("m1").unwrap().requests,
        requests_at_fence,
        "a fenced pump ships nothing, even after the member heals"
    );

    // The member side is independently safe: once m1 learns the new
    // epoch, stale-epoch frames are refused outright — applied LSN
    // unmoved.
    {
        let mut f = m1.lock().unwrap();
        f.handle(ReplicaMsg::Fence { epoch: 2 }).unwrap();
        let before = f.next_lsn();
        let stale = match WalTailer::new(&primary_dir).fetch(before, 8).unwrap() {
            TailSource::Frames(frames) => frames,
            other => panic!("expected frames, got {other:?}"),
        };
        assert!(!stale.is_empty(), "the deposed primary has a suffix");
        match f.handle(ReplicaMsg::Frames {
            epoch: 1,
            frames: stale,
        }) {
            Err(ReplicaError::Fenced { epoch }) => assert_eq!(epoch, 2),
            other => panic!("expected Fenced, got {other:?}"),
        }
        assert_eq!(f.next_lsn(), before, "no stale-epoch frame applied");
    }

    // m2 — at the full quorum-acked history — is promoted. Its pumps,
    // stamped with epoch 2, take over shipping to m1.
    drop(p2);
    let promoted = Arc::try_unwrap(m2)
        .expect("sole handle")
        .into_inner()
        .unwrap();
    let new_store = promoted.into_primary_store().expect("promotable");
    let new_commit = GroupCommit::new(new_store, group_cfg());
    new_commit.configure_quorum(3);
    let new_shared = PumpShared::new(new_commit.clone(), 2);
    let takeover = PumpTracker::new();
    let mut np1 = MemberPump::new(
        new_shared,
        "m1",
        m1.clone(),
        &dir.join("m2"),
        cfg,
        takeover.clone(),
    );
    let r = records[6].clone();
    new_commit.commit(r).unwrap();
    drive_to_idle(&mut np1);
    let new_head = new_commit.synced_lsn();
    assert_eq!(
        m1.lock().unwrap().next_lsn(),
        new_head,
        "the new primary's pump caught m1 up"
    );
    assert_eq!(
        new_commit.quorum_lsn(),
        new_head,
        "primary + m1 = 2 of 3: quorum commits resumed at epoch 2"
    );
    assert_eq!(takeover.status("m1").unwrap().acked_lsn, new_head);
    std::fs::remove_dir_all(&dir).ok();
}

/// The tentpole guarantee: the full fault sweep. Debug builds run a
/// smaller workload (the release CI job runs the big one).
#[test]
fn cluster_sweep_holds_every_invariant() {
    let records = if cfg!(debug_assertions) { 6 } else { 12 };
    let dir = tmp("sweep");
    let outcome = cluster_sweep(&dir, 0xC1u64, records).expect("sweep invariants hold");
    let floor = if cfg!(debug_assertions) { 60 } else { 200 };
    assert!(
        outcome.injection_points >= floor,
        "sweep too small: {} points (floor {floor})",
        outcome.injection_points
    );
    assert!(outcome.primary_crashes > 0, "no primary crash exercised");
    assert!(outcome.partitions > 0, "no partition exercised");
    assert!(outcome.healed_outages > 0, "no outage healed");
    assert!(outcome.elections > 0, "no election ran");
    assert!(outcome.fenced_refusals > 0, "dual-primary probe never ran");
    assert!(
        outcome.truncated_rejoins + outcome.rebuilt_rejoins + outcome.clean_rejoins > 0,
        "no rejoin exercised"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The membership sweep: crash the primary at every I/O primitive and
/// partition the joiner / the removed member during a journaled
/// reconfiguration. Debug builds run a smaller workload (the release
/// CI job runs the big one and asserts the ≥200-point floor).
#[test]
fn membership_sweep_holds_every_invariant() {
    let records = if cfg!(debug_assertions) { 6 } else { 18 };
    let dir = tmp("membership-sweep");
    let outcome =
        mvolap_cluster::membership_sweep(&dir, 0xA11u64, records).expect("membership invariants");
    let floor = if cfg!(debug_assertions) { 60 } else { 200 };
    assert!(
        outcome.injection_points >= floor,
        "membership sweep too small: {} points (floor {floor})",
        outcome.injection_points
    );
    assert!(outcome.primary_crashes > 0, "no mid-reconfig crash");
    assert!(outcome.partitions > 0, "no joiner/removed partition");
    assert!(outcome.promotions > 0, "no learner promotion observed");
    assert!(outcome.removals > 0, "no journaled removal completed");
    assert!(outcome.elections > 0, "no election during reconfiguration");
    assert!(outcome.fenced_refusals > 0, "dual-primary probe never ran");
    assert!(outcome.stale_acks_fenced > 0, "stale-group probe never ran");
    assert!(
        outcome.resumed_reconfigs > 0,
        "no in-flight reconfiguration survived a failover"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A joiner that crashes mid-snapshot resumes from its last fsynced
/// chunk, not from zero: the spill file survives the crash, the
/// reopened follower reports how many chunks of the same image it
/// already holds, and a fresh pump ships only the remainder.
#[test]
fn joiner_crash_mid_snapshot_resumes_from_last_chunk() {
    let dir = tmp("snapresume");
    let workload = generate(17, 10);
    let records = ops(&workload);
    let primary_dir = dir.join("primary");
    // Tiny segments: the workload seals several, so the checkpoint
    // prunes the WAL below LSN 1 and the joiner can only bootstrap
    // via the snapshot path.
    let small_segments = Options {
        segment_bytes: 256,
        policy: CheckpointPolicy::manual(),
        prune_on_checkpoint: true,
    };
    let store = DurableTmd::create_with(
        &primary_dir,
        workload.seed_schema.clone(),
        small_segments,
        Io::plain(),
    )
    .unwrap();
    let commit = GroupCommit::new(store, group_cfg());
    commit.configure_quorum(2);
    for r in &records {
        commit.commit(r.clone()).unwrap();
    }
    commit
        .with_store_mut(|s| s.checkpoint())
        .expect("checkpoint");
    let oldest = commit.with_store(|s| s.oldest_lsn()).expect("oldest");
    assert!(
        oldest > 1,
        "sealed segments must have pruned, oldest={oldest}"
    );
    let head = commit.wal_position();
    let mut image = Vec::new();
    mvolap_core::persist::write_tmd(&commit.with_store(|s| s.schema().clone()), &mut image)
        .unwrap();
    let total = (image.len() as u64).div_ceil(64);
    assert!(total >= 3, "image too small to interrupt ({total} chunks)");

    // Tiny chunks and a tight in-flight window: one packing round
    // ships only a prefix of the image.
    let cfg = PumpConfig {
        max_batch_frames: 2,
        max_inflight_frames: 4,
        max_inflight_bytes: 128,
        snap_chunk_bytes: 64,
        idle_wait_ms: 1,
        retry_wait_ms: 30,
        time: TimeSource::manual(0),
    };
    let shared = PumpShared::new(commit.clone(), 0);
    let tracker = PumpTracker::new();
    let joiner_dir = dir.join("joiner");
    let follower = Arc::new(Mutex::new(Follower::create(
        "joiner",
        joiner_dir.clone(),
        opts(),
        Io::plain(),
    )));
    let mut pump = MemberPump::new(
        shared.clone(),
        "joiner",
        follower.clone(),
        &primary_dir,
        cfg.clone(),
        tracker.clone(),
    );
    assert!(
        matches!(pump.step(), PumpStep::Progress { .. }),
        "first round ships the image prefix"
    );
    // The envelope packed above delivers on the NEXT step — the
    // window is request/reply pipelined — so take one more turn to
    // land a chunk prefix in the joiner's durable spill.
    assert!(
        matches!(pump.step(), PumpStep::Progress { .. }),
        "second round delivers the prefix to the member"
    );

    // Crash: the pump dies with its member; only the disk survives.
    drop(pump);
    drop(follower);

    let reopened = Follower::open("joiner", joiner_dir, opts(), Io::plain()).expect("reopen");
    let received = reopened.snap_resume(head, total, image.len() as u64);
    assert!(
        received > 0 && received < total,
        "expected a partial assembly to survive the crash, got {received}/{total}"
    );

    // A fresh pump resumes the transfer mid-image and finishes it.
    let follower = Arc::new(Mutex::new(reopened));
    let mut pump = MemberPump::new(
        shared,
        "joiner",
        follower.clone(),
        &primary_dir,
        cfg,
        tracker.clone(),
    );
    drive_to_idle(&mut pump);
    let f = follower.lock().unwrap();
    assert_eq!(f.next_lsn(), head, "joiner caught up to the head");
    let st = tracker.status("joiner").unwrap();
    assert_eq!(st.snapshots, 1, "exactly one completed snapshot bootstrap");
    assert_eq!(
        commit.quorum_lsn(),
        head,
        "the caught-up joiner's acks formed the quorum"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Live membership on the served group: a join bootstraps the learner
/// through the pump's chunked snapshot and promotes it only at the
/// quorum watermark; overlapping and duplicate changes are typed
/// refusals; and removing the *freshest* member immediately re-routes
/// bounded reads to the next-freshest — no spurious `stale` refusal.
#[test]
fn live_join_and_leave_reconfigure_the_served_group() {
    let dir = tmp("livejoin");
    let workload = generate(13, 8);
    let records = ops(&workload);
    assert!(records.len() >= 5);
    let loopback = NetAddr::parse("127.0.0.1:0").unwrap();
    let mut cluster = LocalCluster::start(
        &dir,
        workload.seed_schema.clone(),
        &loopback,
        &[
            ("m1".to_string(), loopback.clone()),
            ("m2".to_string(), loopback.clone()),
        ],
        // Tiny segments so the pre-join checkpoint genuinely prunes
        // the tail — the joiner must take the snapshot path.
        Options {
            segment_bytes: 128,
            policy: CheckpointPolicy::manual(),
            prune_on_checkpoint: true,
        },
        GroupConfig::default(),
        ServerOptions {
            quorum_timeout_ms: 2_000,
            ..ServerOptions::default()
        },
        NetConfig::default(),
    )
    .expect("cluster starts");
    cluster.spawn_pumps(PumpConfig {
        snap_chunk_bytes: 64,
        ..PumpConfig::default()
    });
    let mut client = cluster.client(NetConfig::default());
    for r in records.iter().take(3) {
        client.commit(r).expect("quorum commit");
    }
    // Prune the tail so the joiner must bootstrap via the pump's
    // chunked snapshot, not a frame replay from LSN 1.
    cluster
        .group()
        .with_store_mut(|s| s.checkpoint())
        .expect("checkpoint");
    let oldest = cluster
        .group()
        .with_store(|s| s.oldest_lsn())
        .expect("oldest");
    assert!(
        oldest > 1,
        "sealed segments must have pruned, oldest={oldest}"
    );

    // A duplicate add for an existing member id is a typed refusal.
    match cluster.join("m1", &loopback) {
        Err(ServerError::Commit(m)) => assert!(m.contains("already a member"), "{m}"),
        other => panic!("duplicate join accepted: {other:?}"),
    }

    let join_lsn = cluster.join("m3", &loopback).expect("join journaled");
    // A second change while this one is in flight is refused with the
    // typed in-flight error.
    match cluster.join("m4", &loopback) {
        Err(ServerError::Commit(m)) => {
            assert!(m.contains("reconfiguration is already in flight"), "{m}")
        }
        other => panic!("overlapping join accepted: {other:?}"),
    }
    let promoted = cluster
        .await_membership(std::time::Duration::from_secs(20))
        .expect("joiner catches up and is promoted");
    assert_eq!(promoted, "m3");
    assert!(
        cluster.membership().iter().any(|(n, l)| n == "m3" && !l),
        "m3 is a voter after catch-up"
    );
    let snap_bootstraps = cluster
        .pump_status()
        .iter()
        .find(|(n, _)| n == "m3")
        .map_or(0, |(_, st)| st.snapshots);
    assert!(
        snap_bootstraps >= 1,
        "the joiner bootstrapped via the pump-shipped snapshot"
    );
    assert!(
        cluster.group().quorum_lsn() > join_lsn,
        "the reconfig record itself is quorum-committed"
    );

    // Commit with the grown group, then drop the freshest member —
    // the read must re-route to the next-freshest immediately.
    let lsn = client
        .commit(&records[3])
        .expect("commit under 4-node group");
    let query = "SELECT sum(Amount) BY year IN MODE tcm";
    client.read_at(lsn, query).expect("bounded read pre-remove");
    cluster.leave("m3").expect("leave journaled");
    cluster
        .await_membership(std::time::Duration::from_secs(20))
        .expect("remove quorum-commits under the shrunk group");
    client
        .read_at(lsn, query)
        .expect("read re-routed to the next-freshest member, not refused");
    // The shrunk group still quorums: primary + m1 + m2, majority 2.
    client
        .commit(&records[4])
        .expect("commit under shrunk group");

    // Removing a non-member is a typed refusal.
    match cluster.leave("m3") {
        Err(ServerError::Commit(m)) => assert!(m.contains("not a member"), "{m}"),
        other => panic!("double leave accepted: {other:?}"),
    }
    cluster.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression (bounded parking): a pump thread parked on
/// `wait_synced_past` under a `ManualClock` — its member effectively
/// vanished, nothing will ever advance the commit — must still
/// observe `PumpThread::stop` promptly, because every park is bounded
/// by the retry deadline rather than the idle interval.
#[test]
fn pump_thread_stop_interrupts_parked_wait() {
    let dir = tmp("parkstop");
    let workload = generate(19, 4);
    let primary_dir = dir.join("primary");
    let store = DurableTmd::create_with(
        &primary_dir,
        workload.seed_schema.clone(),
        opts(),
        Io::plain(),
    )
    .unwrap();
    let commit = GroupCommit::new(store, group_cfg());
    for r in ops(&workload).into_iter().take(2) {
        commit.commit(r).unwrap();
    }
    let follower = Arc::new(Mutex::new(Follower::create(
        "ghost",
        dir.join("ghost"),
        opts(),
        Io::plain(),
    )));
    // A pathological idle interval: without the retry-deadline bound
    // the park would sleep this long and shutdown would hang with it.
    let cfg = PumpConfig {
        idle_wait_ms: 600_000,
        retry_wait_ms: 10,
        ..PumpConfig::default()
    };
    let shared = PumpShared::new(commit.clone(), 0);
    let tracker = PumpTracker::new();
    let pump = MemberPump::new(
        shared,
        "ghost",
        follower,
        &primary_dir,
        cfg,
        tracker.clone(),
    );
    let mut thread = pump.spawn();
    // Let the engine catch the member up and park idle.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if tracker
            .status("ghost")
            .is_some_and(|st| st.state == PumpState::Idle)
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pump never went idle: {:?}",
            tracker.status("ghost")
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let t0 = std::time::Instant::now();
    thread.stop();
    thread.join();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "stop() took {:?} — the park is not bounded",
        t0.elapsed()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression (status honesty): a pump halted by `stop()` must report
/// the typed `Stopped` state in the tracker — not linger as `Idle`,
/// which would read as a healthy caught-up member in `\status` output
/// long after the shipping thread is gone.
#[test]
fn stopped_pump_reports_stopped_not_idle() {
    let dir = tmp("stopstate");
    let workload = generate(23, 4);
    let primary_dir = dir.join("primary");
    let store = DurableTmd::create_with(
        &primary_dir,
        workload.seed_schema.clone(),
        opts(),
        Io::plain(),
    )
    .unwrap();
    let commit = GroupCommit::new(store, group_cfg());
    for r in ops(&workload).into_iter().take(2) {
        commit.commit(r).unwrap();
    }
    let follower = Arc::new(Mutex::new(Follower::create(
        "ghost",
        dir.join("ghost"),
        opts(),
        Io::plain(),
    )));
    let shared = PumpShared::new(commit.clone(), 0);
    let tracker = PumpTracker::new();
    let pump = MemberPump::new(
        shared,
        "ghost",
        follower,
        &primary_dir,
        PumpConfig::default(),
        tracker.clone(),
    );
    let mut thread = pump.spawn();
    // Let it catch the member up and go idle, so the regression is
    // exactly Idle -> stop -> must read Stopped.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if tracker
            .status("ghost")
            .is_some_and(|st| st.state == PumpState::Idle)
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pump never went idle: {:?}",
            tracker.status("ghost")
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    thread.stop();
    thread.join();
    let status = tracker.status("ghost").expect("tracker keeps the member");
    assert_eq!(
        status.state,
        PumpState::Stopped,
        "a halted pump must not masquerade as Idle"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Session spread across the fleet: with shipping threads keeping the
/// members at the quorum watermark, a plain `query` against the
/// primary is forwarded to a member read server — visible in the
/// pool's `forwarded` counter — and the forwarded rendering is
/// bit-identical to what the primary itself produces for the same
/// query. Commits meanwhile never leave the primary.
#[test]
fn fleet_spread_sessions_forward_queries_bit_identically() {
    let dir = tmp("spread");
    let workload = generate(11, 5);
    let records = ops(&workload);
    let loopback = NetAddr::parse("127.0.0.1:0").unwrap();
    let mut cluster = LocalCluster::start(
        &dir,
        workload.seed_schema.clone(),
        &loopback,
        &[
            ("m1".to_string(), loopback.clone()),
            ("m2".to_string(), loopback.clone()),
        ],
        opts(),
        GroupConfig::default(),
        ServerOptions {
            // Generous quorum window: this test runs alongside the
            // whole suite and a slow shipping round must not read as
            // an Unreplicated refusal.
            quorum_timeout_ms: 30_000,
            ..ServerOptions::default()
        },
        NetConfig::default(),
    )
    .expect("cluster starts");
    cluster.spawn_pumps(PumpConfig::default());

    let mut client = cluster.client(NetConfig::default());
    let mut head = 0;
    for r in records.iter().take(3) {
        head = client.commit(r).expect("quorum commit");
    }
    // Quorum needs one member; spreading wants a *specific* (pinned)
    // member. Wait until both members acked the head so the routing
    // decision below is deterministic.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let positions = cluster.group().member_positions();
        let caught_up = ["m1", "m2"].iter().all(|m| {
            positions
                .iter()
                .any(|(n, p)| n == m && p.saturating_sub(1) >= head)
        });
        if caught_up {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "members never caught up: {positions:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    const Q: &str = "SELECT sum(Amount) BY year IN MODE tcm";
    let served = client.query(Q).expect("query served");
    assert_eq!(
        served,
        client.query(Q).expect("repeat query served"),
        "spread routing must be stable across a session's requests"
    );

    // The primary's own rendering of the same query, straight off the
    // group-committed store — spreading must not change a byte. (All
    // quorum-acked commits are applied on the forwarding target, and
    // nothing commits concurrently here, so the states coincide.)
    let local = cluster.group().with_store(|s| {
        let svs = s.schema().structure_versions();
        let exec = mvolap_core::ExecContext::new(2);
        let memo = mvolap_core::QueryMemo::new();
        mvolap_query::run_with_versions_par(s.schema(), &svs, Q, &exec, &memo)
            .unwrap()
            .render("result")
            .unwrap()
    });
    assert!(
        served.contains(local.trim_end()) || served.trim_end() == local.trim_end(),
        "forwarded rendering diverged from the primary's:\n--- served\n{served}\n--- local\n{local}"
    );

    let stats = cluster.primary_stats();
    assert!(
        stats.forwarded >= 1,
        "queries must spread across the fleet: {stats:?}"
    );
    assert!(stats.served >= 5, "commits + queries counted: {stats:?}");
    drop(cluster);
    std::fs::remove_dir_all(&dir).ok();
}
