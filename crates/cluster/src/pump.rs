//! Asynchronous replication pump: per-member shipping engines that
//! tail the primary's WAL, ship **batched** frame envelopes, collect
//! quorum acks and feed [`GroupCommit::member_synced`] continuously —
//! so `commit_replicated` waiters wake on the condvar the moment a
//! majority covers their LSN, instead of paying a caller's pump
//! interval.
//!
//! # Shape
//!
//! One [`MemberPump`] per member. Its engine is the synchronous
//! [`MemberPump::step`] — the injectable hook: deterministic tests
//! (and the fault sweeps' single-stepped world) call it directly
//! under a [`TimeSource::Manual`] timeline, while
//! [`MemberPump::spawn`] wraps the same engine in a dedicated thread
//! that parks on [`GroupCommit::wait_synced_past`] between commits.
//! Each step:
//!
//! 1. **Delivers** any in-flight envelopes whose member is free
//!    (`try_lock` — a busy member never blocks the pump), decoding
//!    the wire envelope, applying frames, and reporting the member's
//!    quorum ack into the tracker.
//! 2. **Ships** new work: fetches fsynced frames from the primary's
//!    log ([`WalTailer::fetch_budget`] — never past the durable
//!    watermark, so a member cannot ack a record the primary could
//!    still lose), packs them as multiple `frames` messages inside
//!    one `batch` wire envelope ([`encode_batch`] — many WAL frames
//!    per request/reply round-trip), and queues the envelope in the
//!    in-flight window.
//!
//! # Backpressure
//!
//! The in-flight window is bounded in frames **and** payload bytes
//! ([`PumpConfig::max_inflight_frames`] /
//! [`PumpConfig::max_inflight_bytes`]). A member that stops acking
//! caps the window: the pump reports [`PumpState::Blocked`] via its
//! [`PumpTracker`] and fetches nothing more — a slow member costs
//! bounded memory, never an unbounded queue. When the member heals,
//! delivery drains the window and shipping resumes.
//!
//! # Fencing
//!
//! Pumps serve exactly one primary epoch. [`PumpShared::fence`] (the
//! election path deposing this primary) flips a flag every step
//! checks first: a fenced pump drops its in-flight window and ships
//! nothing further. The member side is independently safe — a stale
//! epoch in a delivered envelope is refused by the member's own epoch
//! check — but the pump stops at the source. A pump can also *learn*
//! it is deposed from the member: an ack or refusal carrying a higher
//! epoch parks it in [`PumpState::Fenced`] the same way. The new
//! primary's pumps, built at the higher epoch, take over shipping.

use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, TryLockError};
use std::thread::JoinHandle;
use std::time::Duration;

use mvolap_durable::{GroupCommit, TimeSource};
use mvolap_replica::{
    decode_batch, encode_batch, Follower, ReplicaError, ReplicaMsg, TailSource, WalTailer,
};

/// Tuning for one member's shipping engine.
#[derive(Debug, Clone)]
pub struct PumpConfig {
    /// Frames per `frames` message inside a shipped envelope. One
    /// envelope may carry several such messages, up to the window.
    pub max_batch_frames: usize,
    /// In-flight window cap in frames: shipped-but-unacked frames
    /// never exceed this.
    pub max_inflight_frames: usize,
    /// In-flight window cap in cumulative payload bytes. A single
    /// frame larger than the cap still ships alone (progress
    /// guarantee).
    pub max_inflight_bytes: usize,
    /// Chunk size for pump-shipped snapshots: a pruned-tail bootstrap
    /// ships the covering checkpoint as `snap` chunks of at most this
    /// many bytes, windowed like frames and resumable after a
    /// disconnect from the member's last durable chunk.
    pub snap_chunk_bytes: usize,
    /// How long the pump thread parks waiting for new commits before
    /// re-checking its stop flag, in wall-clock milliseconds.
    pub idle_wait_ms: u64,
    /// Backoff after a stalled round (member store error), measured
    /// on `time`.
    pub retry_wait_ms: u64,
    /// Timeline for stall backoff. Manual makes every retry decision
    /// harness-driven — the deterministic-test hook.
    pub time: TimeSource,
}

impl Default for PumpConfig {
    fn default() -> PumpConfig {
        PumpConfig {
            max_batch_frames: 64,
            max_inflight_frames: 256,
            max_inflight_bytes: 1 << 20,
            snap_chunk_bytes: 64 << 10,
            idle_wait_ms: 25,
            retry_wait_ms: 50,
            time: TimeSource::System,
        }
    }
}

/// Where one member's pump is in its lifecycle — the typed state the
/// tracker exposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PumpState {
    /// Caught up; nothing in flight, nothing to ship.
    Idle,
    /// Actively shipping or delivering.
    Shipping,
    /// The in-flight window is full (or the member is busy) — the
    /// backpressure state. Nothing more is fetched until acks drain.
    Blocked,
    /// The member errored; the pump dropped its window and retries
    /// after the configured backoff.
    Stalled {
        /// The member's error, verbatim.
        reason: String,
    },
    /// This pump's primary was deposed; the pump ships nothing and
    /// stays parked until stopped.
    Fenced {
        /// The epoch that fenced it.
        epoch: u64,
    },
    /// Shutdown observed.
    Stopped,
}

/// One member's counters and gauges, published through the tracker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberPumpStatus {
    /// Lifecycle state after the last step.
    pub state: PumpState,
    /// The member's last reported durably-synced position (next-LSN
    /// convention), as fed to [`GroupCommit::member_synced`].
    pub acked_lsn: u64,
    /// WAL frames shipped (queued onto the wire) so far.
    pub shipped_frames: u64,
    /// Wire envelopes shipped — each is one request.
    pub requests: u64,
    /// Ack envelopes received — each is one reply.
    pub replies: u64,
    /// Snapshot bootstraps shipped.
    pub snapshots: u64,
    /// Stalled rounds observed.
    pub stalls: u64,
    /// Frames currently in flight (shipped, unacked).
    pub inflight_frames: usize,
    /// Payload bytes currently in flight.
    pub inflight_bytes: usize,
}

impl Default for MemberPumpStatus {
    fn default() -> MemberPumpStatus {
        MemberPumpStatus {
            state: PumpState::Idle,
            acked_lsn: 0,
            shipped_frames: 0,
            requests: 0,
            replies: 0,
            snapshots: 0,
            stalls: 0,
            inflight_frames: 0,
            inflight_bytes: 0,
        }
    }
}

/// Shared, cloneable view of every member pump's state and counters.
#[derive(Debug, Clone, Default)]
pub struct PumpTracker {
    members: Arc<Mutex<BTreeMap<String, MemberPumpStatus>>>,
}

impl PumpTracker {
    /// A fresh tracker with no members.
    #[must_use]
    pub fn new() -> PumpTracker {
        PumpTracker::default()
    }

    /// One member's status, or `None` before its pump's first step.
    #[must_use]
    pub fn status(&self, member: &str) -> Option<MemberPumpStatus> {
        plock(&self.members).get(member).cloned()
    }

    /// Every member's status, in member order.
    #[must_use]
    pub fn all(&self) -> Vec<(String, MemberPumpStatus)> {
        plock(&self.members)
            .iter()
            .map(|(n, s)| (n.clone(), s.clone()))
            .collect()
    }

    /// Total wire steps across all members: one per shipped envelope
    /// (request) plus one per ack (reply) — the batching yardstick
    /// the quorum bench reports as transport steps per commit.
    #[must_use]
    pub fn transport_steps(&self) -> u64 {
        plock(&self.members)
            .values()
            .map(|s| s.requests + s.replies)
            .sum()
    }

    fn update(&self, member: &str, f: impl FnOnce(&mut MemberPumpStatus)) {
        f(plock(&self.members).entry(member.to_string()).or_default());
    }
}

/// State shared by every pump serving one primary at one epoch: the
/// group-commit handle, the epoch envelopes are stamped with, and the
/// fence/stop flags the steps check first.
#[derive(Debug)]
pub struct PumpShared {
    commit: GroupCommit,
    epoch: AtomicU64,
    fenced: AtomicBool,
    stop: AtomicBool,
}

impl PumpShared {
    /// Shared state for pumps of `commit`'s primary at `epoch`.
    #[must_use]
    pub fn new(commit: GroupCommit, epoch: u64) -> Arc<PumpShared> {
        Arc::new(PumpShared {
            commit,
            epoch: AtomicU64::new(epoch),
            fenced: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        })
    }

    /// The primary's group-commit handle.
    #[must_use]
    pub fn commit(&self) -> &GroupCommit {
        &self.commit
    }

    /// The epoch envelopes are currently stamped with.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Fences every pump sharing this state: the primary was deposed
    /// by `epoch`. Steps in flight finish their current envelope at
    /// most; nothing further ships, and parked threads are woken so
    /// they observe the fence immediately.
    pub fn fence(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::SeqCst);
        self.fenced.store(true, Ordering::SeqCst);
        self.commit.notify_waiters();
    }

    /// Whether [`PumpShared::fence`] was called.
    #[must_use]
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    /// Asks every pump sharing this state to stop, waking parked
    /// threads. The threads exit on their next step; join them via
    /// [`PumpThread::join`].
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.commit.notify_waiters();
    }

    /// Whether [`PumpShared::request_stop`] was called.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// What one [`MemberPump::step`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PumpStep {
    /// Shutdown observed; a pump thread exits on this.
    Stopped,
    /// The primary is deposed (locally fenced, or the member reported
    /// a higher epoch); the in-flight window was dropped.
    Fenced {
        /// The fencing epoch.
        epoch: u64,
    },
    /// Frames moved: shipped onto the window and/or acked by the
    /// member.
    Progress {
        /// Frames newly shipped this step.
        shipped: usize,
        /// Frames newly acknowledged this step.
        acked: usize,
    },
    /// The window is at its cap (or the member is busy) and nothing
    /// could be delivered — the backpressure signal.
    Blocked {
        /// Frames currently in flight.
        inflight: usize,
    },
    /// The member errored; window dropped, retry after backoff.
    Stalled {
        /// The member's error, verbatim.
        reason: String,
    },
    /// A stalled pump still inside its backoff window.
    Backoff,
    /// Caught up: nothing in flight, nothing new to ship.
    Idle,
}

/// A shipped-but-unacked wire envelope in the in-flight window.
#[derive(Debug)]
struct Envelope {
    wire: Vec<u8>,
    frames: usize,
    bytes: usize,
}

/// Progress through a chunked snapshot transfer: the image identity
/// and the next chunk to ship. Dropped on stall or fence — resumption
/// re-derives the position from the member's own durable chunk count.
#[derive(Debug)]
struct SnapCursor {
    next_lsn: u64,
    total_bytes: u64,
    next_seq: u64,
}

/// One member's shipping engine. [`MemberPump::step`] is synchronous
/// and deterministic given the [`TimeSource`]; [`MemberPump::spawn`]
/// runs it on a dedicated thread.
pub struct MemberPump {
    shared: Arc<PumpShared>,
    name: String,
    follower: Arc<Mutex<Follower>>,
    tailer: WalTailer,
    cfg: PumpConfig,
    tracker: PumpTracker,
    inflight: VecDeque<Envelope>,
    inflight_frames: usize,
    inflight_bytes: usize,
    /// Next LSN to fetch for shipping; `None` means re-derive from
    /// the member (first step, or recovery after a stall dropped the
    /// window).
    cursor: Option<u64>,
    /// Chunked snapshot transfer in progress, if any.
    snap_cursor: Option<SnapCursor>,
    /// Timeline instant before which a stalled pump must not retry.
    retry_at: Option<u64>,
    /// Per-pump stop flag, in addition to the shared one — lets a
    /// single member's pump be halted (removal) without stopping the
    /// rest of the fleet.
    halt: Arc<AtomicBool>,
}

impl MemberPump {
    /// A pump shipping `primary_dir`'s log to `follower` on behalf of
    /// member `name`, publishing into `tracker`.
    #[must_use]
    pub fn new(
        shared: Arc<PumpShared>,
        name: impl Into<String>,
        follower: Arc<Mutex<Follower>>,
        primary_dir: &Path,
        cfg: PumpConfig,
        tracker: PumpTracker,
    ) -> MemberPump {
        MemberPump {
            shared,
            name: name.into(),
            follower,
            tailer: WalTailer::new(primary_dir),
            cfg,
            tracker,
            inflight: VecDeque::new(),
            inflight_frames: 0,
            inflight_bytes: 0,
            cursor: None,
            snap_cursor: None,
            retry_at: None,
            halt: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The member this pump serves.
    #[must_use]
    pub fn member(&self) -> &str {
        &self.name
    }

    /// The tracker this pump publishes into.
    #[must_use]
    pub fn tracker(&self) -> &PumpTracker {
        &self.tracker
    }

    /// One engine turn: deliver what the member will take, then ship
    /// what the window allows. This is the injectable step hook —
    /// deterministic harnesses call it directly; [`MemberPump::spawn`]
    /// loops it on a thread.
    pub fn step(&mut self) -> PumpStep {
        if self.shared.stop_requested() || self.halt.load(Ordering::SeqCst) {
            self.set_state(PumpState::Stopped);
            return PumpStep::Stopped;
        }
        if self.shared.is_fenced() {
            return self.fenced(self.shared.epoch());
        }
        if let Some(at) = self.retry_at {
            if self.cfg.time.now_ms() < at {
                return PumpStep::Backoff;
            }
            self.retry_at = None;
        }

        // Phase 1 — deliver: drain in-flight envelopes while the
        // member is free. try_lock: a member busy serving a long read
        // (or deliberately wedged in a test) never blocks this
        // thread; its envelopes simply stay queued, which is what
        // caps the window below.
        let follower = Arc::clone(&self.follower);
        let mut acked = 0usize;
        let mut busy = false;
        while let Some(env) = self.inflight.pop_front() {
            match follower.try_lock() {
                Err(TryLockError::WouldBlock) => {
                    self.inflight.push_front(env);
                    busy = true;
                    break;
                }
                Err(TryLockError::Poisoned(_)) => {
                    self.inflight.push_front(env);
                    return self.stalled("member mutex poisoned".to_string());
                }
                Ok(mut f) => match deliver(&mut f, &env.wire) {
                    Ok(ack) => {
                        drop(f);
                        self.inflight_frames -= env.frames;
                        self.inflight_bytes -= env.bytes;
                        acked += env.frames;
                        self.acked(&ack);
                        if ack.epoch > self.shared.epoch() {
                            return self.fenced(ack.epoch);
                        }
                    }
                    Err(ReplicaError::Fenced { epoch }) => {
                        drop(f);
                        return self.fenced(epoch);
                    }
                    Err(e) => {
                        drop(f);
                        return self.stalled(e.to_string());
                    }
                },
            }
        }

        // Phase 2 — ship: pack every fsynced frame the window still
        // has room for into ONE wire envelope (`batch` of `frames`
        // messages), so a whole window moves per request/reply
        // round-trip. Shipping is bounded by the primary's durable
        // watermark — frames are eligible only once their fsync
        // completed, which both makes the concurrent file read safe
        // and keeps members from acking records the primary could
        // still lose.
        let head = self.shared.commit.synced_lsn();
        let cursor = match self.cursor {
            Some(c) => Some(c),
            None => match follower.try_lock() {
                Ok(f) => {
                    let c = f.next_lsn();
                    self.cursor = Some(c);
                    Some(c)
                }
                Err(TryLockError::WouldBlock) => {
                    busy = true;
                    None
                }
                Err(TryLockError::Poisoned(_)) => {
                    return self.stalled("member mutex poisoned".to_string())
                }
            },
        };
        let mut shipped = 0usize;
        let mut snapshot = false;
        let mut snap_done = false;
        if let Some(mut cur) = cursor {
            let mut msgs: Vec<ReplicaMsg> = Vec::new();
            let mut env_frames = 0usize;
            let mut env_bytes = 0usize;
            while cur < head && !snapshot {
                let queued_frames = self.inflight_frames + env_frames;
                let queued_bytes = self.inflight_bytes + env_bytes;
                let frame_room = self
                    .cfg
                    .max_batch_frames
                    .min(self.cfg.max_inflight_frames.saturating_sub(queued_frames));
                let byte_room = self.cfg.max_inflight_bytes.saturating_sub(queued_bytes);
                if frame_room == 0 || (byte_room == 0 && queued_frames > 0) {
                    break; // Window full — backpressure.
                }
                match self
                    .tailer
                    .fetch_budget(cur, head, frame_room, byte_room.max(1))
                {
                    Ok(TailSource::Frames(frames)) if frames.is_empty() => break,
                    Ok(TailSource::Frames(frames)) => {
                        env_frames += frames.len();
                        env_bytes += frames.iter().map(|f| f.payload.len()).sum::<usize>();
                        cur = frames.last().expect("non-empty").lsn + 1;
                        msgs.push(ReplicaMsg::Frames {
                            epoch: self.shared.epoch(),
                            frames,
                        });
                    }
                    Ok(TailSource::Snapshot {
                        next_lsn,
                        snapshot: image,
                    }) => {
                        // The member's cursor is below the pruned log:
                        // the covering checkpoint ships through the
                        // pump itself as resumable `snap` chunks,
                        // replacing any frame messages packed so far.
                        // The window caps how much of the image one
                        // envelope carries; an unfinished image keeps
                        // the cursor below the prune point so the next
                        // step picks up exactly where this one left
                        // off (or, after a disconnect, where the
                        // member's durable chunk count says to).
                        msgs.clear();
                        env_frames = 0;
                        env_bytes = 0;
                        let chunk_bytes = self.cfg.snap_chunk_bytes.max(1);
                        let total = (image.len().div_ceil(chunk_bytes) as u64).max(1);
                        let total_bytes = image.len() as u64;
                        let resume_from = match &self.snap_cursor {
                            Some(sc)
                                if (sc.next_lsn, sc.total_bytes) == (next_lsn, total_bytes) =>
                            {
                                sc.next_seq
                            }
                            _ => match follower.try_lock() {
                                Ok(f) => f.snap_resume(next_lsn, total, total_bytes),
                                Err(TryLockError::WouldBlock) => {
                                    busy = true;
                                    break;
                                }
                                Err(TryLockError::Poisoned(_)) => {
                                    return self.stalled("member mutex poisoned".to_string())
                                }
                            },
                        };
                        let byte_room = self
                            .cfg
                            .max_inflight_bytes
                            .saturating_sub(self.inflight_bytes)
                            .max(chunk_bytes);
                        let mut seq = resume_from;
                        while seq < total && env_bytes < byte_room {
                            let start = usize::try_from(seq)
                                .unwrap_or(usize::MAX)
                                .saturating_mul(chunk_bytes);
                            let end = image.len().min(start.saturating_add(chunk_bytes));
                            let chunk = image[start.min(image.len())..end].to_vec();
                            env_bytes += chunk.len();
                            msgs.push(ReplicaMsg::SnapChunk {
                                epoch: self.shared.epoch(),
                                next_lsn,
                                seq,
                                total,
                                total_bytes,
                                chunk,
                            });
                            seq += 1;
                        }
                        if seq >= total {
                            // Final chunk shipped: the member installs
                            // and tails from `next_lsn`.
                            cur = next_lsn;
                            self.snap_cursor = None;
                            snap_done = true;
                        } else {
                            self.snap_cursor = Some(SnapCursor {
                                next_lsn,
                                total_bytes,
                                next_seq: seq,
                            });
                        }
                        snapshot = true;
                    }
                    Err(e) => return self.stalled(e.to_string()),
                }
            }
            if !msgs.is_empty() {
                self.inflight.push_back(Envelope {
                    wire: encode_batch(&msgs),
                    frames: env_frames,
                    bytes: env_bytes,
                });
                self.inflight_frames += env_frames;
                self.inflight_bytes += env_bytes;
                self.cursor = Some(cur);
                shipped = env_frames;
                self.tracker.update(&self.name, |s| {
                    s.requests += 1;
                    s.shipped_frames += env_frames as u64;
                    if snap_done {
                        s.snapshots += 1;
                    }
                });
            }
        }

        self.publish_gauges();
        if shipped > 0 || acked > 0 || snapshot {
            self.set_state(PumpState::Shipping);
            PumpStep::Progress { shipped, acked }
        } else if !self.inflight.is_empty() || busy {
            // Undelivered envelopes (member busy or window at cap):
            // the typed backpressure state.
            self.set_state(PumpState::Blocked);
            PumpStep::Blocked {
                inflight: self.inflight_frames,
            }
        } else {
            self.set_state(PumpState::Idle);
            PumpStep::Idle
        }
    }

    /// The LSN the pump would fetch next — the wait cursor for the
    /// thread loop's park.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor.unwrap_or(0)
    }

    /// Wraps the engine in a dedicated shipping thread: step, then
    /// park on [`GroupCommit::wait_synced_past`] when idle (woken by
    /// the next commit's fsync or by stop/fence), short real-time
    /// sleeps when blocked or stalled.
    #[must_use]
    pub fn spawn(mut self) -> PumpThread {
        let member = self.name.clone();
        let shared = self.shared.clone();
        let thread_shared = Arc::clone(&shared);
        let halt = Arc::clone(&self.halt);
        let idle = Duration::from_millis(self.cfg.idle_wait_ms.max(1));
        let retry = Duration::from_millis(self.cfg.retry_wait_ms.clamp(1, 25));
        // The idle park is bounded by the retry deadline as well as
        // the idle wait: a stop (shared or per-pump) that races past
        // the parked thread's flag check — e.g. the member vanished
        // during shutdown, so no further ack will ever notify — still
        // gets re-checked within one retry window, never an unbounded
        // park.
        let park = idle.min(retry);
        let handle = std::thread::Builder::new()
            .name(format!("pump-{member}"))
            .spawn(move || loop {
                match self.step() {
                    PumpStep::Stopped => break,
                    PumpStep::Progress { .. } => {}
                    PumpStep::Idle => {
                        // Park until the next commit's fsync pushes the
                        // durable watermark past our cursor (or stop /
                        // fence notifies).
                        let cur = self.cursor();
                        thread_shared.commit().wait_synced_past(cur, park);
                    }
                    PumpStep::Blocked { .. } => std::thread::sleep(Duration::from_millis(1)),
                    PumpStep::Stalled { .. } | PumpStep::Backoff => std::thread::sleep(retry),
                    PumpStep::Fenced { .. } => {
                        // Fencing is permanent for this pump; stay
                        // parked until stopped.
                        std::thread::sleep(park);
                    }
                }
            })
            .expect("spawn pump thread");
        PumpThread {
            member,
            shared,
            halt,
            handle: Some(handle),
        }
    }

    fn acked(&mut self, ack: &PumpAck) {
        // Clamp at the primary's own head: a member cannot vouch for
        // records the primary never wrote (forged-ack defense, same
        // clamp the deterministic supervisor applies).
        let head = self.shared.commit.wal_position();
        let synced = ack.synced_lsn.min(head);
        self.shared.commit.member_synced(&self.name, synced);
        self.tracker.update(&self.name, |s| {
            s.replies += 1;
            s.acked_lsn = s.acked_lsn.max(synced);
        });
    }

    fn fenced(&mut self, epoch: u64) -> PumpStep {
        self.drop_window();
        self.snap_cursor = None;
        self.set_state(PumpState::Fenced { epoch });
        self.publish_gauges();
        PumpStep::Fenced { epoch }
    }

    fn stalled(&mut self, reason: String) -> PumpStep {
        self.drop_window();
        // The member's position is unknown after an error; re-derive
        // the cursor (and any snapshot transfer position — the member
        // keeps its received chunks durably) from its store on
        // recovery.
        self.cursor = None;
        self.snap_cursor = None;
        self.retry_at = Some(self.cfg.time.now_ms() + self.cfg.retry_wait_ms);
        self.tracker.update(&self.name, |s| s.stalls += 1);
        self.set_state(PumpState::Stalled {
            reason: reason.clone(),
        });
        self.publish_gauges();
        PumpStep::Stalled { reason }
    }

    fn drop_window(&mut self) {
        self.inflight.clear();
        self.inflight_frames = 0;
        self.inflight_bytes = 0;
    }

    fn set_state(&self, state: PumpState) {
        self.tracker.update(&self.name, |s| s.state = state);
    }

    fn publish_gauges(&self) {
        let (frames, bytes) = (self.inflight_frames, self.inflight_bytes);
        self.tracker.update(&self.name, |s| {
            s.inflight_frames = frames;
            s.inflight_bytes = bytes;
        });
    }
}

/// The member's decoded quorum ack.
struct PumpAck {
    epoch: u64,
    synced_lsn: u64,
}

/// Delivers one wire envelope to the member and collects its quorum
/// ack — both directions through the real wire grammar, so every
/// batched envelope a pump ships is exactly what a remote member
/// would parse.
fn deliver(f: &mut Follower, wire: &[u8]) -> Result<PumpAck, ReplicaError> {
    for msg in decode_batch(wire)? {
        f.handle(msg)?;
    }
    let ack_wire = encode_batch(&[f.quorum_ack()]);
    match decode_batch(&ack_wire)?.pop() {
        Some(ReplicaMsg::QuorumAck {
            epoch, synced_lsn, ..
        }) => Ok(PumpAck { epoch, synced_lsn }),
        other => Err(ReplicaError::Protocol(format!(
            "expected a quorum ack, got {other:?}"
        ))),
    }
}

/// Join handle for a spawned pump thread. Stop it individually via
/// [`PumpThread::stop`] (membership removal) or fleet-wide via
/// [`PumpShared::request_stop`], then join.
pub struct PumpThread {
    member: String,
    shared: Arc<PumpShared>,
    halt: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl PumpThread {
    /// The member this thread ships to.
    #[must_use]
    pub fn member(&self) -> &str {
        &self.member
    }

    /// Halts this pump alone — the rest of the fleet keeps shipping.
    /// Wakes the thread if it is parked; the engine observes the flag
    /// on its next step. Join via [`PumpThread::join`].
    pub fn stop(&self) {
        self.halt.store(true, Ordering::SeqCst);
        self.shared.commit().notify_waiters();
    }

    /// Joins the thread (idempotent). Blocks until the engine
    /// observes a stop flag — call [`PumpThread::stop`] or
    /// [`PumpShared::request_stop`] first.
    pub fn join(&mut self) {
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

impl Drop for PumpThread {
    fn drop(&mut self) {
        self.join();
    }
}

fn plock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
