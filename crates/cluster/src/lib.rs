//! # mvolap-cluster — quorum-replicated commit and leader election
//!
//! Supervises a primary plus N members as one replication group with
//! majority-ack semantics on top of [`mvolap_replica`]:
//!
//! - **Quorum commit** ([`ClusterSet::commit_quorum`]): a commit is
//!   acknowledged only once it is fsynced locally *and* acked by a
//!   majority of the group (⌈(N+1)/2⌉ members, primary included). The
//!   `quorum_lsn` watermark is maintained by the group-commit layer
//!   ([`mvolap_durable::GroupCommit`]) and threaded up to sessions.
//! - **Deterministic election** ([`ClusterSet::elect`]): members vote
//!   for the candidate with the highest `(synced_lsn, member_id)`
//!   credential; the winner fences the deposed primary by bumping the
//!   epoch. Because a majority acked every quorum commit and the
//!   winner outranks a majority, the winner's log contains every
//!   acknowledged record — the winner never truncates.
//! - **Truncation on rejoin** ([`ClusterSet::rejoin_member`]): a
//!   deposed primary walks its log backwards against the new
//!   primary's, cuts everything past the last CRC match (its
//!   un-quorum'd suffix), and only then re-enters the group.
//! - **Fault sweep** ([`cluster_sweep`]): kills the primary at every
//!   I/O primitive and partitions a member at every transport step,
//!   asserting that no quorum-acknowledged commit is ever lost and no
//!   two primaries accept writes in the same epoch.
//! - **Async pump** ([`MemberPump`]): per-member shipping engines
//!   that tail the primary's WAL and ship batched frame envelopes
//!   with a bounded in-flight window; [`MemberPump::spawn`] runs one
//!   on a dedicated thread so commits stop paying a caller's pump
//!   interval, while [`MemberPump::step`] stays a synchronous hook
//!   deterministic tests drive directly.
//!
//! The supervisor is deterministic: no wall-clock, no threads — every
//! protocol step happens inside [`ClusterSet::tick`], which is what
//! makes the exhaustive sweep possible; threaded shipping lives only
//! in the pump/serving layer above it.

#![warn(missing_docs)]

pub mod pump;
pub mod serve;
pub mod set;
pub mod sweep;

pub use pump::{
    MemberPump, MemberPumpStatus, PumpConfig, PumpShared, PumpState, PumpStep, PumpThread,
    PumpTracker,
};
pub use serve::LocalCluster;
pub use set::{
    ClusterConfig, ClusterEvent, ClusterSet, ClusterStats, PendingReconfig, QuorumPrimary,
    RejoinOutcome,
};
pub use sweep::{cluster_sweep, membership_sweep, ClusterSweepOutcome, MembershipSweepOutcome};
