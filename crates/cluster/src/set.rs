//! The quorum supervisor: one primary plus N members form a
//! replication *group* whose commits are acknowledged only at
//! majority, whose leader is chosen by a deterministic election, and
//! whose deposed primaries rejoin by truncating their un-quorum'd
//! suffix.
//!
//! [`ClusterSet`] mirrors the shape of
//! [`mvolap_replica::ReplicaSet`] — single-threaded, transport-driven,
//! time counted in ticks — but replaces the plain acknowledgement flow
//! with the quorum envelope: members answer replication with
//! [`ReplicaMsg::QuorumAck`], the primary feeds each member's
//! durably-synced position into its [`GroupCommit`] watermark, and a
//! commit is *cluster-acknowledged* only once
//! [`GroupCommit::quorum_lsn`] passes it.
//!
//! # Election
//!
//! When the primary is lost, members vote for the candidate with the
//! highest `(synced_lsn, member_id)` credential — every voter ranks
//! candidates identically, so the election is deterministic. The
//! winner **never truncates**: a majority acknowledged every
//! quorum-committed record, and any two majorities intersect, so the
//! top-ranked member's log contains every acknowledged record. The
//! *loser's* obligation is the inverse: a deposed primary may hold a
//! locally-durable suffix that never reached quorum, and it must
//! truncate that suffix (back to the CRC match point against the new
//! primary's log) before it serves, votes or stands again — that is
//! [`ClusterSet::rejoin_member`].

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use mvolap_core::Tmd;
use mvolap_durable::{DurableError, DurableTmd, GroupCommit, GroupConfig, Io, Options, WalRecord};
use mvolap_replica::{Follower, ReplicaError, ReplicaMsg, ReplicaTransport, TailSource, WalTailer};

/// Inbox name the supervisor collects election replies on; never a
/// member name.
const SUPERVISOR: &str = "supervisor";

/// Supervision policy knobs for a quorum group.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Max frames shipped per round.
    pub batch_frames: usize,
    /// Leaderless supervision rounds before [`ClusterSet::tick`] calls
    /// an election on its own.
    pub heartbeat_miss_limit: u64,
    /// Supervision rounds [`ClusterSet::commit_quorum`] pumps while
    /// waiting for the watermark before declaring the commit
    /// unreplicated.
    pub commit_ticks: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            batch_frames: 32,
            heartbeat_miss_limit: 3,
            commit_ticks: 64,
        }
    }
}

/// The write-accepting node of a quorum group: a [`GroupCommit`] (so
/// server sessions can share it) plus the epoch/fencing discipline of
/// [`mvolap_replica::PrimaryNode`].
#[derive(Debug)]
pub struct QuorumPrimary {
    name: String,
    group: GroupCommit,
    epoch: u64,
    fenced: bool,
}

impl QuorumPrimary {
    /// Wraps a group-commit handle as primary at `epoch`.
    pub fn new(name: impl Into<String>, group: GroupCommit, epoch: u64) -> QuorumPrimary {
        QuorumPrimary {
            name: name.into(),
            group,
            epoch,
            fenced: false,
        }
    }

    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether this node has been fenced.
    pub fn is_fenced(&self) -> bool {
        self.fenced
    }

    /// The shared group-commit handle (clone it into server sessions).
    pub fn group(&self) -> &GroupCommit {
        &self.group
    }

    /// Store directory (the log the group tails).
    pub fn dir(&self) -> PathBuf {
        self.group.with_store(|s| s.dir().to_path_buf())
    }

    /// A tailer over this node's log.
    pub fn tailer(&self) -> WalTailer {
        WalTailer::new(self.dir())
    }

    /// Log head (next LSN).
    pub fn wal_position(&self) -> u64 {
        self.group.wal_position()
    }

    /// Highest LSN below which every record is majority-durable.
    pub fn quorum_lsn(&self) -> u64 {
        self.group.quorum_lsn()
    }

    /// Current schema, cloned out of the shared store.
    pub fn schema(&self) -> Tmd {
        self.group.with_store(|s| s.schema().clone())
    }

    /// Journals and locally fsyncs one record — refused once fenced.
    /// Quorum acknowledgement is the *supervisor's* business
    /// ([`ClusterSet::commit_quorum`]); this only establishes local
    /// durability.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Fenced`] after fencing; otherwise as
    /// [`GroupCommit::commit`].
    pub fn commit(&mut self, record: WalRecord) -> Result<u64, ReplicaError> {
        if self.fenced {
            return Err(ReplicaError::Fenced { epoch: self.epoch });
        }
        Ok(self.group.commit(record)?)
    }

    /// Checkpoints the store — refused once fenced.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Fenced`] after fencing; otherwise as
    /// [`DurableTmd::checkpoint`].
    pub fn checkpoint(&mut self) -> Result<(), ReplicaError> {
        if self.fenced {
            return Err(ReplicaError::Fenced { epoch: self.epoch });
        }
        self.group.with_store_mut(|s| s.checkpoint())?;
        Ok(())
    }

    /// Fences this node at `epoch`: every further write is refused.
    pub fn fence(&mut self, epoch: u64) {
        self.fenced = true;
        self.epoch = epoch;
    }

    /// Adopts a newer epoch without fencing — the supervisor re-asserts
    /// a standing primary after an aborted election, so members that
    /// granted a vote (and adopted the new epoch) accept its
    /// heartbeats again.
    pub fn adopt_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }
}

/// Supervisor's view of one member.
#[derive(Debug)]
struct MemberLink {
    follower: Follower,
    /// Highest applied LSN the member has quorum-acked.
    applied_lsn: u64,
    /// Highest durably-synced LSN the member has quorum-acked.
    synced_lsn: u64,
    /// The member's store crashed; needs [`ClusterSet::restart_member`].
    crashed: bool,
    /// The member refuses replay; needs [`ClusterSet::rebuild_member`].
    refusing: bool,
    /// A joining member catching up: replicated to, but not counted
    /// for quorum and barred from elections until its synced position
    /// reaches the quorum watermark (catch-up-before-vote).
    learner: bool,
}

impl MemberLink {
    fn new(follower: Follower) -> MemberLink {
        MemberLink {
            follower,
            applied_lsn: 0,
            synced_lsn: 0,
            crashed: false,
            refusing: false,
            learner: false,
        }
    }

    fn votable(&self) -> bool {
        !self.crashed && !self.refusing && !self.learner
    }
}

/// The single in-flight membership change — one add *or* one remove
/// at a time. An add completes when the learner is promoted to voter;
/// a remove completes when its journaled record is quorum-committed
/// under the shrunk group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingReconfig {
    /// LSN of the journaled `Reconfig` record.
    pub lsn: u64,
    /// `true` = add, `false` = remove.
    pub add: bool,
    /// The member joining or leaving.
    pub member: String,
    /// The joiner's address (empty for a remove).
    pub addr: String,
}

/// Noteworthy state changes surfaced by one [`ClusterSet::tick`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterEvent {
    /// The member's store hit an I/O-class failure.
    MemberCrashed {
        /// Node name.
        node: String,
    },
    /// The member refuses replay (divergence or invalid record).
    MemberRefused {
        /// Node name.
        node: String,
        /// Human-readable refusal.
        detail: String,
    },
    /// A leaderless group elected `node` primary at `epoch`.
    Elected {
        /// The winner.
        node: String,
        /// The new epoch.
        epoch: u64,
    },
    /// An election closed without a majority.
    ElectionFailed {
        /// The epoch the failed election consumed.
        epoch: u64,
        /// Votes collected.
        votes: usize,
        /// Votes a majority requires.
        required: usize,
    },
    /// A learner's synced position reached the quorum watermark; it is
    /// now a voter and the pending add is complete.
    MemberPromoted {
        /// The promoted member.
        node: String,
    },
}

/// How a deposed (or lagging) node re-entered the group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejoinOutcome {
    /// Its log was a clean prefix of the primary's; kept as-is.
    Clean,
    /// An un-quorum'd suffix from `cut` on was truncated.
    Truncated {
        /// First LSN removed.
        cut: u64,
    },
    /// A checkpoint already covered past the cut (or nothing was
    /// recoverable); the directory was wiped and the member
    /// re-bootstraps from the primary.
    Rebuilt,
}

/// Cumulative supervisor counters.
#[derive(Debug, Default, Clone)]
pub struct ClusterStats {
    /// WAL frames shipped to members.
    pub frames_shipped: u64,
    /// Snapshot bootstraps served (pruned-log path).
    pub snapshots_served: u64,
    /// Quorum acks processed.
    pub acks: u64,
    /// Transport errors absorbed (the round retries next tick).
    pub retries: u64,
    /// Commits confirmed majority-durable.
    pub quorum_commits: u64,
    /// Elections won.
    pub elections: u64,
    /// Elections that closed without a majority.
    pub failed_elections: u64,
    /// Fence messages delivered to deposed primaries.
    pub fences: u64,
    /// Rejoins that truncated an un-quorum'd suffix.
    pub truncated_rejoins: u64,
    /// Rejoins that wiped and re-bootstrapped.
    pub rebuilt_rejoins: u64,
    /// Journaled membership changes issued.
    pub reconfigs: u64,
    /// Learners promoted to voter after catching up.
    pub promotions: u64,
}

/// One primary + N members over a transport, with majority-ack
/// commit semantics.
#[derive(Debug)]
pub struct ClusterSet<T: ReplicaTransport> {
    base: PathBuf,
    opts: Options,
    group_cfg: GroupConfig,
    cfg: ClusterConfig,
    transport: T,
    epoch: u64,
    /// Voting nodes: voters + the primary. Changed at assembly
    /// ([`ClusterSet::add_member`]) and by journaled reconfiguration —
    /// an add counts here only once its learner is promoted, a remove
    /// counts immediately. Elections and rejoins do not change it.
    group_size: usize,
    primary: Option<QuorumPrimary>,
    retired: Option<QuorumPrimary>,
    members: BTreeMap<String, MemberLink>,
    /// The one membership change in flight, if any; a second is
    /// refused with [`DurableError::ReconfigInFlight`].
    pending_reconfig: Option<PendingReconfig>,
    leaderless_rounds: u64,
    stats: ClusterStats,
}

impl<T: ReplicaTransport> ClusterSet<T> {
    /// Creates a group whose primary is a fresh store under
    /// `base/primary` seeded with `seed`.
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::create_with`].
    pub fn bootstrap(
        base: &Path,
        seed: Tmd,
        opts: Options,
        group_cfg: GroupConfig,
        cfg: ClusterConfig,
        transport: T,
        io: Io,
    ) -> Result<ClusterSet<T>, ReplicaError> {
        let dir = base.join("primary");
        let store = DurableTmd::create_with(&dir, seed, opts.clone(), io)?;
        let group = GroupCommit::new(store, group_cfg.clone());
        group.configure_quorum(1);
        Ok(ClusterSet {
            base: base.to_path_buf(),
            opts,
            group_cfg,
            cfg,
            transport,
            epoch: 0,
            group_size: 1,
            primary: Some(QuorumPrimary::new("primary", group, 0)),
            retired: None,
            members: BTreeMap::new(),
            pending_reconfig: None,
            leaderless_rounds: 0,
            stats: ClusterStats::default(),
        })
    }

    /// Registers a fresh member under `base/<name>` and grows the
    /// voting group by one; it bootstraps from the primary on
    /// subsequent ticks.
    pub fn add_member(&mut self, name: &str, io: Io) {
        let dir = self.base.join(name);
        self.members.insert(
            name.to_string(),
            MemberLink::new(Follower::create(name, dir, self.opts.clone(), io)),
        );
        self.group_size += 1;
        if let Some(p) = &self.primary {
            p.group.configure_quorum(self.group_size);
        }
    }

    /// Votes a majority requires: `⌈(group_size + 1) / 2⌉`.
    pub fn quorum_required(&self) -> usize {
        self.group_size / 2 + 1
    }

    /// Voting nodes in the group (members + primary). Unpromoted
    /// learners are not counted.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Journals a single-member **add** through the WAL and quorum
    /// machinery: a `Reconfig` record is appended and fsynced like any
    /// commit, the quorum tracker's majority threshold grows by one
    /// effective exactly at that record's LSN, and `name` enters as a
    /// **non-voting learner** — replicated to, but not counted for
    /// quorum and barred from elections until its synced position
    /// reaches the quorum watermark, at which point the next tick
    /// promotes it ([`ClusterEvent::MemberPromoted`]) and the
    /// reconfiguration completes.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NotPrimary`] without a live primary;
    /// [`DurableError::ReconfigInFlight`] (wrapped) while a prior
    /// change is incomplete; [`ReplicaError::Protocol`] when `name` is
    /// already in the group; otherwise as [`ClusterSet::commit_local`].
    pub fn reconfig_add(&mut self, name: &str, addr: &str, io: Io) -> Result<u64, ReplicaError> {
        let primary_name = self
            .primary
            .as_ref()
            .ok_or(ReplicaError::NotPrimary)?
            .name()
            .to_string();
        if let Some(p) = &self.pending_reconfig {
            return Err(ReplicaError::Durable(DurableError::ReconfigInFlight {
                lsn: p.lsn,
                member: p.member.clone(),
            }));
        }
        if self.members.contains_key(name) || primary_name == name {
            return Err(ReplicaError::Protocol(format!(
                "`{name}` is already a member of the group"
            )));
        }
        let lsn = self.commit_local(WalRecord::Reconfig {
            epoch: self.epoch,
            add: true,
            member: name.to_string(),
            addr: addr.to_string(),
        })?;
        let p = self.primary.as_ref().expect("primary exists");
        p.group.configure_quorum_at(lsn, self.group_size + 1);
        p.group.add_learner(name);
        let dir = self.base.join(name);
        let mut link = MemberLink::new(Follower::create(name, dir, self.opts.clone(), io));
        link.learner = true;
        self.members.insert(name.to_string(), link);
        self.pending_reconfig = Some(PendingReconfig {
            lsn,
            add: true,
            member: name.to_string(),
            addr: addr.to_string(),
        });
        self.stats.reconfigs += 1;
        Ok(lsn)
    }

    /// Journals a single-member **remove**: the `Reconfig` record is
    /// appended and fsynced, the majority threshold shrinks by one
    /// effective at its LSN, the member is dropped from the quorum
    /// tracker (so the watermark recomputes immediately) with its id
    /// fenced against late acks, and read routing stops considering
    /// it. The reconfiguration completes once the record itself is
    /// quorum-committed under the shrunk group.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NotPrimary`] without a live primary;
    /// [`DurableError::ReconfigInFlight`] (wrapped) while a prior
    /// change is incomplete; [`ReplicaError::UnknownNode`] for a
    /// non-member; otherwise as [`ClusterSet::commit_local`].
    pub fn reconfig_remove(&mut self, name: &str) -> Result<u64, ReplicaError> {
        self.primary.as_ref().ok_or(ReplicaError::NotPrimary)?;
        if let Some(p) = &self.pending_reconfig {
            return Err(ReplicaError::Durable(DurableError::ReconfigInFlight {
                lsn: p.lsn,
                member: p.member.clone(),
            }));
        }
        if !self.members.contains_key(name) {
            return Err(ReplicaError::UnknownNode(name.to_string()));
        }
        let lsn = self.commit_local(WalRecord::Reconfig {
            epoch: self.epoch,
            add: false,
            member: name.to_string(),
            addr: String::new(),
        })?;
        self.group_size -= 1;
        let p = self.primary.as_ref().expect("primary exists");
        p.group.configure_quorum_at(lsn, self.group_size);
        p.group.ban_member(name);
        self.members.remove(name);
        self.pending_reconfig = Some(PendingReconfig {
            lsn,
            add: false,
            member: name.to_string(),
            addr: String::new(),
        });
        self.stats.reconfigs += 1;
        Ok(lsn)
    }

    /// The membership change in flight, if any.
    pub fn pending_reconfig(&self) -> Option<&PendingReconfig> {
        self.pending_reconfig.as_ref()
    }

    /// Whether member `name` is an unpromoted learner.
    pub fn is_learner(&self, name: &str) -> bool {
        self.members.get(name).is_some_and(|m| m.learner)
    }

    /// Completes the in-flight reconfiguration when its condition is
    /// met: an add promotes the learner once its synced position
    /// covers both the reconfig record and the quorum watermark; a
    /// remove completes once its record is quorum-committed.
    fn settle_reconfig(&mut self, events: &mut Vec<ClusterEvent>) {
        let Some(pending) = self.pending_reconfig.clone() else {
            return;
        };
        let Some(watermark) = self.primary.as_ref().map(QuorumPrimary::quorum_lsn) else {
            return;
        };
        if pending.add {
            let ready = self.members.get(&pending.member).is_some_and(|link| {
                link.learner && link.synced_lsn > pending.lsn && link.synced_lsn >= watermark
            });
            if ready {
                let link = self.members.get_mut(&pending.member).expect("checked");
                link.learner = false;
                if let Some(p) = &self.primary {
                    p.group.promote_voter(&pending.member);
                }
                self.group_size += 1;
                self.pending_reconfig = None;
                self.stats.promotions += 1;
                events.push(ClusterEvent::MemberPromoted {
                    node: pending.member,
                });
            }
        } else if watermark > pending.lsn {
            self.pending_reconfig = None;
        }
    }

    /// Journals one record on the primary (local durability only).
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NotPrimary`] without a live primary; otherwise
    /// as [`QuorumPrimary::commit`].
    pub fn commit_local(&mut self, record: WalRecord) -> Result<u64, ReplicaError> {
        self.primary
            .as_mut()
            .ok_or(ReplicaError::NotPrimary)?
            .commit(record)
    }

    /// Journals one record and pumps supervision rounds until it is
    /// majority-durable.
    ///
    /// # Errors
    ///
    /// [`DurableError::Unreplicated`] (wrapped in
    /// [`ReplicaError::Durable`]) when the watermark does not pass the
    /// record within [`ClusterConfig::commit_ticks`] rounds — the
    /// record *is* locally durable, but a majority never confirmed it;
    /// otherwise as [`ClusterSet::commit_local`].
    pub fn commit_quorum(&mut self, record: WalRecord) -> Result<u64, ReplicaError> {
        let lsn = self.commit_local(record)?;
        for _ in 0..self.cfg.commit_ticks {
            if self.quorum_covers(lsn) {
                self.stats.quorum_commits += 1;
                return Ok(lsn);
            }
            self.tick();
        }
        if self.quorum_covers(lsn) {
            self.stats.quorum_commits += 1;
            return Ok(lsn);
        }
        let acked = 1 + self.members.values().filter(|m| m.synced_lsn > lsn).count();
        Err(ReplicaError::Durable(DurableError::Unreplicated {
            lsn,
            acked,
        }))
    }

    fn quorum_covers(&self, lsn: u64) -> bool {
        self.primary.as_ref().is_some_and(|p| p.quorum_lsn() > lsn)
    }

    /// Checkpoints the primary.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NotPrimary`] without a live primary; otherwise
    /// as [`QuorumPrimary::checkpoint`].
    pub fn checkpoint(&mut self) -> Result<(), ReplicaError> {
        self.primary
            .as_mut()
            .ok_or(ReplicaError::NotPrimary)?
            .checkpoint()
    }

    /// Removes the primary, simulating its crash or loss; returns the
    /// node for inspection. Drop it before
    /// [`ClusterSet::rejoin_member`] reopens its directory.
    pub fn kill_primary(&mut self) -> Option<QuorumPrimary> {
        self.leaderless_rounds = 0;
        self.primary.take()
    }

    /// One supervision round. With a primary: each member's
    /// hello/replicate/quorum-ack exchange. Without one: counts
    /// leaderless rounds and, past
    /// [`ClusterConfig::heartbeat_miss_limit`], runs an election.
    pub fn tick(&mut self) -> Vec<ClusterEvent> {
        let mut events = Vec::new();
        if self.primary.is_none() {
            self.leaderless_rounds += 1;
            if self.leaderless_rounds >= self.cfg.heartbeat_miss_limit {
                match self.elect() {
                    Ok((node, epoch)) => events.push(ClusterEvent::Elected { node, epoch }),
                    Err(ReplicaError::NoQuorum {
                        epoch,
                        votes,
                        required,
                    }) => events.push(ClusterEvent::ElectionFailed {
                        epoch,
                        votes,
                        required,
                    }),
                    Err(_) => {}
                }
            }
            return events;
        }
        self.leaderless_rounds = 0;
        let names: Vec<String> = self.members.keys().cloned().collect();
        for name in names {
            let link = self.members.get(&name).expect("member exists");
            if link.crashed || link.refusing {
                continue;
            }
            if let Err(ev) = self.round(&name, &mut events) {
                if ev {
                    self.stats.retries += 1;
                }
            }
        }
        self.settle_reconfig(&mut events);
        events
    }

    /// One exchange with member `name`. `Err(true)` is a transport
    /// fault (retry next tick); member-side failures are reported via
    /// `events` and the link flags.
    fn round(&mut self, name: &str, events: &mut Vec<ClusterEvent>) -> Result<(), bool> {
        let primary_name = self
            .primary
            .as_ref()
            .expect("primary exists")
            .name()
            .to_string();
        let hello = self
            .members
            .get(name)
            .expect("member exists")
            .follower
            .hello();
        self.transport
            .send(&primary_name, &hello)
            .map_err(|_| true)?;
        self.pump_primary(&primary_name)?;
        self.pump_member(name, Some(&primary_name), events)?;
        self.pump_primary(&primary_name)?;
        Ok(())
    }

    /// Drains the primary's inbox: hellos are answered with heartbeat
    /// plus frames or a snapshot; quorum acks feed the watermark.
    fn pump_primary(&mut self, primary_name: &str) -> Result<(), bool> {
        loop {
            let msg = self.transport.recv(primary_name).map_err(|_| true)?;
            let Some(msg) = msg else { break };
            match msg {
                ReplicaMsg::Hello {
                    node,
                    next_lsn,
                    last_crc,
                    ..
                } => self.answer_hello(&node, next_lsn, last_crc)?,
                ReplicaMsg::QuorumAck {
                    node,
                    epoch,
                    applied_lsn,
                    synced_lsn,
                } => {
                    if epoch > self.epoch {
                        // An ack from the future is a protocol bug or a
                        // stray from a parallel history; never let it
                        // advance the watermark.
                        continue;
                    }
                    self.stats.acks += 1;
                    // Only current members may move the watermark: an
                    // ack from a removed (or never-admitted) id would
                    // count quorum against a stale group. The group's
                    // own ban list fences removed ids a second time.
                    if !self.members.contains_key(&node) {
                        continue;
                    }
                    // A member can never have synced past the
                    // primary's own head: cap the claim so a corrupt
                    // or lying ack cannot advance the quorum watermark
                    // (or the routing positions) beyond records that
                    // exist.
                    let head = self.primary.as_ref().map(QuorumPrimary::wal_position);
                    if let Some(p) = &self.primary {
                        p.group
                            .member_synced(&node, synced_lsn.min(p.wal_position()));
                    }
                    if let Some(link) = self.members.get_mut(&node) {
                        let cap = head.unwrap_or(u64::MAX);
                        link.applied_lsn = link.applied_lsn.max(applied_lsn.min(cap));
                        link.synced_lsn = link.synced_lsn.max(synced_lsn.min(cap));
                    }
                }
                // Plain acks (from a ReplicaSet-era peer) still update
                // read routing, but never the quorum watermark.
                ReplicaMsg::Ack { node, next_lsn, .. } => {
                    if let Some(link) = self.members.get_mut(&node) {
                        link.applied_lsn = link.applied_lsn.max(next_lsn);
                    }
                }
                // Stray traffic (old votes, fences echoing); ignore.
                _ => {}
            }
        }
        Ok(())
    }

    /// Answers one member hello: divergence gate, then heartbeat plus
    /// frames or a snapshot.
    fn answer_hello(&mut self, node: &str, next_lsn: u64, last_crc: u32) -> Result<(), bool> {
        let primary = self.primary.as_ref().expect("primary exists");
        let epoch = self.epoch;
        let head = primary.wal_position();
        let tailer = primary.tailer();
        if let Err(ReplicaError::Diverged {
            lsn,
            expected_crc,
            got_crc,
        }) = tailer.verify_position(next_lsn, last_crc, head)
        {
            self.transport
                .send(
                    node,
                    &ReplicaMsg::Diverged {
                        epoch,
                        lsn,
                        expected_crc,
                        got_crc,
                    },
                )
                .map_err(|_| true)?;
            return Ok(());
        }
        self.transport
            .send(
                node,
                &ReplicaMsg::Heartbeat {
                    epoch,
                    next_lsn: head,
                },
            )
            .map_err(|_| true)?;
        if next_lsn >= head {
            return Ok(());
        }
        let reply = match tailer.fetch(next_lsn, self.cfg.batch_frames) {
            Ok(TailSource::Frames(frames)) => {
                self.stats.frames_shipped += frames.len() as u64;
                ReplicaMsg::Frames { epoch, frames }
            }
            Ok(TailSource::Snapshot { next_lsn, snapshot }) => {
                self.stats.snapshots_served += 1;
                ReplicaMsg::Snapshot {
                    epoch,
                    next_lsn,
                    snapshot,
                }
            }
            // Serving-side read problems surface as a skipped round.
            Err(_) => return Ok(()),
        };
        self.transport.send(node, &reply).map_err(|_| true)?;
        Ok(())
    }

    /// Drains member `name`'s inbox through [`Follower::handle`]. Plain
    /// acks are upgraded to quorum acks before forwarding — the member
    /// fsyncs every applied record, so its synced position is its
    /// applied position. Vote grants go to the supervisor's inbox.
    fn pump_member(
        &mut self,
        name: &str,
        forward_to: Option<&str>,
        events: &mut Vec<ClusterEvent>,
    ) -> Result<(), bool> {
        loop {
            let msg = self.transport.recv(name).map_err(|_| true)?;
            let Some(msg) = msg else { break };
            let link = self.members.get_mut(name).expect("member exists");
            match link.follower.handle(msg) {
                Ok(Some(ReplicaMsg::Ack { .. })) => {
                    if let Some(to) = forward_to {
                        let ack = link.follower.quorum_ack();
                        self.transport.send(to, &ack).map_err(|_| true)?;
                    }
                }
                Ok(Some(grant @ ReplicaMsg::VoteGrant { .. })) => {
                    self.transport.send(SUPERVISOR, &grant).map_err(|_| true)?;
                }
                Ok(Some(reply)) => {
                    if let Some(to) = forward_to {
                        self.transport.send(to, &reply).map_err(|_| true)?;
                    }
                }
                Ok(None) => {}
                Err(e) if e.is_crash() => {
                    link.crashed = true;
                    events.push(ClusterEvent::MemberCrashed {
                        node: name.to_string(),
                    });
                    return Ok(());
                }
                Err(e) => {
                    // Vote refusals are per-message verdicts, not link
                    // failures; everything else is a sticky refusal.
                    if link.follower.is_refusing() {
                        link.refusing = true;
                        events.push(ClusterEvent::MemberRefused {
                            node: name.to_string(),
                            detail: e.to_string(),
                        });
                        return Ok(());
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs one deterministic election.
    ///
    /// The candidate is the member with the highest
    /// `(synced_lsn, member_id)` among those that hold replicated state
    /// and are not crashed or refusing. Every other member is asked for
    /// its vote over the transport (so partitions suppress votes); the
    /// candidate's own vote is implicit. At majority the candidate's
    /// store becomes the new primary — *without truncation*: quorum
    /// intersection guarantees its log contains every
    /// quorum-acknowledged record. The deposed primary (if any) is
    /// fenced at the new epoch.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NoQuorum`] when fewer than
    /// [`ClusterSet::quorum_required`] votes arrive — the epoch is
    /// consumed, nothing else changes (a standing primary re-asserts
    /// itself at the failed epoch and keeps serving).
    pub fn elect(&mut self) -> Result<(String, u64), ReplicaError> {
        // Settle in-flight replication first so rankings are current:
        // queued frames from the old primary still apply.
        let names: Vec<String> = self.members.keys().cloned().collect();
        let mut events = Vec::new();
        for name in &names {
            let _ = self.pump_member(name, None, &mut events);
        }
        let new_epoch = self.epoch + 1;
        self.epoch = new_epoch;
        let required = self.quorum_required();
        // Learners are filtered by `votable`: a joiner stands in
        // elections only after catch-up promoted it.
        let candidate = self
            .members
            .iter()
            .filter(|(_, m)| m.votable() && m.follower.store().is_some())
            .max_by_key(|(n, m)| (m.follower.next_lsn(), n.as_str()))
            .map(|(n, m)| (n.clone(), m.follower.next_lsn()));
        let Some((cand_name, cand_lsn)) = candidate else {
            self.stats.failed_elections += 1;
            self.reassert_primary(new_epoch);
            return Err(ReplicaError::NoQuorum {
                epoch: new_epoch,
                votes: 0,
                required,
            });
        };
        let mut votes = 1usize; // The candidate stands for itself.
                                // Voluntary yield: a *standing* primary being deposed
                                // (operator-initiated failover) contributes its vote — but only
                                // when the candidate's log covers the primary's quorum
                                // watermark, so no quorum-acknowledged record can be lost by
                                // the handover. An unsafe candidate simply does not get the
                                // yield, and the election falls short.
        if let Some(p) = &self.primary {
            if cand_lsn >= p.quorum_lsn() {
                votes += 1;
            }
        }
        let request = ReplicaMsg::VoteRequest {
            candidate: cand_name.clone(),
            epoch: new_epoch,
            synced_lsn: cand_lsn,
        };
        for name in &names {
            if *name == cand_name {
                continue;
            }
            if self.members.get(name).is_some_and(|m| m.learner) {
                continue; // Learners hold no vote to request.
            }
            if self.transport.send(name, &request).is_err() {
                continue; // Partitioned; no vote.
            }
            let _ = self.pump_member(name, None, &mut events);
        }
        while let Ok(Some(msg)) = self.transport.recv(SUPERVISOR) {
            if let ReplicaMsg::VoteGrant {
                node,
                epoch,
                candidate,
                ..
            } = msg
            {
                // Count only voters: a grant from a learner (or a
                // stray id) never contributes to the majority.
                if epoch == new_epoch
                    && candidate == cand_name
                    && self.members.get(&node).is_some_and(|m| !m.learner)
                {
                    votes += 1;
                }
            }
        }
        if votes < required {
            self.stats.failed_elections += 1;
            self.reassert_primary(new_epoch);
            return Err(ReplicaError::NoQuorum {
                epoch: new_epoch,
                votes,
                required,
            });
        }
        let link = self.members.remove(&cand_name).expect("candidate exists");
        let store = match link.follower.into_primary_store() {
            Ok(store) => store,
            Err(e) => {
                // Cannot happen for a votable, bootstrapped member;
                // restore the map if it somehow does.
                let dir = self.base.join(&cand_name);
                if let Ok(f) = Follower::open(&cand_name, dir, self.opts.clone(), Io::plain()) {
                    self.members.insert(cand_name.clone(), MemberLink::new(f));
                }
                return Err(e);
            }
        };
        let group = GroupCommit::new(store, self.group_cfg.clone());
        // Rebuild the quorum tracker's view of the group, including an
        // in-flight reconfiguration: the resize still takes effect at
        // the journaled record's LSN, the learner stays uncounted, and
        // a removed id stays fenced — before any seeded ack can move
        // the watermark.
        match &self.pending_reconfig {
            Some(pd) if pd.add => {
                group.configure_quorum(self.group_size);
                group.configure_quorum_at(pd.lsn, self.group_size + 1);
                group.add_learner(&pd.member);
            }
            Some(pd) => {
                group.configure_quorum(self.group_size + 1);
                group.configure_quorum_at(pd.lsn, self.group_size);
                group.ban_member(&pd.member);
            }
            None => group.configure_quorum(self.group_size),
        }
        for (n, m) in &self.members {
            if m.synced_lsn > 0 {
                group.member_synced(n, m.synced_lsn);
            }
        }
        if let Some(mut old) = self.primary.take() {
            old.fence(new_epoch);
            if self
                .transport
                .send(old.name(), &ReplicaMsg::Fence { epoch: new_epoch })
                .is_ok()
            {
                self.stats.fences += 1;
            }
            self.retired = Some(old);
        }
        self.primary = Some(QuorumPrimary::new(cand_name.clone(), group, new_epoch));
        self.leaderless_rounds = 0;
        self.stats.elections += 1;
        // An in-flight reconfiguration whose journaled record did not
        // survive into the winner's log (it was durable only on the
        // crashed primary — never quorum-committed, so losing it is
        // safe) is re-journaled here: the change is already reflected
        // in the supervisor's state and the quorum tracker, but its
        // threshold switch must anchor to a record that exists. The
        // fresh record lands at or before the stale LSN, so scheduling
        // the resize there also drops the stale schedule.
        if let Some(pd) = self.pending_reconfig.as_mut() {
            let p = self.primary.as_mut().expect("just installed");
            if p.wal_position() <= pd.lsn {
                let lsn = p.commit(WalRecord::Reconfig {
                    epoch: new_epoch,
                    add: pd.add,
                    member: pd.member.clone(),
                    addr: pd.addr.clone(),
                })?;
                let size = if pd.add {
                    self.group_size + 1
                } else {
                    self.group_size
                };
                p.group().configure_quorum_at(lsn, size);
                pd.lsn = lsn;
                self.stats.reconfigs += 1;
            }
        }
        Ok((cand_name, new_epoch))
    }

    /// After a failed election, a standing primary adopts the consumed
    /// epoch so members that granted a vote (and moved their epoch
    /// forward) accept its heartbeats again. There is still exactly one
    /// writer, so raising its fencing token is safe.
    fn reassert_primary(&mut self, epoch: u64) {
        if let Some(p) = self.primary.as_mut() {
            p.adopt_epoch(epoch);
        }
    }

    /// Re-admits node `name` (typically a deposed or restarted primary)
    /// as a member, realising the truncation-on-promotion invariant at
    /// the only safe place: the *rejoiner* cuts its un-quorum'd suffix
    /// back to the CRC match point against the current primary's log
    /// before it may replicate, vote or stand again. The voting group
    /// size does not change.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NotPrimary`] without a live primary;
    /// [`ReplicaError::Protocol`] when `name` is already a member or is
    /// the primary; [`ReplicaError::Durable`] when the directory's
    /// recovery or truncation fails non-faultily.
    pub fn rejoin_member(&mut self, name: &str) -> Result<RejoinOutcome, ReplicaError> {
        let primary = self.primary.as_ref().ok_or(ReplicaError::NotPrimary)?;
        if self.members.contains_key(name) {
            return Err(ReplicaError::Protocol(format!(
                "`{name}` is already a member"
            )));
        }
        if primary.name() == name {
            return Err(ReplicaError::Protocol(format!(
                "`{name}` is the serving primary"
            )));
        }
        let p_tailer = primary.tailer();
        let p_head = primary.wal_position();
        let dir = self.base.join(name);
        let store = match DurableTmd::open_with(&dir, self.opts.clone(), Io::plain()) {
            Ok(s) => s,
            Err(DurableError::NoStore) => {
                // Nothing recoverable; enter as a fresh member.
                self.insert_member(
                    name,
                    Follower::create(name, dir, self.opts.clone(), Io::plain()),
                );
                self.stats.rebuilt_rejoins += 1;
                return Ok(RejoinOutcome::Rebuilt);
            }
            Err(e) => return Err(e.into()),
        };
        let local_head = store.wal_position();
        let l_tailer = WalTailer::new(&dir);
        // Walk down from the shared range's top to the last LSN where
        // both logs hold the same frame (or where either side is
        // pruned — unverifiable positions are accepted; replay
        // re-validates everything above them).
        let mut match_end = 0u64;
        let mut lsn = local_head.min(p_head).saturating_sub(1);
        while lsn >= 1 {
            let ours = l_tailer.crc_at(lsn)?;
            let theirs = p_tailer.crc_at(lsn)?;
            match (ours, theirs) {
                (Some(a), Some(b)) if a == b => {
                    match_end = lsn;
                    break;
                }
                (None, _) | (_, None) => {
                    match_end = lsn;
                    break;
                }
                _ => lsn -= 1,
            }
        }
        let cut = match_end + 1;
        let outcome = if cut >= local_head {
            drop(store);
            RejoinOutcome::Clean
        } else {
            match store.truncate_suffix(cut) {
                Ok(truncated) => {
                    drop(truncated);
                    self.stats.truncated_rejoins += 1;
                    RejoinOutcome::Truncated { cut }
                }
                Err(DurableError::Corrupt { .. }) => {
                    // A checkpoint covers past the cut: the suffix is
                    // baked into a snapshot and cannot be unwound.
                    // Wipe; the member re-bootstraps from the primary.
                    match std::fs::remove_dir_all(&dir) {
                        Ok(()) => {}
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                        Err(e) => return Err(ReplicaError::Durable(e.into())),
                    }
                    self.stats.rebuilt_rejoins += 1;
                    RejoinOutcome::Rebuilt
                }
                Err(e) => return Err(e.into()),
            }
        };
        let follower = Follower::open(name, &dir, self.opts.clone(), Io::plain())?;
        self.insert_member(name, follower);
        Ok(outcome)
    }

    fn insert_member(&mut self, name: &str, follower: Follower) {
        self.members
            .insert(name.to_string(), MemberLink::new(follower));
    }

    /// Replaces a crashed member with one recovered from its directory.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::UnknownNode`]; otherwise as [`Follower::open`].
    pub fn restart_member(&mut self, name: &str) -> Result<(), ReplicaError> {
        if !self.members.contains_key(name) {
            return Err(ReplicaError::UnknownNode(name.to_string()));
        }
        let dir = self.base.join(name);
        let f = Follower::open(name, dir, self.opts.clone(), Io::plain())?;
        let link = self.members.get_mut(name).expect("member exists");
        let synced = link.synced_lsn;
        let applied = link.applied_lsn;
        *link = MemberLink::new(f);
        link.synced_lsn = synced;
        link.applied_lsn = applied;
        Ok(())
    }

    /// Discards a refusing member's state entirely; it re-bootstraps
    /// from the current primary. Its previously acked positions are
    /// forgotten (the watermark never moves backwards, so this cannot
    /// un-acknowledge anything).
    ///
    /// # Errors
    ///
    /// [`ReplicaError::UnknownNode`]; I/O failure wiping the directory.
    pub fn rebuild_member(&mut self, name: &str) -> Result<(), ReplicaError> {
        if !self.members.contains_key(name) {
            return Err(ReplicaError::UnknownNode(name.to_string()));
        }
        let dir = self.base.join(name);
        match std::fs::remove_dir_all(&dir) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(ReplicaError::Durable(e.into())),
        }
        self.insert_member(
            name,
            Follower::create(name, dir, self.opts.clone(), Io::plain()),
        );
        if let Some(p) = &self.primary {
            p.group.forget_member(name);
        }
        Ok(())
    }

    /// The member (never the primary) best placed to serve a read that
    /// requires every LSN up to `min_lsn` applied: the freshest member
    /// whose acked applied position covers the bound.
    pub fn route_read(&self, min_lsn: u64) -> Option<&str> {
        self.members
            .iter()
            .filter(|(_, m)| !m.crashed && !m.refusing && m.applied_lsn > min_lsn)
            .max_by_key(|(n, m)| (m.applied_lsn, n.as_str()))
            .map(|(n, _)| n.as_str())
    }

    /// The freshest member and its acked applied position — what a
    /// `TooStale` reply names when no member covers the bound.
    pub fn freshest_member(&self) -> Option<(&str, u64)> {
        self.members
            .iter()
            .filter(|(_, m)| !m.crashed && !m.refusing)
            .max_by_key(|(n, m)| (m.applied_lsn, n.as_str()))
            .map(|(n, m)| (n.as_str(), m.applied_lsn))
    }

    /// Runs `rounds` supervision ticks, collecting every event.
    pub fn run_ticks(&mut self, rounds: u64) -> Vec<ClusterEvent> {
        let mut events = Vec::new();
        for _ in 0..rounds {
            events.extend(self.tick());
        }
        events
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The live primary.
    pub fn primary(&self) -> Option<&QuorumPrimary> {
        self.primary.as_ref()
    }

    /// The live primary, mutable.
    pub fn primary_mut(&mut self) -> Option<&mut QuorumPrimary> {
        self.primary.as_mut()
    }

    /// The most recently deposed primary.
    pub fn retired(&self) -> Option<&QuorumPrimary> {
        self.retired.as_ref()
    }

    /// The most recently deposed primary, mutable (for fencing
    /// probes).
    pub fn retired_mut(&mut self) -> Option<&mut QuorumPrimary> {
        self.retired.as_mut()
    }

    /// Member by name.
    pub fn member(&self, name: &str) -> Option<&Follower> {
        self.members.get(name).map(|m| &m.follower)
    }

    /// Registered member names.
    pub fn member_names(&self) -> Vec<String> {
        self.members.keys().cloned().collect()
    }

    /// Highest applied LSN member `name` has acked.
    pub fn member_applied(&self, name: &str) -> u64 {
        self.members.get(name).map_or(0, |m| m.applied_lsn)
    }

    /// Highest durably-synced LSN member `name` has acked.
    pub fn member_synced(&self, name: &str) -> u64 {
        self.members.get(name).map_or(0, |m| m.synced_lsn)
    }

    /// Whether member `name` crashed (needs a restart).
    pub fn member_crashed(&self, name: &str) -> bool {
        self.members.get(name).is_some_and(|m| m.crashed)
    }

    /// Whether member `name` is refusing replay (needs a rebuild).
    pub fn member_refusing(&self, name: &str) -> bool {
        self.members.get(name).is_some_and(|m| m.refusing)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Transport operations performed so far.
    pub fn transport_steps(&self) -> u64 {
        self.transport.steps()
    }

    /// Direct access to the transport — fault harnesses inject forged
    /// or hostile protocol messages through this.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }
}
