//! Fault-injected quorum sweep: the cluster subsystem's correctness
//! argument, executable.
//!
//! [`cluster_sweep`] extends the replication sweep to the quorum
//! setting. It runs the seeded workload
//! ([`mvolap_durable::generate`]) on a primary with two members under
//! majority-ack commit, then re-runs it once per injection point
//! across two fault classes:
//!
//! 1. **Primary crashes** — the primary's I/O layer crashes at every
//!    I/O primitive. The survivors must elect a new primary
//!    deterministically, every *quorum-acknowledged* commit must be
//!    present (same LSN, same frame CRC) on the winner, and the
//!    crashed primary must rejoin by truncating any un-quorum'd
//!    suffix before replicating again.
//! 2. **Partitions** — member `m1` is cut off at every transport
//!    step. A healing outage must reconverge byte-identically; a
//!    permanent partition must still quorum through the surviving
//!    member, and an operator failover must fence the deposed primary
//!    so it refuses writes in the new epoch — the dual-primary probe.
//!
//! A staged quorum-loss scenario additionally proves a leaderless,
//! partitioned group refuses to elect ([`ReplicaError::NoQuorum`])
//! rather than risk two histories, then elects automatically once the
//! partition heals.

use std::path::Path;

use mvolap_core::persist::write_tmd;
use mvolap_core::Tmd;
use mvolap_durable::fault::{generate, Step, Workload};
use mvolap_durable::{
    CheckpointPolicy, DurableError, FaultPlan, GroupConfig, Io, Options, TimeSource, WalRecord,
};
use mvolap_replica::{ReplicaError, ReplicaMsg, ReplicaTransport, TransportError};

use crate::set::{ClusterConfig, ClusterEvent, ClusterSet, RejoinOutcome};

/// The reference query every surviving node must answer identically to
/// the in-memory prefix replay.
const QUERY: &str = "SELECT sum(Amount) BY year, Org.Division IN MODE tcm";

/// Ticks the drain loop will spend waiting for convergence. Generous:
/// a cut member burns only a couple of transport operations per tick,
/// so healing an outage takes many rounds.
const DRAIN_TICKS: usize = 128;

/// Cut transport operations before a healing outage repairs itself.
/// Must be comfortably below `DRAIN_TICKS` × ops-per-tick (~2 for a
/// silent member) so convergence is reachable within the drain budget.
const OUTAGE_OPS: u64 = 32;

/// What a [`cluster_sweep`] established.
#[derive(Debug, Default)]
pub struct ClusterSweepOutcome {
    /// Total injection points exercised across all classes.
    pub injection_points: u64,
    /// Runs where the primary's I/O crashed.
    pub primary_crashes: u64,
    /// Runs with an injected partition (healing or permanent).
    pub partitions: u64,
    /// Healing outages that reconverged exactly.
    pub healed_outages: u64,
    /// Elections won (crash failovers and operator failovers).
    pub elections: u64,
    /// Elections that closed without a majority.
    pub failed_elections: u64,
    /// Deposed primaries observed refusing a write with `Fenced` —
    /// the dual-primary probe.
    pub fenced_refusals: u64,
    /// Rejoins that truncated an un-quorum'd suffix.
    pub truncated_rejoins: u64,
    /// Rejoins that wiped and re-bootstrapped.
    pub rebuilt_rejoins: u64,
    /// Rejoins whose log was already a clean prefix.
    pub clean_rejoins: u64,
    /// Crashes so early no member held state to elect.
    pub unpromotable: u64,
    /// Commits that timed out waiting for quorum (locally durable,
    /// never cluster-acknowledged).
    pub unreplicated_commits: u64,
    /// Logical records in the workload.
    pub records: usize,
}

/// Store options matching the durable and replica sweeps: tiny
/// segments so rotation and pruning happen often, manual checkpoints.
fn sweep_options() -> Options {
    Options {
        segment_bytes: 2048,
        policy: CheckpointPolicy::manual(),
        prune_on_checkpoint: true,
    }
}

fn sweep_cluster_config() -> ClusterConfig {
    ClusterConfig {
        batch_frames: 32,
        heartbeat_miss_limit: 3,
        commit_ticks: 16,
    }
}

/// Deterministic group commit: no hold window, manual clock — the
/// watermark moves only through supervision rounds.
fn sweep_group_config() -> GroupConfig {
    GroupConfig {
        hold_ms: 0,
        time: TimeSource::manual(0),
    }
}

fn serialise(tmd: &Tmd) -> Vec<u8> {
    let mut buf = Vec::new();
    write_tmd(tmd, &mut buf).expect("in-memory serialisation cannot fail");
    buf
}

/// Fingerprints the reference query's full answer through the query
/// pipeline, value bits and confidences included.
fn fingerprint(tmd: &Tmd) -> Result<Vec<String>, String> {
    let svs = tmd.structure_versions();
    let rs = mvolap_query::run_with_versions(tmd, &svs, QUERY)
        .map_err(|e| format!("query failed: {e}"))?;
    Ok(rs
        .rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r
                .cells
                .iter()
                .map(|c| format!("{}:{:?}", c.value.map_or(0, f64::to_bits), c.confidence))
                .collect();
            format!("{}|{}|{}", r.time, r.keys.join(","), cells.join(","))
        })
        .collect())
}

/// A channel transport that silently cuts traffic to and from a set of
/// nodes once a global operation counter passes `from_step`, for
/// `outage_len` cut operations (`u64::MAX` = permanent partition).
/// Unlike [`mvolap_replica::FaultyTransport`] the cut is *per node*:
/// the rest of the group keeps replicating, which is what makes the
/// quorum path observable.
#[derive(Debug)]
struct MemberPartition {
    inner: mvolap_replica::ChannelTransport,
    cut: Vec<String>,
    from_step: u64,
    outage_len: u64,
    ops: u64,
    faulted_ops: u64,
}

impl MemberPartition {
    fn new(cut: &[&str], from_step: u64, outage_len: u64) -> MemberPartition {
        MemberPartition {
            inner: mvolap_replica::ChannelTransport::new(),
            cut: cut.iter().map(|s| (*s).to_string()).collect(),
            from_step,
            outage_len,
            ops: 0,
            faulted_ops: 0,
        }
    }

    /// A partition that never fires.
    fn clean() -> MemberPartition {
        MemberPartition::new(&[], u64::MAX, 0)
    }

    fn faulted(&mut self, node: &str) -> bool {
        self.ops += 1;
        if self.ops <= self.from_step || !self.cut.iter().any(|c| c == node) {
            return false;
        }
        if self.faulted_ops >= self.outage_len {
            return false; // Outage over; the link healed.
        }
        self.faulted_ops += 1;
        true
    }
}

impl ReplicaTransport for MemberPartition {
    fn send(&mut self, to: &str, msg: &ReplicaMsg) -> Result<(), TransportError> {
        // A partitioned member can neither be reached nor speak: its
        // own outbound traffic (hellos the supervisor sends on its
        // behalf carry its name as sender via the message itself) is
        // modelled by cutting everything addressed to or naming it.
        let from = match msg {
            ReplicaMsg::Hello { node, .. }
            | ReplicaMsg::Ack { node, .. }
            | ReplicaMsg::QuorumAck { node, .. }
            | ReplicaMsg::VoteGrant { node, .. } => node.as_str(),
            _ => "",
        };
        if self.faulted(to) || (!from.is_empty() && self.faulted(from)) {
            return Ok(()); // Silently dropped.
        }
        self.inner.send(to, msg)
    }

    fn recv(&mut self, node: &str) -> Result<Option<ReplicaMsg>, TransportError> {
        if self.faulted(node) {
            return Ok(None);
        }
        self.inner.recv(node)
    }

    fn steps(&self) -> u64 {
        self.ops
    }
}

/// Result of one clustered workload run.
struct ClusterRun {
    /// The set, unless the primary crashed while bootstrapping.
    set: Option<ClusterSet<MemberPartition>>,
    /// Every commit the cluster *acknowledged* at quorum: `(lsn, frame
    /// crc)` — the records no failure is allowed to lose.
    acked: Vec<(u64, u32)>,
    committed: u64,
    unreplicated: u64,
    primary_crashed: bool,
}

/// Runs `workload` on a fresh primary + m1 + m2 group under `base`
/// with majority-ack commits. Injected crashes are recorded;
/// non-faulty failures are hard errors.
fn run_cluster(
    base: &Path,
    workload: &Workload,
    primary_io: Io,
    transport: MemberPartition,
) -> Result<ClusterRun, String> {
    std::fs::remove_dir_all(base).ok();
    let mut set = match ClusterSet::bootstrap(
        base,
        workload.seed_schema.clone(),
        sweep_options(),
        sweep_group_config(),
        sweep_cluster_config(),
        transport,
        primary_io,
    ) {
        Ok(set) => set,
        Err(ReplicaError::Durable(e)) if e.is_io_class() => {
            return Ok(ClusterRun {
                set: None,
                acked: Vec::new(),
                committed: 0,
                unreplicated: 0,
                primary_crashed: true,
            })
        }
        Err(e) => return Err(format!("cluster bootstrap failed non-faultily: {e}")),
    };
    set.add_member("m1", Io::plain());
    set.add_member("m2", Io::plain());

    let mut run = ClusterRun {
        set: None,
        acked: Vec::new(),
        committed: 0,
        unreplicated: 0,
        primary_crashed: false,
    };
    for step in &workload.steps {
        let res = match step {
            Step::Op(record) => set.commit_quorum(record.clone()).map(Some),
            Step::Checkpoint => set.checkpoint().map(|()| None),
        };
        match res {
            Ok(Some(lsn)) => {
                run.committed += 1;
                let crc = set
                    .primary()
                    .expect("primary lives")
                    .tailer()
                    .crc_at(lsn)
                    .map_err(|e| format!("crc_at({lsn}) failed: {e}"))?;
                if let Some(crc) = crc {
                    run.acked.push((lsn, crc));
                }
            }
            Ok(None) => {}
            Err(ReplicaError::Durable(DurableError::Unreplicated { .. })) => {
                // Locally durable, never cluster-acknowledged: the
                // session would see a typed `unreplicated` error. The
                // workload presses on.
                run.unreplicated += 1;
            }
            Err(ReplicaError::Durable(e)) if e.is_io_class() => {
                run.primary_crashed = true;
                break;
            }
            Err(e) => return Err(format!("workload step failed non-faultily: {e}")),
        }
    }
    run.set = Some(set);
    Ok(run)
}

/// Asserts every quorum-acknowledged `(lsn, crc)` pair is present in
/// the current primary's log (or pruned into a covering checkpoint —
/// never *different*).
fn assert_acked_present(
    set: &ClusterSet<MemberPartition>,
    acked: &[(u64, u32)],
    what: &str,
) -> Result<(), String> {
    let tailer = set.primary().expect("primary lives").tailer();
    for (lsn, crc) in acked {
        match tailer.crc_at(*lsn) {
            Ok(Some(c)) if c == *crc => {}
            Ok(Some(c)) => {
                return Err(format!(
                    "{what}: acked LSN {lsn} rewritten (crc {crc:#010x} -> {c:#010x})"
                ))
            }
            Ok(None) => {} // Pruned into a checkpoint; still durable.
            Err(e) => return Err(format!("{what}: acked LSN {lsn} unreadable: {e}")),
        }
    }
    Ok(())
}

/// Asserts the primary's state equals the in-memory replay of its own
/// log length, and answers the reference query identically.
fn assert_prefix_consistent(
    set: &ClusterSet<MemberPartition>,
    prefix_bytes: &[Vec<u8>],
    prefix_tmds: &[Tmd],
    what: &str,
) -> Result<usize, String> {
    let p = set.primary().expect("primary lives");
    let q = (p.wal_position() - 2) as usize;
    if q >= prefix_bytes.len() {
        return Err(format!("{what}: primary holds {q} records, out of range"));
    }
    let schema = p.schema();
    if serialise(&schema) != prefix_bytes[q] {
        return Err(format!(
            "{what}: primary state is not byte-identical to prefix {q}"
        ));
    }
    if fingerprint(&schema)? != fingerprint(&prefix_tmds[q])? {
        return Err(format!(
            "{what}: primary answers the reference query differently at prefix {q}"
        ));
    }
    Ok(q)
}

/// Pumps ticks until member `name` catches the primary's head (or the
/// tick budget runs out); asserts byte-identity once caught.
fn converge_member(
    set: &mut ClusterSet<MemberPartition>,
    name: &str,
    prefix_bytes: &[Vec<u8>],
    what: &str,
) -> Result<(), String> {
    let head = set.primary().expect("primary lives").wal_position();
    for _ in 0..DRAIN_TICKS {
        if set.member(name).is_some_and(|f| f.next_lsn() >= head) {
            break;
        }
        set.tick();
    }
    let f = set
        .member(name)
        .ok_or_else(|| format!("{what}: member {name} missing"))?;
    if f.next_lsn() < head {
        return Err(format!(
            "{what}: member {name} stopped at LSN {} of {head}",
            f.next_lsn()
        ));
    }
    let q = (head - 2) as usize;
    let schema = f
        .schema()
        .ok_or_else(|| format!("{what}: member {name} never bootstrapped"))?;
    if serialise(schema) != prefix_bytes[q] {
        return Err(format!(
            "{what}: member {name} diverged from the applied sequence"
        ));
    }
    Ok(())
}

/// A probe record for fencing checks.
fn probe_record(workload: &Workload) -> WalRecord {
    workload
        .steps
        .iter()
        .find_map(|s| match s {
            Step::Op(r) => Some(r.clone()),
            Step::Checkpoint => None,
        })
        .expect("workload has records")
}

/// Staged quorum-loss scenario: the primary dies while `m1` is
/// partitioned, so the group cannot reach a majority — the election
/// must fail with a typed [`ReplicaError::NoQuorum`] and the group
/// must stay primary-less. Once the partition heals, the supervisor's
/// own heartbeat-miss counter must elect without being asked.
fn quorum_loss_scenario(
    base: &Path,
    workload: &Workload,
    outcome: &mut ClusterSweepOutcome,
) -> Result<(), String> {
    // Partition m1 after the workload replicates (large from_step
    // would be fragile; instead cut from step 0 of the *post-workload*
    // phase by running the workload on a clean transport first is not
    // possible with one transport — so cut m1 late, after more steps
    // than the clean run ever used).
    let transport = MemberPartition::new(&["m1"], u64::MAX / 2, u64::MAX);
    let run = run_cluster(base, workload, Io::plain(), transport)?;
    if run.primary_crashed {
        return Err("quorum-loss scenario: primary crashed faultlessly".to_string());
    }
    if run.committed != workload.records as u64 {
        return Err(format!(
            "quorum-loss scenario committed {}/{}",
            run.committed, workload.records
        ));
    }
    // Now cut m1 for a bounded outage and kill the primary: only m2
    // answers, and 1 vote of 2 required must be refused.
    // Reach into the transport via a fresh partition window: rebuild
    // the set is unnecessary — m1 is still healthy here, so emulate
    // the outage by crashing m1's link instead: partition semantics
    // need the transport, so this scenario uses its own transport cut
    // from the start of the leaderless phase.
    drop(run);

    // Rebuild with a partition that starts early enough to suppress
    // m1's vote but heals: measure the clean run's steps first.
    let clean = run_cluster(base, workload, Io::plain(), MemberPartition::clean())?;
    let steps_after_workload = clean.set.as_ref().map_or(0, ClusterSet::transport_steps);
    drop(clean);
    let transport = MemberPartition::new(&["m1"], steps_after_workload, OUTAGE_OPS);
    let mut run = run_cluster(base, workload, Io::plain(), transport)?;
    let set = run.set.as_mut().expect("set lives");
    let acked = run.acked.clone();
    let old = set.kill_primary().expect("primary present");
    drop(old);
    // Direct election while m1 is cut: m2 stands, m1 cannot vote.
    match set.elect() {
        Err(ReplicaError::NoQuorum {
            votes, required, ..
        }) => {
            if votes >= required {
                return Err("quorum-loss scenario: NoQuorum with enough votes".to_string());
            }
            outcome.failed_elections += 1;
        }
        other => {
            return Err(format!(
                "quorum-loss scenario: election without a majority did not refuse ({other:?})"
            ))
        }
    }
    if set.primary().is_some() {
        return Err("quorum-loss scenario: a primary appeared without quorum".to_string());
    }
    // Heartbeat-miss driven: once the outage window is consumed, the
    // supervisor's own tick must elect.
    let mut elected = false;
    for _ in 0..DRAIN_TICKS {
        let events = set.tick();
        if events
            .iter()
            .any(|e| matches!(e, ClusterEvent::Elected { .. }))
        {
            elected = true;
            break;
        }
    }
    if !elected {
        return Err("quorum-loss scenario: healed partition never elected".to_string());
    }
    outcome.elections += 1;
    assert_acked_present(set, &acked, "quorum-loss scenario")?;
    std::fs::remove_dir_all(base).ok();
    Ok(())
}

/// Sweeps every fault-injection point of the quorum-replicated
/// workload and checks the cluster invariants at each one: **no
/// quorum-acknowledged commit is ever lost** across a single-node
/// crash or partition, and **no two primaries accept writes in the
/// same epoch** (the deposed one is probed at every failover).
///
/// # Errors
///
/// A description of the first violated invariant — any `Err` is a
/// cluster bug.
pub fn cluster_sweep(
    base_dir: &Path,
    seed: u64,
    target_records: usize,
) -> Result<ClusterSweepOutcome, String> {
    let workload = generate(seed, target_records);

    // Prefix states, exactly as in the durable crash sweep.
    let mut prefix_bytes = Vec::with_capacity(workload.records + 1);
    let mut prefix_tmds = Vec::with_capacity(workload.records + 1);
    let mut state = workload.seed_schema.clone();
    prefix_bytes.push(serialise(&state));
    prefix_tmds.push(state.clone());
    for step in &workload.steps {
        if let Step::Op(record) = step {
            record
                .apply(&mut state)
                .map_err(|e| format!("prefix replay failed: {e}"))?;
            prefix_bytes.push(serialise(&state));
            prefix_tmds.push(state.clone());
        }
    }

    let mut outcome = ClusterSweepOutcome {
        records: workload.records,
        ..ClusterSweepOutcome::default()
    };

    // ---- Stage 0: fault-free quorum run ----------------------------
    let free_dir = base_dir.join("free");
    let free = run_cluster(&free_dir, &workload, Io::plain(), MemberPartition::clean())?;
    let mut set = free.set.expect("fault-free run has a set");
    if free.primary_crashed || free.unreplicated != 0 || free.committed != workload.records as u64 {
        return Err(format!(
            "fault-free run committed {}/{} ({} unreplicated)",
            free.committed, workload.records, free.unreplicated
        ));
    }
    if free.acked.len() != workload.records {
        return Err(format!(
            "fault-free run acked {} of {} commits",
            free.acked.len(),
            workload.records
        ));
    }
    let head = set.primary().expect("primary lives").wal_position();
    if set.primary().expect("primary lives").quorum_lsn() < head {
        return Err("fault-free watermark never caught the head".to_string());
    }
    converge_member(&mut set, "m1", &prefix_bytes, "fault-free")?;
    converge_member(&mut set, "m2", &prefix_bytes, "fault-free")?;
    let primary_points = set
        .primary()
        .expect("primary lives")
        .group()
        .with_store(mvolap_durable::DurableTmd::io_ops);
    let transport_points = set.transport_steps();
    drop(set);

    // ---- Stage A: primary crashes at every I/O primitive -----------
    let a_dir = base_dir.join("p-crash");
    for k in 0..primary_points {
        outcome.injection_points += 1;
        let io = Io::faulty(FaultPlan::crash_after(k, seed));
        let transport = MemberPartition::clean();
        let run = run_cluster(&a_dir, &workload, io, transport)?;
        let Some(mut set) = run.set else {
            outcome.primary_crashes += 1;
            outcome.unpromotable += 1; // Crashed creating the primary.
            continue;
        };
        if !run.primary_crashed {
            // The fault fired inside a read path or not at all on this
            // run's shorter op sequence; the workload completed — treat
            // as a clean point.
            assert_acked_present(&set, &run.acked, &format!("primary crash {k} (no-fire)"))?;
            continue;
        }
        outcome.primary_crashes += 1;
        outcome.unreplicated_commits += run.unreplicated;
        let old = set.kill_primary().expect("primary present before kill");
        drop(old); // Release the store handle; rejoin reopens the dir.
        match set.elect() {
            Ok((_winner, _epoch)) => {
                outcome.elections += 1;
                assert_acked_present(&set, &run.acked, &format!("primary crash {k}"))?;
                assert_prefix_consistent(
                    &set,
                    &prefix_bytes,
                    &prefix_tmds,
                    &format!("primary crash {k}"),
                )?;
                // The crashed primary rejoins: recovery, then the
                // truncation-on-rejoin invariant — any suffix beyond
                // the CRC match point with the new primary is cut.
                match set.rejoin_member("primary") {
                    Ok(RejoinOutcome::Truncated { .. }) => outcome.truncated_rejoins += 1,
                    Ok(RejoinOutcome::Rebuilt) => outcome.rebuilt_rejoins += 1,
                    Ok(RejoinOutcome::Clean) => outcome.clean_rejoins += 1,
                    Err(e) => return Err(format!("primary crash {k}: rejoin failed: {e}")),
                }
                converge_member(
                    &mut set,
                    "primary",
                    &prefix_bytes,
                    &format!("primary crash {k}"),
                )?;
                assert_acked_present(&set, &run.acked, &format!("primary crash {k} post-rejoin"))?;
            }
            Err(ReplicaError::NoQuorum { .. }) if run.acked.is_empty() => {
                // Crashed before anything replicated; no member holds
                // state worth electing.
                outcome.unpromotable += 1;
            }
            Err(e) => {
                return Err(format!(
                    "primary crash {k}: election failed despite {} acked commits: {e}",
                    run.acked.len()
                ))
            }
        }
    }

    // ---- Stage B: partition member m1 at every transport step ------
    let b_dir = base_dir.join("partition");
    for j in (0..transport_points).step_by(1) {
        outcome.injection_points += 1;
        outcome.partitions += 1;
        if j % 2 == 0 {
            // Healing outage: the group must reconverge exactly, and
            // no commit may be lost or rewritten.
            let transport = MemberPartition::new(&["m1"], j, OUTAGE_OPS);
            let run = run_cluster(&b_dir, &workload, Io::plain(), transport)?;
            if run.primary_crashed {
                return Err(format!("partition {j}: primary was disturbed"));
            }
            let mut set = run.set.expect("set lives");
            outcome.unreplicated_commits += run.unreplicated;
            assert_acked_present(&set, &run.acked, &format!("partition {j}"))?;
            converge_member(&mut set, "m1", &prefix_bytes, &format!("partition {j}"))?;
            converge_member(&mut set, "m2", &prefix_bytes, &format!("partition {j}"))?;
            outcome.healed_outages += 1;
        } else {
            // Permanent partition of m1, then an operator failover:
            // the quorum must have stayed reachable through m2, the
            // deposed primary must be fenced, and it must refuse a
            // write in the new epoch — no two primaries ever accept
            // writes in the same epoch.
            let transport = MemberPartition::new(&["m1"], j, u64::MAX);
            let run = run_cluster(&b_dir, &workload, Io::plain(), transport)?;
            if run.primary_crashed {
                return Err(format!("partition {j}: primary was disturbed"));
            }
            let mut set = run.set.expect("set lives");
            outcome.unreplicated_commits += run.unreplicated;
            if run.unreplicated > 0 {
                return Err(format!(
                    "partition {j}: quorum unreachable with a single member cut \
                     ({} unreplicated)",
                    run.unreplicated
                ));
            }
            assert_acked_present(&set, &run.acked, &format!("partition {j}"))?;
            match set.elect() {
                Ok((_winner, epoch)) => {
                    outcome.elections += 1;
                    assert_acked_present(&set, &run.acked, &format!("partition {j} failover"))?;
                    assert_prefix_consistent(
                        &set,
                        &prefix_bytes,
                        &prefix_tmds,
                        &format!("partition {j} failover"),
                    )?;
                    let old = set.retired_mut().expect("deposed primary retained");
                    if !old.is_fenced() {
                        return Err(format!("partition {j}: deposed primary not fenced"));
                    }
                    match old.commit(probe_record(&workload)) {
                        Err(ReplicaError::Fenced { epoch: at }) => {
                            if at != epoch {
                                return Err(format!(
                                    "partition {j}: fenced at epoch {at}, expected {epoch}"
                                ));
                            }
                            outcome.fenced_refusals += 1;
                        }
                        other => {
                            return Err(format!(
                                "partition {j}: deposed primary accepted a write ({other:?})"
                            ))
                        }
                    }
                    // The deposed primary rejoins the group it lost.
                    match set.rejoin_member("primary") {
                        Ok(RejoinOutcome::Truncated { .. }) => outcome.truncated_rejoins += 1,
                        Ok(RejoinOutcome::Rebuilt) => outcome.rebuilt_rejoins += 1,
                        Ok(RejoinOutcome::Clean) => outcome.clean_rejoins += 1,
                        Err(e) => return Err(format!("partition {j}: rejoin failed: {e}")),
                    }
                    converge_member(
                        &mut set,
                        "primary",
                        &prefix_bytes,
                        &format!("partition {j} rejoin"),
                    )?;
                }
                Err(ReplicaError::NoQuorum { .. }) => {
                    // The partition fired before m2 replicated enough
                    // to stand safely; the standing primary must keep
                    // serving.
                    outcome.failed_elections += 1;
                    let lsn = set
                        .commit_local(probe_record(&workload))
                        .map_err(|e| format!("partition {j}: standing primary refused: {e}"))?;
                    if lsn == 0 {
                        return Err(format!("partition {j}: probe commit returned LSN 0"));
                    }
                    assert_acked_present(&set, &run.acked, &format!("partition {j} no-quorum"))?;
                }
                Err(e) => return Err(format!("partition {j}: election failed oddly: {e}")),
            }
        }
    }

    // ---- Staged scenario: quorum loss refuses election -------------
    quorum_loss_scenario(&base_dir.join("q-loss"), &workload, &mut outcome)?;

    if outcome.fenced_refusals == 0 {
        return Err("no failover ever probed the dual-primary invariant".to_string());
    }
    if outcome.elections == 0 {
        return Err("no election ever ran".to_string());
    }

    std::fs::remove_dir_all(&free_dir).ok();
    std::fs::remove_dir_all(&a_dir).ok();
    std::fs::remove_dir_all(&b_dir).ok();
    Ok(outcome)
}

// ---------------------------------------------------- membership sweep

/// What a [`membership_sweep`] established.
#[derive(Debug, Default)]
pub struct MembershipSweepOutcome {
    /// Total injection points exercised across all classes.
    pub injection_points: u64,
    /// Runs where the primary's I/O crashed mid-reconfiguration.
    pub primary_crashes: u64,
    /// Runs with an injected partition of the joiner or the removed
    /// member.
    pub partitions: u64,
    /// Learner promotions observed (catch-up-before-vote completing).
    pub promotions: u64,
    /// Journaled removals that completed.
    pub removals: u64,
    /// Elections won during or after a reconfiguration.
    pub elections: u64,
    /// Deposed primaries probed refusing a write — the dual-primary
    /// invariant under reconfiguration.
    pub fenced_refusals: u64,
    /// Forged acks from a removed id that the watermark ignored.
    pub stale_acks_fenced: u64,
    /// Reconfigurations that completed *after* a failover — the
    /// in-flight change survives the primary's crash.
    pub resumed_reconfigs: u64,
    /// Crashes so early no member held state to elect.
    pub unpromotable: u64,
    /// Commits that timed out waiting for quorum.
    pub unreplicated_commits: u64,
    /// Logical records in the workload.
    pub records: usize,
}

/// Result of one scripted membership-change run.
struct MembershipRun {
    set: Option<ClusterSet<MemberPartition>>,
    /// Every quorum-acknowledged `(lsn, crc)` pair.
    acked: Vec<(u64, u32)>,
    /// LSN of the journaled add, once issued.
    add_lsn: Option<u64>,
    /// The learner was promoted to voter.
    promoted: bool,
    /// The journaled remove completed.
    remove_done: bool,
    unreplicated: u64,
    primary_crashed: bool,
}

/// Commits one record under quorum inside the scripted run; returns
/// `false` when the primary crashed (script must stop).
fn script_commit(
    set: &mut ClusterSet<MemberPartition>,
    record: WalRecord,
    run: &mut MembershipRun,
) -> Result<bool, String> {
    match set.commit_quorum(record) {
        Ok(lsn) => {
            let crc = set
                .primary()
                .expect("primary lives")
                .tailer()
                .crc_at(lsn)
                .map_err(|e| format!("crc_at({lsn}) failed: {e}"))?;
            if let Some(crc) = crc {
                run.acked.push((lsn, crc));
            }
            Ok(true)
        }
        Err(ReplicaError::Durable(DurableError::Unreplicated { .. })) => {
            run.unreplicated += 1;
            Ok(true)
        }
        Err(ReplicaError::Durable(e)) if e.is_io_class() => {
            run.primary_crashed = true;
            Ok(false)
        }
        Err(e) => Err(format!("scripted commit failed non-faultily: {e}")),
    }
}

/// Drives one scripted membership-change workload: base traffic on
/// primary + m1 + m2, a checkpoint (pruning the tail the joiner will
/// need, forcing the snapshot path), a journaled **add** of `m3`
/// (learner until caught up), traffic during catch-up, a journaled
/// **remove** of `m1`, and tail traffic under the shrunk group. Ends
/// with the forged-ack probe: a stale ack from the removed id must
/// never move the watermark.
fn run_membership(
    base: &Path,
    workload: &Workload,
    primary_io: Io,
    transport: MemberPartition,
) -> Result<MembershipRun, String> {
    std::fs::remove_dir_all(base).ok();
    let mut run = MembershipRun {
        set: None,
        acked: Vec::new(),
        add_lsn: None,
        promoted: false,
        remove_done: false,
        unreplicated: 0,
        primary_crashed: false,
    };
    let mut set = match ClusterSet::bootstrap(
        base,
        workload.seed_schema.clone(),
        sweep_options(),
        sweep_group_config(),
        sweep_cluster_config(),
        transport,
        primary_io,
    ) {
        Ok(set) => set,
        Err(ReplicaError::Durable(e)) if e.is_io_class() => {
            run.primary_crashed = true;
            return Ok(run);
        }
        Err(e) => return Err(format!("membership bootstrap failed non-faultily: {e}")),
    };
    set.add_member("m1", Io::plain());
    set.add_member("m2", Io::plain());

    // Split the workload: the last six ops are reserved as the
    // traffic that rides *through* the reconfiguration phases.
    let op_positions: Vec<usize> = workload
        .steps
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Step::Op(_)))
        .map(|(i, _)| i)
        .collect();
    let reserve = 6.min(op_positions.len().saturating_sub(1));
    let phase_cut = op_positions[op_positions.len() - reserve];
    let tail_ops: Vec<WalRecord> = workload.steps[phase_cut..]
        .iter()
        .filter_map(|s| match s {
            Step::Op(r) => Some(r.clone()),
            Step::Checkpoint => None,
        })
        .collect();

    // Phase 1 — base traffic.
    for step in &workload.steps[..phase_cut] {
        let ok = match step {
            Step::Op(record) => script_commit(&mut set, record.clone(), &mut run)?,
            Step::Checkpoint => match set.checkpoint() {
                Ok(()) => true,
                Err(ReplicaError::Durable(e)) if e.is_io_class() => {
                    run.primary_crashed = true;
                    false
                }
                Err(e) => return Err(format!("scripted checkpoint failed: {e}")),
            },
        };
        if !ok {
            run.set = Some(set);
            return Ok(run);
        }
    }
    // Checkpoint so the joiner's tail is pruned: its bootstrap must go
    // through the snapshot path, not a frame replay from LSN 1.
    if let Err(e) = set.checkpoint() {
        match e {
            ReplicaError::Durable(e) if e.is_io_class() => {
                run.primary_crashed = true;
                run.set = Some(set);
                return Ok(run);
            }
            e => return Err(format!("pre-join checkpoint failed: {e}")),
        }
    }

    // Phase 2 — journaled add of m3; it enters as a learner.
    match set.reconfig_add("m3", "local://m3", Io::plain()) {
        Ok(lsn) => run.add_lsn = Some(lsn),
        Err(ReplicaError::Durable(e)) if e.is_io_class() => {
            run.primary_crashed = true;
            run.set = Some(set);
            return Ok(run);
        }
        Err(e) => return Err(format!("reconfig_add failed non-faultily: {e}")),
    }
    if !set.is_learner("m3") {
        return Err("joiner did not enter as a learner".to_string());
    }
    let mut tail = tail_ops.into_iter();
    for record in tail.by_ref().take(2) {
        if !script_commit(&mut set, record, &mut run)? {
            run.set = Some(set);
            return Ok(run);
        }
    }
    // Catch-up: ticks until the learner's synced position reaches the
    // watermark and the supervisor promotes it. Promotion may already
    // have happened inside a commit's own supervision rounds, so the
    // *state* — not the event stream — is the authority.
    for _ in 0..DRAIN_TICKS {
        if set.pending_reconfig().is_none() && !set.is_learner("m3") {
            run.promoted = true;
            break;
        }
        set.tick();
    }

    // Phase 3 — journaled remove of m1 (even while it is partitioned:
    // removal must never need the removed member's cooperation).
    if run.promoted {
        match set.reconfig_remove("m1") {
            Ok(_) => {}
            Err(ReplicaError::Durable(e)) if e.is_io_class() => {
                run.primary_crashed = true;
                run.set = Some(set);
                return Ok(run);
            }
            Err(e) => return Err(format!("reconfig_remove failed non-faultily: {e}")),
        }
        for record in tail.by_ref().take(2) {
            if !script_commit(&mut set, record, &mut run)? {
                run.set = Some(set);
                return Ok(run);
            }
        }
        for _ in 0..DRAIN_TICKS {
            if set.pending_reconfig().is_none() {
                run.remove_done = true;
                break;
            }
            set.tick();
        }
        // Tail traffic under the shrunk group.
        for record in tail {
            if !script_commit(&mut set, record, &mut run)? {
                run.set = Some(set);
                return Ok(run);
            }
        }
    }
    run.set = Some(set);
    Ok(run)
}

/// Probes that a forged ack from the removed member id cannot move
/// the quorum watermark — "no quorum counted against a stale group".
fn probe_stale_ack(
    set: &ClusterSet<MemberPartition>,
    outcome: &mut MembershipSweepOutcome,
    what: &str,
) -> Result<(), String> {
    let Some(p) = set.primary() else {
        return Ok(());
    };
    let before = p.quorum_lsn();
    p.group().member_synced("m1", u64::MAX);
    if p.quorum_lsn() != before {
        return Err(format!(
            "{what}: a forged ack from removed `m1` moved the watermark \
             ({before} -> {})",
            p.quorum_lsn()
        ));
    }
    outcome.stale_acks_fenced += 1;
    Ok(())
}

/// Ticks until member `name` reaches the primary's head, then asserts
/// its replicated schema is byte-identical to the primary's.
fn converge_membership(
    set: &mut ClusterSet<MemberPartition>,
    name: &str,
    what: &str,
) -> Result<(), String> {
    let head = set.primary().expect("primary lives").wal_position();
    for _ in 0..DRAIN_TICKS {
        if set.member(name).is_some_and(|f| f.next_lsn() >= head) {
            break;
        }
        set.tick();
    }
    let primary_bytes = serialise(&set.primary().expect("primary lives").schema());
    let f = set
        .member(name)
        .ok_or_else(|| format!("{what}: member {name} missing"))?;
    if f.next_lsn() < head {
        return Err(format!(
            "{what}: member {name} stopped at LSN {} of {head}",
            f.next_lsn()
        ));
    }
    let schema = f
        .schema()
        .ok_or_else(|| format!("{what}: member {name} never bootstrapped"))?;
    if serialise(schema) != primary_bytes {
        return Err(format!("{what}: member {name} diverged from the primary"));
    }
    Ok(())
}

/// After a crash-driven failover, completes whatever reconfiguration
/// was still in flight: a pending add must still promote the learner
/// under the new primary; a pending remove must still commit under
/// the shrunk group (probe commits push the watermark past it).
fn resume_reconfig(
    set: &mut ClusterSet<MemberPartition>,
    workload: &Workload,
    run: &mut MembershipRun,
    outcome: &mut MembershipSweepOutcome,
    what: &str,
) -> Result<(), String> {
    let Some(pending) = set.pending_reconfig().cloned() else {
        return Ok(());
    };
    if pending.add {
        if set.member(&pending.member).is_none() {
            return Err(format!("{what}: pending joiner vanished across failover"));
        }
        for _ in 0..DRAIN_TICKS {
            if set.pending_reconfig().is_none() {
                break;
            }
            set.tick();
        }
        if set.pending_reconfig().is_some() {
            return Err(format!(
                "{what}: in-flight add never completed after the failover"
            ));
        }
        run.promoted = true;
    } else {
        for _ in 0..8 {
            if set.pending_reconfig().is_none() {
                break;
            }
            let _ = script_commit(set, probe_record(workload), run)?;
        }
        if set.pending_reconfig().is_some() {
            return Err(format!(
                "{what}: in-flight remove never committed after the failover"
            ));
        }
        run.remove_done = true;
    }
    outcome.resumed_reconfigs += 1;
    Ok(())
}

/// Staged dual-primary scenario: an operator failover *while the add
/// is in flight* (learner unpromoted). The deposed primary must be
/// fenced and refuse a write; the winner must not be the learner; the
/// add must complete under the new primary.
fn reconfig_failover_scenario(
    base: &Path,
    workload: &Workload,
    outcome: &mut MembershipSweepOutcome,
) -> Result<(), String> {
    let mut run = run_membership(base, workload, Io::plain(), MemberPartition::clean())?;
    let mut set = run.set.take().expect("clean run has a set");
    // Re-issue a fresh add so a reconfiguration is in flight now: the
    // clean run completed both changes, so add a fourth member.
    let lsn = set
        .reconfig_add("m4", "local://m4", Io::plain())
        .map_err(|e| format!("failover scenario: add refused: {e}"))?;
    // A second change while this one is in flight must be refused with
    // the typed error.
    match set.reconfig_remove("m2") {
        Err(ReplicaError::Durable(DurableError::ReconfigInFlight { lsn: at, member })) => {
            if at != lsn || member != "m4" {
                return Err(format!(
                    "failover scenario: ReconfigInFlight names ({member}, {at}), \
                     expected (m4, {lsn})"
                ));
            }
        }
        other => {
            return Err(format!(
                "failover scenario: overlapping reconfig not refused ({other:?})"
            ))
        }
    }
    let old = set.kill_primary().expect("primary present");
    drop(old);
    let (winner, epoch) = set
        .elect()
        .map_err(|e| format!("failover scenario: election failed: {e}"))?;
    outcome.elections += 1;
    if winner == "m4" {
        return Err("failover scenario: unpromoted learner won the election".to_string());
    }
    assert_acked_present(&set, &run.acked, "failover scenario")?;
    // Rejoin the deposed primary, then probe the dual-primary
    // invariant through a retired handle: a second operator failover
    // fences the *standing* primary.
    match set.rejoin_member("primary") {
        Ok(_) => {}
        Err(e) => return Err(format!("failover scenario: rejoin failed: {e}")),
    }
    resume_reconfig(&mut set, workload, &mut run, outcome, "failover scenario")?;
    let _ = set.run_ticks(8);
    match set.elect() {
        Ok((_, epoch2)) => {
            outcome.elections += 1;
            if epoch2 <= epoch {
                return Err("failover scenario: epoch did not advance".to_string());
            }
            let old = set.retired_mut().expect("deposed primary retained");
            if !old.is_fenced() {
                return Err("failover scenario: deposed primary not fenced".to_string());
            }
            match old.commit(probe_record(workload)) {
                Err(ReplicaError::Fenced { epoch: at }) if at == epoch2 => {
                    outcome.fenced_refusals += 1;
                }
                other => {
                    return Err(format!(
                        "failover scenario: deposed primary accepted a write ({other:?})"
                    ))
                }
            }
        }
        Err(e) => return Err(format!("failover scenario: second election failed: {e}")),
    }
    std::fs::remove_dir_all(base).ok();
    Ok(())
}

/// Sweeps every fault-injection point of a scripted **membership
/// change** (journaled add with learner catch-up, then a journaled
/// remove) and checks, at each point: **no quorum-acknowledged commit
/// is ever lost**, **no two primaries accept writes in the same
/// epoch**, **an unpromoted learner never wins an election**, and **no
/// quorum is ever counted against a stale group** (forged acks from
/// the removed id are fenced; an in-flight change survives failover
/// and completes under the new primary).
///
/// # Errors
///
/// A description of the first violated invariant — any `Err` is a
/// cluster bug.
pub fn membership_sweep(
    base_dir: &Path,
    seed: u64,
    target_records: usize,
) -> Result<MembershipSweepOutcome, String> {
    let workload = generate(seed, target_records);
    let mut outcome = MembershipSweepOutcome {
        records: workload.records,
        ..MembershipSweepOutcome::default()
    };

    // ---- Stage 0: fault-free membership run ------------------------
    let free_dir = base_dir.join("m-free");
    let free = run_membership(&free_dir, &workload, Io::plain(), MemberPartition::clean())?;
    if free.primary_crashed {
        return Err("fault-free membership run crashed".to_string());
    }
    if !free.promoted || !free.remove_done {
        return Err(format!(
            "fault-free membership run: promoted={}, remove_done={}",
            free.promoted, free.remove_done
        ));
    }
    let mut set = free.set.expect("fault-free run has a set");
    if set.group_size() != 3 {
        return Err(format!(
            "fault-free membership run: group size {} after add+remove, expected 3",
            set.group_size()
        ));
    }
    probe_stale_ack(&set, &mut outcome, "fault-free")?;
    assert_acked_present(&set, &free.acked, "fault-free membership")?;
    converge_membership(&mut set, "m2", "fault-free membership")?;
    converge_membership(&mut set, "m3", "fault-free membership")?;
    outcome.promotions += 1;
    outcome.removals += 1;
    let primary_points = set
        .primary()
        .expect("primary lives")
        .group()
        .with_store(mvolap_durable::DurableTmd::io_ops);
    let transport_points = set.transport_steps();
    drop(set);

    // ---- Stage A: crash the primary at every I/O primitive ---------
    let a_dir = base_dir.join("m-crash");
    for k in 0..primary_points {
        outcome.injection_points += 1;
        let io = Io::faulty(FaultPlan::crash_after(k, seed));
        let mut run = run_membership(&a_dir, &workload, io, MemberPartition::clean())?;
        let Some(mut set) = run.set.take() else {
            outcome.primary_crashes += 1;
            outcome.unpromotable += 1;
            continue;
        };
        if !run.primary_crashed {
            assert_acked_present(&set, &run.acked, &format!("member crash {k} (no-fire)"))?;
            continue;
        }
        outcome.primary_crashes += 1;
        outcome.unreplicated_commits += run.unreplicated;
        let learner_standing = set.is_learner("m3");
        let old = set.kill_primary().expect("primary present before kill");
        drop(old);
        match set.elect() {
            Ok((winner, _epoch)) => {
                outcome.elections += 1;
                if learner_standing && winner == "m3" {
                    return Err(format!(
                        "member crash {k}: unpromoted learner won the election"
                    ));
                }
                assert_acked_present(&set, &run.acked, &format!("member crash {k}"))?;
                match set.rejoin_member("primary") {
                    Ok(_) => {}
                    Err(e) => return Err(format!("member crash {k}: rejoin failed: {e}")),
                }
                resume_reconfig(
                    &mut set,
                    &workload,
                    &mut run,
                    &mut outcome,
                    &format!("member crash {k}"),
                )?;
                assert_acked_present(&set, &run.acked, &format!("member crash {k} post-resume"))?;
            }
            Err(ReplicaError::NoQuorum { .. }) if run.acked.is_empty() => {
                outcome.unpromotable += 1;
            }
            Err(e) => {
                return Err(format!(
                    "member crash {k}: election failed despite {} acked commits: {e}",
                    run.acked.len()
                ))
            }
        }
    }

    // ---- Stage B: partition the joiner / the removed member --------
    let b_dir = base_dir.join("m-partition");
    // Every protocol step, bounded to keep the sweep tractable: the
    // stride still lands points in every phase of the script.
    let stride = (transport_points / 128).max(1) as usize;
    for j in (0..transport_points).step_by(stride) {
        outcome.injection_points += 1;
        outcome.partitions += 1;
        if (j / stride as u64).is_multiple_of(2) {
            // The *joiner* suffers a healing outage mid-catch-up: the
            // snapshot transfer and promotion must still complete.
            let transport = MemberPartition::new(&["m3"], j, OUTAGE_OPS);
            let run = run_membership(&b_dir, &workload, Io::plain(), transport)?;
            if run.primary_crashed {
                return Err(format!("member partition {j}: primary was disturbed"));
            }
            let mut set = run.set.expect("set lives");
            outcome.unreplicated_commits += run.unreplicated;
            if !run.promoted {
                return Err(format!(
                    "member partition {j}: joiner never promoted after the outage healed"
                ));
            }
            if !run.remove_done {
                return Err(format!("member partition {j}: removal never completed"));
            }
            assert_acked_present(&set, &run.acked, &format!("member partition {j}"))?;
            probe_stale_ack(&set, &mut outcome, &format!("member partition {j}"))?;
            converge_membership(&mut set, "m3", &format!("member partition {j}"))?;
            outcome.promotions += 1;
            outcome.removals += 1;
        } else {
            // The member being *removed* is cut permanently: removal
            // must never need its cooperation, and the group must
            // re-route quorum through the surviving voters.
            let transport = MemberPartition::new(&["m1"], j, u64::MAX);
            let run = run_membership(&b_dir, &workload, Io::plain(), transport)?;
            if run.primary_crashed {
                return Err(format!("member partition {j}: primary was disturbed"));
            }
            let mut set = run.set.expect("set lives");
            outcome.unreplicated_commits += run.unreplicated;
            if !run.promoted {
                return Err(format!(
                    "member partition {j}: joiner never promoted with m1 cut"
                ));
            }
            if !run.remove_done {
                return Err(format!(
                    "member partition {j}: removing a partitioned member never completed"
                ));
            }
            if set.member("m1").is_some() {
                return Err(format!("member partition {j}: removed member still routed"));
            }
            assert_acked_present(&set, &run.acked, &format!("member partition {j}"))?;
            probe_stale_ack(&set, &mut outcome, &format!("member partition {j}"))?;
            converge_membership(&mut set, "m3", &format!("member partition {j}"))?;
            outcome.promotions += 1;
            outcome.removals += 1;
        }
    }

    // ---- Staged scenario: failover mid-reconfiguration -------------
    reconfig_failover_scenario(&base_dir.join("m-failover"), &workload, &mut outcome)?;
    outcome.injection_points += 1;

    if outcome.fenced_refusals == 0 {
        return Err("no failover ever probed the dual-primary invariant".to_string());
    }
    if outcome.stale_acks_fenced == 0 {
        return Err("no run ever probed the stale-group fence".to_string());
    }
    if outcome.promotions == 0 || outcome.removals == 0 {
        return Err("the sweep never completed a reconfiguration".to_string());
    }

    std::fs::remove_dir_all(&free_dir).ok();
    std::fs::remove_dir_all(&a_dir).ok();
    std::fs::remove_dir_all(&b_dir).ok();
    Ok(outcome)
}
