//! Loopback serving assembly: one primary session server with fleet
//! read routing plus one read server per member, all on local
//! addresses — the three-node quick-start from the README, packaged.
//!
//! The assembly is deliberately explicit about replication: nothing
//! moves until [`LocalCluster::pump`] ships the primary's tail to every
//! member and reports their acked positions into the quorum tracker.
//! Tests, the example and the shell drive it one pump at a time, so
//! every staleness bound and quorum refusal is reproducible.

use std::path::Path;

use mvolap_core::Tmd;
use mvolap_durable::{DurableTmd, GroupCommit, GroupConfig, Io, Options};
use mvolap_replica::{Follower, NetAddr, NetConfig};
use mvolap_server::{FleetMember, ServerOptions, SessionServer};
use mvolap_server::{ServerError, SessionClient};

/// A quorum-replicated serving group on loopback: the primary's
/// session server (writes, primary reads, fleet-routed bounded reads)
/// and one read server per member, each fronting that member's
/// replica.
pub struct LocalCluster {
    primary: SessionServer,
    readers: Vec<(String, SessionServer)>,
    commit: GroupCommit,
}

impl LocalCluster {
    /// Creates a fresh primary store seeded with `schema` under
    /// `dir/primary` and one replica per `(name, bind)` in `members`
    /// under `dir/<name>`, then spawns every server. The quorum is
    /// sized to the whole group (primary plus members).
    ///
    /// # Errors
    ///
    /// [`ServerError::Commit`] when a store cannot be created,
    /// [`ServerError::Transport`] when an address cannot be bound.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        dir: &Path,
        schema: Tmd,
        primary_bind: &NetAddr,
        members: &[(String, NetAddr)],
        store_opts: Options,
        group_cfg: GroupConfig,
        opts: ServerOptions,
        net: NetConfig,
    ) -> Result<LocalCluster, ServerError> {
        let store = DurableTmd::create_with(
            &dir.join("primary"),
            schema,
            store_opts.clone(),
            Io::plain(),
        )
        .map_err(|e| ServerError::Commit(e.to_string()))?;
        let commit = GroupCommit::new(store, group_cfg);
        commit.configure_quorum(members.len() + 1);

        let mut readers = Vec::with_capacity(members.len());
        let mut fleet = Vec::with_capacity(members.len());
        for (name, bind) in members {
            let follower = Follower::create(name, dir.join(name), store_opts.clone(), Io::plain());
            let server =
                SessionServer::spawn_with_follower(bind, commit.clone(), follower, opts.clone())?;
            fleet.push(FleetMember {
                name: name.clone(),
                addr: server.addr().clone(),
            });
            readers.push((name.clone(), server));
        }
        let primary =
            SessionServer::spawn_with_fleet(primary_bind, commit.clone(), fleet, net, opts)?;
        Ok(LocalCluster {
            primary,
            readers,
            commit,
        })
    }

    /// The primary session server's address — where clients `commit`,
    /// `query` and send bounded `read`s for fleet routing.
    #[must_use]
    pub fn primary_addr(&self) -> &NetAddr {
        self.primary.addr()
    }

    /// The read servers' addresses, in member order.
    #[must_use]
    pub fn member_addrs(&self) -> Vec<(String, NetAddr)> {
        self.readers
            .iter()
            .map(|(n, s)| (n.clone(), s.addr().clone()))
            .collect()
    }

    /// A clone of the primary's group-commit handle (quorum watermark,
    /// WAL position, out-of-band writes).
    #[must_use]
    pub fn group(&self) -> GroupCommit {
        self.commit.clone()
    }

    /// One replication round: ships the primary's tail to every member
    /// and reports each member's applied position into the quorum
    /// tracker, releasing any commit waiting for majority ack. Returns
    /// `(name, applied_lsn)` per member.
    ///
    /// # Errors
    ///
    /// Whatever [`SessionServer::pump_follower`] raises for the first
    /// failing member.
    pub fn pump(&self) -> Result<Vec<(String, u64)>, ServerError> {
        let mut positions = Vec::with_capacity(self.readers.len());
        for (name, server) in &self.readers {
            let applied = server.pump_follower()?;
            // A member that applied LSN n has journaled and fsynced
            // through n in its own store — that is the quorum ack.
            // The tracker speaks next-LSN ("synced everything below"),
            // hence the +1.
            self.commit.member_synced(name, applied + 1);
            positions.push((name.clone(), applied));
        }
        Ok(positions)
    }

    /// A session client for the primary server.
    #[must_use]
    pub fn client(&self, net: NetConfig) -> SessionClient {
        SessionClient::connect(self.primary.addr().clone(), net)
    }

    /// Stops every server (primary first, so no new commits race the
    /// readers' shutdown). Idempotent; also run on drop.
    pub fn stop(&mut self) {
        self.primary.stop();
        for (_, server) in &mut self.readers {
            server.stop();
        }
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        self.stop();
    }
}
