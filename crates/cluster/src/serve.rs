//! Loopback serving assembly: one primary session server with fleet
//! read routing plus one read server per member, all on local
//! addresses — the three-node quick-start from the README, packaged.
//!
//! Replication runs in two gears. The explicit gear is
//! [`LocalCluster::pump`]: one shipping round per call, driven by the
//! caller, so tests can reproduce every staleness bound and quorum
//! refusal. The serving gear is [`LocalCluster::spawn_pumps`]: one
//! dedicated shipping thread per member ([`MemberPump`]) that tails
//! the primary's WAL, ships batched frame envelopes with a bounded
//! in-flight window, and feeds acks into the quorum tracker
//! continuously — commits then clear the quorum in one shipping
//! round-trip with nobody driving a loop.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mvolap_core::Tmd;
use mvolap_durable::{DurableTmd, GroupCommit, GroupConfig, Io, Options, WalRecord};
use mvolap_replica::{Follower, NetAddr, NetConfig};
use mvolap_server::{FleetMember, ServerOptions, SessionServer};
use mvolap_server::{ServerError, SessionClient};

use crate::pump::{MemberPump, MemberPumpStatus, PumpConfig, PumpShared, PumpThread, PumpTracker};
use crate::set::PendingReconfig;

/// A quorum-replicated serving group on loopback: the primary's
/// session server (writes, primary reads, fleet-routed bounded reads)
/// and one read server per member, each fronting that member's
/// replica.
pub struct LocalCluster {
    primary: SessionServer,
    readers: Vec<(String, SessionServer)>,
    commit: GroupCommit,
    base: PathBuf,
    primary_dir: PathBuf,
    store_opts: Options,
    server_opts: ServerOptions,
    voters: usize,
    pending: Option<PendingReconfig>,
    pump_cfg: Option<PumpConfig>,
    pump_shared: Option<Arc<PumpShared>>,
    pump_tracker: PumpTracker,
    pumps: Vec<PumpThread>,
}

impl LocalCluster {
    /// Creates a fresh primary store seeded with `schema` under
    /// `dir/primary` and one replica per `(name, bind)` in `members`
    /// under `dir/<name>`, then spawns every server. The quorum is
    /// sized to the whole group (primary plus members). Replication
    /// starts stalled: drive it per round with [`LocalCluster::pump`]
    /// or hand it to shipping threads with
    /// [`LocalCluster::spawn_pumps`].
    ///
    /// # Errors
    ///
    /// [`ServerError::Commit`] when a store cannot be created,
    /// [`ServerError::Transport`] when an address cannot be bound.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        dir: &Path,
        schema: Tmd,
        primary_bind: &NetAddr,
        members: &[(String, NetAddr)],
        store_opts: Options,
        group_cfg: GroupConfig,
        opts: ServerOptions,
        net: NetConfig,
    ) -> Result<LocalCluster, ServerError> {
        let primary_dir = dir.join("primary");
        let store = DurableTmd::create_with(&primary_dir, schema, store_opts.clone(), Io::plain())
            .map_err(|e| ServerError::Commit(e.to_string()))?;
        let commit = GroupCommit::new(store, group_cfg);
        commit.configure_quorum(members.len() + 1);

        let mut readers = Vec::with_capacity(members.len());
        let mut fleet = Vec::with_capacity(members.len());
        for (name, bind) in members {
            let follower = Follower::create(name, dir.join(name), store_opts.clone(), Io::plain());
            let server =
                SessionServer::spawn_with_follower(bind, commit.clone(), follower, opts.clone())?;
            fleet.push(FleetMember {
                name: name.clone(),
                addr: server.addr().clone(),
            });
            readers.push((name.clone(), server));
        }
        let primary = SessionServer::spawn_with_fleet(
            primary_bind,
            commit.clone(),
            fleet,
            net,
            opts.clone(),
        )?;
        Ok(LocalCluster {
            primary,
            readers,
            commit,
            base: dir.to_path_buf(),
            primary_dir,
            store_opts,
            server_opts: opts,
            voters: members.len() + 1,
            pending: None,
            pump_cfg: None,
            pump_shared: None,
            pump_tracker: PumpTracker::new(),
            pumps: Vec::new(),
        })
    }

    /// The primary session server's address — where clients `commit`,
    /// `query` and send bounded `read`s for fleet routing.
    #[must_use]
    pub fn primary_addr(&self) -> &NetAddr {
        self.primary.addr()
    }

    /// The read servers' addresses, in member order.
    #[must_use]
    pub fn member_addrs(&self) -> Vec<(String, NetAddr)> {
        self.readers
            .iter()
            .map(|(n, s)| (n.clone(), s.addr().clone()))
            .collect()
    }

    /// A clone of the primary's group-commit handle (quorum watermark,
    /// WAL position, out-of-band writes).
    #[must_use]
    pub fn group(&self) -> GroupCommit {
        self.commit.clone()
    }

    /// Hands replication to dedicated shipping threads: one
    /// [`MemberPump`] per member, each tailing the primary's WAL and
    /// shipping batched envelopes under `cfg`'s in-flight window.
    /// From here commits clear the quorum without anybody calling
    /// [`LocalCluster::pump`], and fleet read freshness advances on
    /// its own. Idempotent — later calls are no-ops while pumps run.
    pub fn spawn_pumps(&mut self, cfg: PumpConfig) {
        if self.pump_shared.is_some() {
            return;
        }
        let shared = PumpShared::new(self.commit.clone(), self.current_epoch());
        for (name, server) in &self.readers {
            let Some(follower) = server.follower_handle() else {
                continue;
            };
            let pump = MemberPump::new(
                shared.clone(),
                name.clone(),
                follower,
                &self.primary_dir,
                cfg.clone(),
                self.pump_tracker.clone(),
            );
            self.pumps.push(pump.spawn());
        }
        self.pump_cfg = Some(cfg);
        self.pump_shared = Some(shared);
    }

    /// Journals a single-member **add** through the WAL and quorum
    /// machinery: a `Reconfig` record is appended and fsynced like any
    /// commit, the majority threshold grows by one effective exactly
    /// at that record's LSN, and `name` enters as a **non-voting
    /// learner** — its pump (spawned here when shipping threads are
    /// running) ships the covering checkpoint snapshot in resumable
    /// chunks and then tails frames. The joiner is promoted to voter,
    /// added to fleet read routing, and allowed to stand in elections
    /// only once [`LocalCluster::settle_membership`] (or
    /// [`LocalCluster::await_membership`]) observes its synced
    /// position at the quorum watermark. Returns the reconfig record's
    /// LSN.
    ///
    /// # Errors
    ///
    /// [`ServerError::Commit`] when a prior reconfiguration is still
    /// in flight ([`mvolap_durable::DurableError::ReconfigInFlight`]),
    /// when `name` is already in the group, or when the record cannot
    /// be journaled; [`ServerError::Transport`] when `bind` cannot be
    /// bound.
    pub fn join(&mut self, name: &str, bind: &NetAddr) -> Result<u64, ServerError> {
        if let Some(p) = &self.pending {
            return Err(ServerError::Commit(
                mvolap_durable::DurableError::ReconfigInFlight {
                    lsn: p.lsn,
                    member: p.member.clone(),
                }
                .to_string(),
            ));
        }
        if self.readers.iter().any(|(n, _)| n == name) || name == "primary" {
            return Err(ServerError::Commit(format!(
                "`{name}` is already a member of the group"
            )));
        }
        let lsn = self
            .commit
            .commit(WalRecord::Reconfig {
                epoch: self.current_epoch(),
                add: true,
                member: name.to_string(),
                addr: bind.to_string(),
            })
            .map_err(|e| ServerError::Commit(e.to_string()))?;
        self.commit.configure_quorum_at(lsn, self.voters + 1);
        self.commit.add_learner(name);
        let follower = Follower::create(
            name,
            self.base.join(name),
            self.store_opts.clone(),
            Io::plain(),
        );
        let server = SessionServer::spawn_with_follower(
            bind,
            self.commit.clone(),
            follower,
            self.server_opts.clone(),
        )?;
        if let (Some(shared), Some(cfg)) = (&self.pump_shared, &self.pump_cfg) {
            if let Some(handle) = server.follower_handle() {
                let pump = MemberPump::new(
                    shared.clone(),
                    name.to_string(),
                    handle,
                    &self.primary_dir,
                    cfg.clone(),
                    self.pump_tracker.clone(),
                );
                self.pumps.push(pump.spawn());
            }
        }
        self.readers.push((name.to_string(), server));
        self.pending = Some(PendingReconfig {
            lsn,
            add: true,
            member: name.to_string(),
            addr: bind.to_string(),
        });
        Ok(lsn)
    }

    /// Journals a single-member **remove**: the `Reconfig` record is
    /// appended and fsynced, the majority threshold shrinks by one
    /// effective at its LSN, the member's pump is halted and drained,
    /// its id is fenced against late acks, its read server stops, and
    /// fleet reads re-route to the next-freshest member immediately.
    /// Returns the reconfig record's LSN; the change completes once
    /// the record is quorum-committed under the shrunk group
    /// ([`LocalCluster::settle_membership`]).
    ///
    /// # Errors
    ///
    /// [`ServerError::Commit`] when a prior reconfiguration is still
    /// in flight, when `name` is not a member, or when the record
    /// cannot be journaled.
    pub fn leave(&mut self, name: &str) -> Result<u64, ServerError> {
        if let Some(p) = &self.pending {
            return Err(ServerError::Commit(
                mvolap_durable::DurableError::ReconfigInFlight {
                    lsn: p.lsn,
                    member: p.member.clone(),
                }
                .to_string(),
            ));
        }
        let Some(idx) = self.readers.iter().position(|(n, _)| n == name) else {
            return Err(ServerError::Commit(format!(
                "`{name}` is not a member of the group"
            )));
        };
        let lsn = self
            .commit
            .commit(WalRecord::Reconfig {
                epoch: self.current_epoch(),
                add: false,
                member: name.to_string(),
                addr: String::new(),
            })
            .map_err(|e| ServerError::Commit(e.to_string()))?;
        self.voters -= 1;
        self.commit.configure_quorum_at(lsn, self.voters);
        self.commit.ban_member(name);
        self.primary.remove_fleet_member(name);
        if let Some(i) = self.pumps.iter().position(|p| p.member() == name) {
            let mut pump = self.pumps.remove(i);
            pump.stop();
            pump.join();
        }
        let (_, mut server) = self.readers.remove(idx);
        server.stop();
        self.pending = Some(PendingReconfig {
            lsn,
            add: false,
            member: name.to_string(),
            addr: String::new(),
        });
        Ok(lsn)
    }

    /// Completes the in-flight membership change when its condition
    /// holds — an add once the joiner's synced position covers both
    /// the reconfig record and the quorum watermark
    /// (catch-up-before-vote), a remove once its record is
    /// quorum-committed under the shrunk group. Returns the settled
    /// member's name, or `None` while the change is still in flight
    /// (or none is).
    pub fn settle_membership(&mut self) -> Option<String> {
        let pending = self.pending.clone()?;
        if pending.add {
            let synced = self
                .commit
                .member_positions()
                .into_iter()
                .find(|(n, _)| *n == pending.member)
                .map_or(0, |(_, p)| p);
            if synced > pending.lsn && synced >= self.commit.quorum_lsn() {
                self.commit.promote_voter(&pending.member);
                self.voters += 1;
                if let Some((_, server)) = self.readers.iter().find(|(n, _)| *n == pending.member) {
                    self.primary.add_fleet_member(FleetMember {
                        name: pending.member.clone(),
                        addr: server.addr().clone(),
                    });
                }
                self.pending = None;
                return Some(pending.member);
            }
        } else if self.commit.quorum_lsn() > pending.lsn {
            self.pending = None;
            return Some(pending.member);
        }
        None
    }

    /// Blocks until the in-flight membership change settles (shipping
    /// threads must be running, or nothing can catch the joiner up).
    ///
    /// # Errors
    ///
    /// [`ServerError::Commit`] naming the stuck member when `timeout`
    /// elapses first.
    pub fn await_membership(&mut self, timeout: Duration) -> Result<String, ServerError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(name) = self.settle_membership() {
                return Ok(name);
            }
            let Some(p) = &self.pending else {
                return Err(ServerError::Commit(
                    "no membership change in flight".to_string(),
                ));
            };
            if Instant::now() >= deadline {
                return Err(ServerError::Commit(format!(
                    "membership change for `{}` did not settle within {timeout:?}",
                    p.member
                )));
            }
            // Park until replication makes progress (acks notify), in
            // bounded slices so the deadline always fires.
            self.commit
                .wait_synced_past(p.lsn, Duration::from_millis(25));
        }
    }

    /// The membership change in flight, if any.
    #[must_use]
    pub fn reconfig_pending(&self) -> Option<&PendingReconfig> {
        self.pending.as_ref()
    }

    /// Every member and whether it is still an unpromoted learner.
    #[must_use]
    pub fn membership(&self) -> Vec<(String, bool)> {
        self.readers
            .iter()
            .map(|(n, _)| (n.clone(), self.commit.is_learner(n)))
            .collect()
    }

    /// Every member pump's typed state and counters (empty until
    /// [`LocalCluster::spawn_pumps`] starts the shipping threads).
    #[must_use]
    pub fn pump_status(&self) -> Vec<(String, MemberPumpStatus)> {
        self.pump_tracker.all()
    }

    /// A snapshot of the primary session server's pool counters —
    /// occupancy (active / queued / parked sessions), lifetime served /
    /// refused / forwarded totals and per-shard memo hits. This is the
    /// fleet's front door: `forwarded` counts the queries the primary
    /// spread onto member read servers.
    #[must_use]
    pub fn primary_stats(&self) -> mvolap_server::PoolStats {
        self.primary.pool_stats()
    }

    /// One replication round, caller-driven: ships the primary's tail
    /// to **every** member and reports each healthy member's applied
    /// position into the quorum tracker, releasing any commit waiting
    /// for majority ack. One failing member no longer aborts the
    /// round — the others still ship and ack, so a majority can
    /// advance past a partitioned straggler; its error is returned in
    /// that member's slot instead.
    pub fn pump(&self) -> Vec<(String, Result<u64, ServerError>)> {
        let mut rounds = Vec::with_capacity(self.readers.len());
        for (name, server) in &self.readers {
            let round = server.pump_follower().inspect(|&applied| {
                // A member that applied LSN n has journaled and
                // fsynced through n in its own store — that is the
                // quorum ack. The tracker speaks next-LSN ("synced
                // everything below"), hence the +1.
                self.commit.member_synced(name, applied + 1);
            });
            rounds.push((name.clone(), round));
        }
        rounds
    }

    /// A session client for the primary server.
    #[must_use]
    pub fn client(&self, net: NetConfig) -> SessionClient {
        SessionClient::connect(self.primary.addr().clone(), net)
    }

    /// Stops everything: the primary first (no new commits race the
    /// shutdown), then the shipping threads, then the read servers.
    /// Idempotent; also run on drop.
    pub fn stop(&mut self) {
        self.primary.stop();
        if let Some(shared) = &self.pump_shared {
            shared.request_stop();
        }
        for pump in &mut self.pumps {
            pump.join();
        }
        self.pumps.clear();
        for (_, server) in &mut self.readers {
            server.stop();
        }
    }

    /// The epoch pumps stamp on shipped envelopes: the members'
    /// current epoch (they all start aligned in this assembly).
    fn current_epoch(&self) -> u64 {
        self.readers
            .first()
            .and_then(|(_, s)| s.follower_handle())
            .map(|f| {
                f.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .epoch()
            })
            .unwrap_or(0)
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        self.stop();
    }
}
