//! # mvolap-storage
//!
//! A small, self-contained, in-memory columnar relational engine.
//!
//! The ICDE 2003 prototype sat on SQL Server 2000: a relational warehouse
//! server storing dimension tables, fact tables and metadata tables, with
//! the OLAP layer issuing scans, joins and GROUP-BY aggregations against
//! them. This crate is that substrate, built from scratch:
//!
//! * typed columnar [`Table`]s with a null-validity mask per column;
//! * a [`Predicate`] algebra for filtered scans;
//! * relational operators: projection, selection, sort, hash
//!   [`Table::group_by`], hash [`Table::join`], distinct;
//! * a named [`Catalog`] of tables — the "warehouse";
//! * [`HashIndex`] point lookups for dimension keys;
//! * text rendering used by the paper-table reproduction harness.
//!
//! The engine is deliberately single-node and in-memory: the paper's
//! contribution is the multiversion model on top, not the storage layer,
//! and an in-memory engine exercises the same code paths (layouts, joins,
//! aggregation) the prototype exercised on SQL Server.

pub mod catalog;
pub mod column;
pub mod error;
pub mod index;
pub mod ops;
pub mod persist;
pub mod predicate;
pub mod render;
pub mod schema;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use column::Column;
pub use error::StorageError;
pub use index::HashIndex;
pub use ops::{AggCall, AggFunc, SortKey, SortOrder};
pub use persist::PersistError;
pub use predicate::Predicate;
pub use schema::{ColumnDef, TableSchema};
pub use table::Table;
pub use value::{DataType, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
