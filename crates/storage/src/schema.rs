//! Table schemas.

use crate::{DataType, StorageError};

/// Definition of one column: name, type, nullability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, unique within the table.
    pub name: String,
    /// Declared data type.
    pub dtype: DataType,
    /// Whether NULL values are accepted.
    pub nullable: bool,
}

impl ColumnDef {
    /// A non-nullable column.
    pub fn required(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }
}

/// An ordered list of column definitions with unique names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Builds a schema, validating column-name uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::DuplicateColumn`] on a repeated name.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self, StorageError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StorageError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(TableSchema { columns })
    }

    /// The column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The named column's definition.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_names() {
        let err = TableSchema::new(vec![
            ColumnDef::required("a", DataType::Int),
            ColumnDef::required("a", DataType::Str),
        ])
        .unwrap_err();
        assert_eq!(err, StorageError::DuplicateColumn("a".into()));
    }

    #[test]
    fn lookup_by_name() {
        let s = TableSchema::new(vec![
            ColumnDef::required("id", DataType::Int),
            ColumnDef::nullable("name", DataType::Str),
        ])
        .unwrap();
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.column("name").unwrap().nullable);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.names(), vec!["id", "name"]);
    }
}
