//! Scalar values and data types.

use std::cmp::Ordering;

/// Column data types supported by the engine.
///
/// The warehouse only needs the types the paper's tables use: surrogate
/// keys and counts (`Int`), measures and mapping factors (`Float`), member
/// names and labels (`Str`), and flags (`Bool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A dynamically typed scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL-style NULL; valid in any nullable column.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value's data type, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Whether the value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a float; integers widen losslessly.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extracts a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL-style comparison: NULL compares less than everything (used only
    /// for deterministic sorting), numerics compare across `Int`/`Float`,
    /// and mismatched types order by type tag.
    pub fn sql_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            // Deterministic fallback for heterogeneous comparisons.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// SQL-style equality: NULL equals nothing, numerics compare across
    /// `Int`/`Float`.
    pub fn sql_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => false,
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64) == *b,
            (a, b) => a == b,
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 2, // numerics rank together
        Value::Str(_) => 3,
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.0}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_of_values() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::from("x").data_type(), Some(DataType::Str));
    }

    #[test]
    fn sql_eq_null_semantics() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).sql_eq(&Value::Float(2.5)));
    }

    #[test]
    fn sql_cmp_numeric_cross_type() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).sql_cmp(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn sql_cmp_null_first() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(i64::MIN)), Ordering::Less);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float(4.0).to_string(), "4");
        assert_eq!(Value::Float(0.4).to_string(), "0.4");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from("Sales").to_string(), "Sales");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::from("a").as_str(), Some("a"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Float(1.5).as_int(), None);
    }
}
