//! Row-validated columnar tables.

use crate::{Column, Predicate, StorageError, TableSchema, Value};

/// A named columnar table with schema-validated appends.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: TableSchema,
    columns: Vec<Column>,
    len: usize,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(name: impl Into<String>, schema: TableSchema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::new(c.dtype))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            len: 0,
        }
    }

    /// Creates an empty table pre-sized for `capacity` rows.
    pub fn with_capacity(name: impl Into<String>, schema: TableSchema, capacity: usize) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::with_capacity(c.dtype, capacity))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            len: 0,
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the table (catalog moves).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column at position `idx`. Panics if out of range (schema
    /// violations are programming errors; name-based access is fallible).
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The named column.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::UnknownColumn`] when absent.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, StorageError> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_owned(),
            })?;
        Ok(&self.columns[idx])
    }

    /// Appends a row, validating arity, types and nullability.
    ///
    /// # Errors
    ///
    /// [`StorageError::ArityMismatch`], [`StorageError::TypeMismatch`] or
    /// [`StorageError::NullViolation`]. On error the table is unchanged.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), StorageError> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                actual: row.len(),
            });
        }
        // Validate the whole row before mutating any column so a failure
        // leaves the table consistent.
        for (val, def) in row.iter().zip(self.schema.columns()) {
            if val.is_null() {
                if !def.nullable {
                    return Err(StorageError::NullViolation {
                        column: def.name.clone(),
                    });
                }
                continue;
            }
            let vt = val.data_type().expect("non-null value has a type");
            let compatible = vt == def.dtype
                || (vt == crate::DataType::Int && def.dtype == crate::DataType::Float);
            if !compatible {
                return Err(StorageError::TypeMismatch {
                    column: def.name.clone(),
                    expected: def.dtype,
                    value: val.to_string(),
                });
            }
        }
        for (val, col) in row.into_iter().zip(self.columns.iter_mut()) {
            col.push(val).expect("row pre-validated");
        }
        self.len += 1;
        Ok(())
    }

    /// Materialises row `row` as a `Vec<Value>`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::RowOutOfBounds`] past the end.
    pub fn row(&self, row: usize) -> Result<Vec<Value>, StorageError> {
        if row >= self.len {
            return Err(StorageError::RowOutOfBounds { row, len: self.len });
        }
        Ok(self
            .columns
            .iter()
            .map(|c| c.get(row).expect("row bound checked"))
            .collect())
    }

    /// Iterates over all rows, materialising each.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.len).map(move |r| self.row(r).expect("in-bounds"))
    }

    /// Returns a new table containing the rows satisfying `predicate`.
    ///
    /// # Errors
    ///
    /// Propagates predicate evaluation errors (e.g. unknown columns).
    pub fn filter(&self, predicate: &Predicate) -> Result<Table, StorageError> {
        let mut out = Table::new(self.name.clone(), self.schema.clone());
        for r in 0..self.len {
            if predicate.eval(self, r)? {
                out.push_row(self.row(r)?)?;
            }
        }
        Ok(out)
    }

    /// Projects the table onto the named columns (in the given order).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::UnknownColumn`] for unresolved names.
    pub fn project(&self, columns: &[&str]) -> Result<Table, StorageError> {
        let mut defs = Vec::with_capacity(columns.len());
        let mut idxs = Vec::with_capacity(columns.len());
        for &name in columns {
            let idx = self
                .schema
                .index_of(name)
                .ok_or_else(|| StorageError::UnknownColumn {
                    table: self.name.clone(),
                    column: name.to_owned(),
                })?;
            idxs.push(idx);
            defs.push(self.schema.columns()[idx].clone());
        }
        let schema = TableSchema::new(defs)?;
        let mut out = Table::with_capacity(self.name.clone(), schema, self.len);
        for r in 0..self.len {
            let row = idxs
                .iter()
                .map(|&i| self.columns[i].get(r).expect("in-bounds"))
                .collect();
            out.push_row(row)?;
        }
        Ok(out)
    }

    /// Approximate heap footprint in bytes across all columns.
    pub fn heap_bytes(&self) -> usize {
        self.columns.iter().map(Column::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType};

    fn schema() -> TableSchema {
        TableSchema::new(vec![
            ColumnDef::required("id", DataType::Int),
            ColumnDef::nullable("label", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn push_and_read_rows() {
        let mut t = Table::new("t", schema());
        t.push_row(vec![1.into(), "x".into()]).unwrap();
        t.push_row(vec![2.into(), Value::Null]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0).unwrap(), vec![Value::Int(1), Value::from("x")]);
        assert_eq!(t.row(1).unwrap()[1], Value::Null);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn arity_and_type_validation() {
        let mut t = Table::new("t", schema());
        assert!(matches!(
            t.push_row(vec![1.into()]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.push_row(vec!["oops".into(), "x".into()]),
            Err(StorageError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.push_row(vec![Value::Null, "x".into()]),
            Err(StorageError::NullViolation { .. })
        ));
        // Failed pushes leave the table unchanged.
        assert_eq!(t.len(), 0);
        assert_eq!(t.column(0).len(), 0);
    }

    #[test]
    fn filter_selects_matching_rows() {
        let mut t = Table::new("t", schema());
        for i in 0..10 {
            t.push_row(vec![i.into(), format!("r{i}").into()]).unwrap();
        }
        let f = t.filter(&Predicate::Ge("id".into(), 7.into())).unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f.row(0).unwrap()[0], Value::Int(7));
    }

    #[test]
    fn project_reorders_columns() {
        let mut t = Table::new("t", schema());
        t.push_row(vec![1.into(), "x".into()]).unwrap();
        let p = t.project(&["label", "id"]).unwrap();
        assert_eq!(p.schema().names(), vec!["label", "id"]);
        assert_eq!(p.row(0).unwrap(), vec![Value::from("x"), Value::Int(1)]);
        assert!(t.project(&["ghost"]).is_err());
    }

    #[test]
    fn int_widens_to_float_column_on_push() {
        let schema = TableSchema::new(vec![ColumnDef::required("m", DataType::Float)]).unwrap();
        let mut t = Table::new("t", schema);
        t.push_row(vec![5.into()]).unwrap();
        assert_eq!(t.row(0).unwrap(), vec![Value::Float(5.0)]);
    }
}
