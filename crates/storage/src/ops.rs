//! Relational operators: sort, hash group-by, hash join, distinct.

use std::collections::HashMap;

use crate::{ColumnDef, DataType, StorageError, Table, TableSchema, Value};

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (NULLs first).
    Asc,
    /// Descending (NULLs last).
    Desc,
}

/// One sort key: a column and a direction.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Column name.
    pub column: String,
    /// Direction.
    pub order: SortOrder,
}

impl SortKey {
    /// Ascending sort on `column`.
    pub fn asc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            order: SortOrder::Asc,
        }
    }

    /// Descending sort on `column`.
    pub fn desc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            order: SortOrder::Desc,
        }
    }
}

/// Aggregate functions supported by [`Table::group_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of a numeric column.
    Sum,
    /// Count of non-null values.
    Count,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Arithmetic mean of a numeric column.
    Avg,
}

impl AggFunc {
    /// Lower-case SQL-ish name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate call: function, input column, output column name.
#[derive(Debug, Clone)]
pub struct AggCall {
    /// Aggregate function.
    pub func: AggFunc,
    /// Input column.
    pub column: String,
    /// Name of the output column.
    pub alias: String,
}

impl AggCall {
    /// Builds an aggregate call with a default `func_column` alias.
    pub fn new(func: AggFunc, column: impl Into<String>) -> Self {
        let column = column.into();
        let alias = format!("{}_{}", func.name(), column);
        AggCall {
            func,
            column,
            alias,
        }
    }

    /// Overrides the output column name.
    pub fn with_alias(mut self, alias: impl Into<String>) -> Self {
        self.alias = alias.into();
        self
    }
}

/// A hashable, equality-comparable wrapper for group-by / join keys.
///
/// `f64` keys hash by bit pattern; all NULLs group together (SQL
/// `GROUP BY` semantics).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Null,
    Int(i64),
    Float(u64),
    Str(String),
    Bool(bool),
}

impl Key {
    fn from_value(v: &Value) -> Key {
        match v {
            Value::Null => Key::Null,
            Value::Int(i) => Key::Int(*i),
            // Normalise -0.0 so it joins with +0.0; also widen ints in
            // float columns consistently via Column typing upstream.
            Value::Float(f) => Key::Float((if *f == 0.0 { 0.0f64 } else { *f }).to_bits()),
            Value::Str(s) => Key::Str(s.clone()),
            Value::Bool(b) => Key::Bool(*b),
        }
    }
}

/// Running state for one aggregate within one group.
#[derive(Debug, Clone)]
struct AggState {
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new() -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(f) = v.as_float() {
            self.sum += f;
        }
        let better_min = self
            .min
            .as_ref()
            .map(|m| v.sql_cmp(m) == std::cmp::Ordering::Less)
            .unwrap_or(true);
        if better_min {
            self.min = Some(v.clone());
        }
        let better_max = self
            .max
            .as_ref()
            .map(|m| v.sql_cmp(m) == std::cmp::Ordering::Greater)
            .unwrap_or(true);
        if better_max {
            self.max = Some(v.clone());
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

impl Table {
    /// Returns a copy of the table sorted by the given keys (stable sort).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::UnknownColumn`] for unresolved key names.
    pub fn sort_by(&self, keys: &[SortKey]) -> Result<Table, StorageError> {
        let mut key_idx = Vec::with_capacity(keys.len());
        for k in keys {
            let idx =
                self.schema()
                    .index_of(&k.column)
                    .ok_or_else(|| StorageError::UnknownColumn {
                        table: self.name().to_owned(),
                        column: k.column.clone(),
                    })?;
            key_idx.push((idx, k.order));
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            for &(idx, dir) in &key_idx {
                let va = self.column(idx).get(a).expect("in-bounds");
                let vb = self.column(idx).get(b).expect("in-bounds");
                let ord = va.sql_cmp(&vb);
                let ord = match dir {
                    SortOrder::Asc => ord,
                    SortOrder::Desc => ord.reverse(),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut out =
            Table::with_capacity(self.name().to_owned(), self.schema().clone(), self.len());
        for r in order {
            out.push_row(self.row(r)?)?;
        }
        Ok(out)
    }

    /// Hash aggregation: groups on `keys` and evaluates `aggs` per group.
    ///
    /// Output schema is the key columns (original types, nullable) followed
    /// by one column per aggregate (`Float` for sum/avg, `Int` for count,
    /// input type for min/max). Output groups appear in first-seen order,
    /// which makes results deterministic.
    ///
    /// # Errors
    ///
    /// [`StorageError::UnknownColumn`] for unresolved names, or
    /// [`StorageError::InvalidAggregate`] for sum/avg on non-numeric input.
    pub fn group_by(&self, keys: &[&str], aggs: &[AggCall]) -> Result<Table, StorageError> {
        let mut key_idx = Vec::with_capacity(keys.len());
        let mut out_defs = Vec::with_capacity(keys.len() + aggs.len());
        for &k in keys {
            let idx = self
                .schema()
                .index_of(k)
                .ok_or_else(|| StorageError::UnknownColumn {
                    table: self.name().to_owned(),
                    column: k.to_owned(),
                })?;
            key_idx.push(idx);
            let def = &self.schema().columns()[idx];
            out_defs.push(ColumnDef::nullable(def.name.clone(), def.dtype));
        }
        let mut agg_idx = Vec::with_capacity(aggs.len());
        for call in aggs {
            let idx = self.schema().index_of(&call.column).ok_or_else(|| {
                StorageError::UnknownColumn {
                    table: self.name().to_owned(),
                    column: call.column.clone(),
                }
            })?;
            let in_type = self.schema().columns()[idx].dtype;
            let numeric = matches!(in_type, DataType::Int | DataType::Float);
            let out_type = match call.func {
                AggFunc::Sum | AggFunc::Avg => {
                    if !numeric {
                        return Err(StorageError::InvalidAggregate {
                            func: call.func.name(),
                            column: call.column.clone(),
                        });
                    }
                    DataType::Float
                }
                AggFunc::Count => DataType::Int,
                AggFunc::Min | AggFunc::Max => in_type,
            };
            agg_idx.push(idx);
            out_defs.push(ColumnDef::nullable(call.alias.clone(), out_type));
        }

        let mut groups: HashMap<Vec<Key>, usize> = HashMap::new();
        let mut group_keys: Vec<Vec<Value>> = Vec::new();
        let mut group_states: Vec<Vec<AggState>> = Vec::new();

        for r in 0..self.len() {
            let key_vals: Vec<Value> = key_idx
                .iter()
                .map(|&i| self.column(i).get(r).expect("in-bounds"))
                .collect();
            let key: Vec<Key> = key_vals.iter().map(Key::from_value).collect();
            let gid = *groups.entry(key).or_insert_with(|| {
                group_keys.push(key_vals);
                group_states.push(vec![AggState::new(); aggs.len()]);
                group_keys.len() - 1
            });
            for (ai, &ci) in agg_idx.iter().enumerate() {
                let v = self.column(ci).get(r).expect("in-bounds");
                group_states[gid][ai].update(&v);
            }
        }

        let schema = TableSchema::new(out_defs)?;
        let mut out =
            Table::with_capacity(format!("{}_grouped", self.name()), schema, group_keys.len());
        for (kv, states) in group_keys.into_iter().zip(group_states) {
            let mut row = kv;
            for (state, call) in states.iter().zip(aggs) {
                row.push(state.finish(call.func));
            }
            out.push_row(row)?;
        }
        Ok(out)
    }

    /// Inner hash join on `self.left_key == other.right_key`.
    ///
    /// Output schema is all columns of `self` followed by all columns of
    /// `other`; name collisions on the right side are suffixed with
    /// `_right`. NULL keys never match (SQL semantics).
    ///
    /// # Errors
    ///
    /// [`StorageError::UnknownColumn`] for unresolved key names, or
    /// [`StorageError::IncompatibleKeys`] when the key types cannot compare.
    pub fn join(
        &self,
        other: &Table,
        left_key: &str,
        right_key: &str,
    ) -> Result<Table, StorageError> {
        let li = self
            .schema()
            .index_of(left_key)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.name().to_owned(),
                column: left_key.to_owned(),
            })?;
        let ri = other
            .schema()
            .index_of(right_key)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: other.name().to_owned(),
                column: right_key.to_owned(),
            })?;
        let lt = self.schema().columns()[li].dtype;
        let rt = other.schema().columns()[ri].dtype;
        let numeric = |t: DataType| matches!(t, DataType::Int | DataType::Float);
        if lt != rt && !(numeric(lt) && numeric(rt)) {
            return Err(StorageError::IncompatibleKeys {
                left: format!("{}.{left_key}: {lt}", self.name()),
                right: format!("{}.{right_key}: {rt}", other.name()),
            });
        }

        let mut defs: Vec<ColumnDef> = self.schema().columns().to_vec();
        for def in other.schema().columns() {
            let name = if self.schema().index_of(&def.name).is_some() {
                format!("{}_right", def.name)
            } else {
                def.name.clone()
            };
            defs.push(ColumnDef::nullable(name, def.dtype));
        }
        let schema = TableSchema::new(defs)?;

        // Build side: the smaller table would be classic; keep it simple and
        // always build on `other`.
        let mut build: HashMap<Key, Vec<usize>> = HashMap::with_capacity(other.len());
        for r in 0..other.len() {
            let v = other.column(ri).get(r).expect("in-bounds");
            if v.is_null() {
                continue;
            }
            build.entry(Key::from_value(&v)).or_default().push(r);
        }

        let mut out = Table::new(format!("{}_join_{}", self.name(), other.name()), schema);
        for l in 0..self.len() {
            let v = self.column(li).get(l).expect("in-bounds");
            if v.is_null() {
                continue;
            }
            if let Some(matches) = build.get(&Key::from_value(&v)) {
                for &r in matches {
                    let mut row = self.row(l)?;
                    row.extend(other.row(r)?);
                    out.push_row(row)?;
                }
            }
        }
        Ok(out)
    }

    /// Removes duplicate rows (first occurrence wins, order preserved).
    pub fn distinct(&self) -> Result<Table, StorageError> {
        let mut seen: HashMap<Vec<Key>, ()> = HashMap::with_capacity(self.len());
        let mut out = Table::new(self.name().to_owned(), self.schema().clone());
        for r in 0..self.len() {
            let row = self.row(r)?;
            let key: Vec<Key> = row.iter().map(Key::from_value).collect();
            if seen.insert(key, ()).is_none() {
                out.push_row(row)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColumnDef;

    fn sales() -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::required("year", DataType::Int),
            ColumnDef::required("division", DataType::Str),
            ColumnDef::required("amount", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new("sales", schema);
        for (y, d, a) in [
            (2001, "Sales", 100.0),
            (2001, "Sales", 50.0),
            (2001, "R&D", 100.0),
            (2002, "Sales", 100.0),
            (2002, "R&D", 100.0),
            (2002, "R&D", 50.0),
        ] {
            t.push_row(vec![y.into(), d.into(), a.into()]).unwrap();
        }
        t
    }

    #[test]
    fn group_by_reproduces_consistent_time_q1() {
        // This is exactly paper Table 4 for years 2001-2002.
        let t = sales();
        let g = t
            .group_by(
                &["year", "division"],
                &[AggCall::new(AggFunc::Sum, "amount").with_alias("amount")],
            )
            .unwrap();
        assert_eq!(g.len(), 4);
        let rows: Vec<_> = g.rows().collect();
        assert_eq!(
            rows[0],
            vec![Value::Int(2001), Value::from("Sales"), Value::Float(150.0)]
        );
        assert_eq!(
            rows[1],
            vec![Value::Int(2001), Value::from("R&D"), Value::Float(100.0)]
        );
        assert_eq!(
            rows[2],
            vec![Value::Int(2002), Value::from("Sales"), Value::Float(100.0)]
        );
        assert_eq!(
            rows[3],
            vec![Value::Int(2002), Value::from("R&D"), Value::Float(150.0)]
        );
    }

    #[test]
    fn aggregates_min_max_avg_count() {
        let t = sales();
        let g = t
            .group_by(
                &["division"],
                &[
                    AggCall::new(AggFunc::Min, "amount"),
                    AggCall::new(AggFunc::Max, "amount"),
                    AggCall::new(AggFunc::Avg, "amount"),
                    AggCall::new(AggFunc::Count, "amount"),
                ],
            )
            .unwrap();
        assert_eq!(g.len(), 2);
        let sales_row = g.rows().find(|r| r[0] == Value::from("Sales")).unwrap();
        assert_eq!(sales_row[1], Value::Float(50.0));
        assert_eq!(sales_row[2], Value::Float(100.0));
        assert!(matches!(sales_row[3], Value::Float(a) if (a - 250.0/3.0).abs() < 1e-9));
        assert_eq!(sales_row[4], Value::Int(3));
    }

    #[test]
    fn group_by_empty_table_yields_empty() {
        let t = Table::new(
            "e",
            TableSchema::new(vec![ColumnDef::required("k", DataType::Int)]).unwrap(),
        );
        let g = t
            .group_by(&["k"], &[AggCall::new(AggFunc::Count, "k")])
            .unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn sum_on_string_column_rejected() {
        let t = sales();
        assert!(matches!(
            t.group_by(&["year"], &[AggCall::new(AggFunc::Sum, "division")]),
            Err(StorageError::InvalidAggregate { .. })
        ));
    }

    #[test]
    fn sort_multi_key() {
        let t = sales();
        let s = t
            .sort_by(&[SortKey::asc("division"), SortKey::desc("amount")])
            .unwrap();
        let rows: Vec<_> = s.rows().collect();
        assert_eq!(rows[0][1], Value::from("R&D"));
        assert_eq!(rows[0][2], Value::Float(100.0));
        assert_eq!(rows.last().unwrap()[2], Value::Float(50.0));
    }

    #[test]
    fn join_matches_keys() {
        let dim_schema = TableSchema::new(vec![
            ColumnDef::required("division", DataType::Str),
            ColumnDef::required("manager", DataType::Str),
        ])
        .unwrap();
        let mut dim = Table::new("dim", dim_schema);
        dim.push_row(vec!["Sales".into(), "Alice".into()]).unwrap();
        dim.push_row(vec!["R&D".into(), "Bob".into()]).unwrap();

        let j = sales().join(&dim, "division", "division").unwrap();
        assert_eq!(j.len(), 6);
        // Right-side collision got suffixed.
        assert!(j.schema().index_of("division_right").is_some());
        let first = j.row(0).unwrap();
        assert_eq!(first[1], Value::from("Sales"));
        assert_eq!(first[4], Value::from("Alice"));
    }

    #[test]
    fn join_null_keys_never_match() {
        let schema = TableSchema::new(vec![ColumnDef::nullable("k", DataType::Int)]).unwrap();
        let mut a = Table::new("a", schema.clone());
        a.push_row(vec![Value::Null]).unwrap();
        a.push_row(vec![1.into()]).unwrap();
        let mut b = Table::new("b", schema);
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![1.into()]).unwrap();
        let j = a.join(&b, "k", "k").unwrap();
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn join_incompatible_key_types_rejected() {
        let a = sales();
        let schema =
            TableSchema::new(vec![ColumnDef::required("division", DataType::Int)]).unwrap();
        let b = Table::new("b", schema);
        assert!(matches!(
            a.join(&b, "division", "division"),
            Err(StorageError::IncompatibleKeys { .. })
        ));
    }

    #[test]
    fn distinct_removes_duplicates_preserving_order() {
        let schema = TableSchema::new(vec![ColumnDef::required("v", DataType::Int)]).unwrap();
        let mut t = Table::new("t", schema);
        for v in [3, 1, 3, 2, 1] {
            t.push_row(vec![v.into()]).unwrap();
        }
        let d = t.distinct().unwrap();
        let vals: Vec<_> = d.rows().map(|r| r[0].clone()).collect();
        assert_eq!(vals, vec![Value::Int(3), Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn distinct_groups_nulls_together() {
        let schema = TableSchema::new(vec![ColumnDef::nullable("v", DataType::Int)]).unwrap();
        let mut t = Table::new("t", schema);
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        assert_eq!(t.distinct().unwrap().len(), 1);
    }
}
