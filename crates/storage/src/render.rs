//! Plain-text table rendering.
//!
//! Used by the paper-table reproduction harness to print results in the
//! same tabular form the paper uses, and by examples for human-readable
//! output.

use crate::Table;

/// Renders a table as aligned plain text with a header row.
///
/// ```
/// use mvolap_storage::{ColumnDef, DataType, Table, TableSchema};
/// use mvolap_storage::render::render_table;
///
/// let schema = TableSchema::new(vec![
///     ColumnDef::required("Division", DataType::Str),
///     ColumnDef::required("Amount", DataType::Float),
/// ]).unwrap();
/// let mut t = Table::new("t", schema);
/// t.push_row(vec!["Sales".into(), 150.0.into()]).unwrap();
/// let text = render_table(&t);
/// assert!(text.contains("Division"));
/// assert!(text.contains("Sales"));
/// assert!(text.contains("150"));
/// ```
pub fn render_table(table: &Table) -> String {
    let headers: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(table.len());
    for row in table.rows() {
        let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
        for (w, c) in widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        rows.push(cells);
    }

    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(c);
            out.extend(std::iter::repeat_n(' ', w - c.len()));
        }
        // Trim trailing padding.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    write_row(&mut out, &headers);
    let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.extend(std::iter::repeat_n('-', rule_len));
    out.push('\n');
    for r in &rows {
        write_row(&mut out, r);
    }
    out
}

/// Renders a table as comma-separated values (no quoting of commas — the
/// warehouse's identifiers never contain them; intended for quick export).
pub fn render_csv(table: &Table) -> String {
    let mut out = String::new();
    out.push_str(&table.schema().names().join(","));
    out.push('\n');
    for row in table.rows() {
        let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType, TableSchema, Value};

    fn sample() -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::required("Year", DataType::Int),
            ColumnDef::required("Division", DataType::Str),
            ColumnDef::nullable("Amount", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new("q1", schema);
        t.push_row(vec![2001.into(), "Sales".into(), 150.0.into()])
            .unwrap();
        t.push_row(vec![2001.into(), "R&D".into(), Value::Null])
            .unwrap();
        t
    }

    #[test]
    fn text_render_aligns_columns() {
        let text = render_table(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, two rows
        assert!(lines[0].starts_with("Year"));
        assert!(lines[2].contains("Sales"));
        assert!(lines[3].contains("NULL"));
    }

    #[test]
    fn csv_render() {
        let csv = render_csv(&sample());
        assert_eq!(csv, "Year,Division,Amount\n2001,Sales,150\n2001,R&D,NULL\n");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let schema = TableSchema::new(vec![ColumnDef::required("A", DataType::Int)]).unwrap();
        let t = Table::new("e", schema);
        let text = render_table(&t);
        assert_eq!(text.lines().count(), 2);
    }
}
