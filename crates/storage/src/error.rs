//! Storage engine errors.

/// Errors raised by the relational engine.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A referenced column does not exist in the table schema.
    UnknownColumn {
        /// Table the lookup ran against.
        table: String,
        /// The missing column name.
        column: String,
    },
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        /// Column being written or compared.
        column: String,
        /// Declared type.
        expected: crate::DataType,
        /// Offending value rendered for diagnostics.
        value: String,
    },
    /// A `NULL` was written to a non-nullable column.
    NullViolation {
        /// The non-nullable column.
        column: String,
    },
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Columns in the schema.
        expected: usize,
        /// Values supplied.
        actual: usize,
    },
    /// Row index out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Table length.
        len: usize,
    },
    /// A catalog lookup failed.
    NoSuchTable(String),
    /// A table with the same name already exists.
    TableExists(String),
    /// Duplicate column name in a schema definition.
    DuplicateColumn(String),
    /// Join/group-by key columns have incompatible types.
    IncompatibleKeys {
        /// Left column description.
        left: String,
        /// Right column description.
        right: String,
    },
    /// An aggregate was applied to a column type it does not support.
    InvalidAggregate {
        /// The aggregate function name.
        func: &'static str,
        /// The column it was applied to.
        column: String,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            StorageError::TypeMismatch {
                column,
                expected,
                value,
            } => write!(
                f,
                "type mismatch in column `{column}`: expected {expected:?}, got value {value}"
            ),
            StorageError::NullViolation { column } => {
                write!(f, "null written to non-nullable column `{column}`")
            }
            StorageError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {actual}"
                )
            }
            StorageError::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds for table of length {len}")
            }
            StorageError::NoSuchTable(name) => write!(f, "no such table `{name}`"),
            StorageError::TableExists(name) => write!(f, "table `{name}` already exists"),
            StorageError::DuplicateColumn(name) => {
                write!(f, "duplicate column `{name}` in schema")
            }
            StorageError::IncompatibleKeys { left, right } => {
                write!(f, "incompatible key columns: {left} vs {right}")
            }
            StorageError::InvalidAggregate { func, column } => {
                write!(f, "aggregate {func} cannot be applied to column `{column}`")
            }
        }
    }
}

impl std::error::Error for StorageError {}
