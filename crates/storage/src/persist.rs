//! On-disk persistence for tables and catalogs.
//!
//! A deliberately simple, dependency-free, line-oriented text format —
//! one `.tbl` file per table:
//!
//! ```text
//! mvolap-table v1
//! name <table name, escaped>
//! column <name, escaped> <Int|Float|Str|Bool> <required|nullable>
//! row <cell>\t<cell>…
//! ```
//!
//! Cells are tab-separated; tabs, newlines, carriage returns and
//! backslashes in strings are escaped (`\t`, `\n`, `\r`, `\\`), NULL is
//! `\N` (the classic copy-format convention). Floats round-trip via
//! Rust's shortest-representation `Display`.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{Catalog, ColumnDef, DataType, StorageError, Table, TableSchema, Value};

/// Errors raised while reading the persisted format.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not in the expected format.
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A decoded row violated the table schema.
    Storage(StorageError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format { line, message } => {
                write!(f, "format error at line {line}: {message}")
            }
            PersistError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<StorageError> for PersistError {
    fn from(e: StorageError) -> Self {
        PersistError::Storage(e)
    }
}

fn bad(line: usize, message: impl Into<String>) -> PersistError {
    PersistError::Format {
        line,
        message: message.into(),
    }
}

/// Escapes a string cell for the tab-separated row format.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`].
pub fn unescape(s: &str, line: usize) -> Result<String, PersistError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('N') => out.push_str("\\N"), // handled by the caller
            other => return Err(bad(line, format!("bad escape \\{other:?}"))),
        }
    }
    Ok(out)
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "\\N".to_owned(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            // `Display` for floats is the shortest round-tripping form,
            // but normalise the specials explicitly.
            if f.is_nan() {
                "NaN".to_owned()
            } else if f.is_infinite() {
                if *f > 0.0 {
                    "inf".to_owned()
                } else {
                    "-inf".to_owned()
                }
            } else {
                format!("{f}")
            }
        }
        Value::Str(s) => escape(s),
        Value::Bool(b) => b.to_string(),
    }
}

fn decode_value(cell: &str, dtype: DataType, line: usize) -> Result<Value, PersistError> {
    if cell == "\\N" {
        return Ok(Value::Null);
    }
    Ok(match dtype {
        DataType::Int => Value::Int(
            cell.parse()
                .map_err(|_| bad(line, format!("bad integer `{cell}`")))?,
        ),
        DataType::Float => Value::Float(match cell {
            "NaN" => f64::NAN,
            "inf" => f64::INFINITY,
            "-inf" => f64::NEG_INFINITY,
            _ => cell
                .parse()
                .map_err(|_| bad(line, format!("bad float `{cell}`")))?,
        }),
        DataType::Str => Value::Str(unescape(cell, line)?),
        DataType::Bool => match cell {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => return Err(bad(line, format!("bad bool `{cell}`"))),
        },
    })
}

/// Serialises a table into the text format.
pub fn write_table(table: &Table, out: &mut impl Write) -> Result<(), PersistError> {
    let mut buf = String::new();
    buf.push_str("mvolap-table v1\n");
    let _ = writeln!(buf, "name {}", escape(table.name()));
    for c in table.schema().columns() {
        let _ = writeln!(
            buf,
            "column {} {:?} {}",
            escape(&c.name),
            c.dtype,
            if c.nullable { "nullable" } else { "required" }
        );
    }
    for row in table.rows() {
        buf.push_str("row ");
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                buf.push('\t');
            }
            buf.push_str(&encode_value(v));
        }
        buf.push('\n');
    }
    out.write_all(buf.as_bytes())?;
    Ok(())
}

/// Deserialises a table from the text format.
pub fn read_table(input: &mut impl Read) -> Result<Table, PersistError> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines().enumerate();

    let (_, header) = lines
        .next()
        .ok_or_else(|| bad(1, "empty file"))
        .and_then(|(n, l)| Ok((n, l.map_err(PersistError::from)?)))?;
    if header != "mvolap-table v1" {
        return Err(bad(1, format!("bad header `{header}`")));
    }

    let mut name: Option<String> = None;
    let mut columns: Vec<ColumnDef> = Vec::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();

    for (idx, line) in lines {
        let n = idx + 1;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let (tag, rest) = line.split_once(' ').unwrap_or((line.as_str(), ""));
        match tag {
            "name" => name = Some(unescape(rest, n)?),
            "column" => {
                let mut parts = rest.split(' ');
                let cname = parts.next().ok_or_else(|| bad(n, "missing column name"))?;
                let dtype = match parts.next() {
                    Some("Int") => DataType::Int,
                    Some("Float") => DataType::Float,
                    Some("Str") => DataType::Str,
                    Some("Bool") => DataType::Bool,
                    other => return Err(bad(n, format!("bad column type {other:?}"))),
                };
                let nullable = match parts.next() {
                    Some("nullable") => true,
                    Some("required") => false,
                    other => return Err(bad(n, format!("bad nullability {other:?}"))),
                };
                columns.push(ColumnDef {
                    name: unescape(cname, n)?,
                    dtype,
                    nullable,
                });
            }
            "row" => {
                if columns.is_empty() {
                    return Err(bad(n, "row before any column"));
                }
                let cells: Vec<&str> = rest.split('\t').collect();
                if cells.len() != columns.len() {
                    return Err(bad(
                        n,
                        format!(
                            "row has {} cells, schema has {}",
                            cells.len(),
                            columns.len()
                        ),
                    ));
                }
                let row = cells
                    .iter()
                    .zip(&columns)
                    .map(|(c, def)| decode_value(c, def.dtype, n))
                    .collect::<Result<Vec<_>, _>>()?;
                rows.push(row);
            }
            other => return Err(bad(n, format!("unknown directive `{other}`"))),
        }
    }

    let name = name.ok_or_else(|| bad(1, "missing `name` directive"))?;
    let schema = TableSchema::new(columns)?;
    let mut table = Table::with_capacity(name, schema, rows.len());
    for row in rows {
        table.push_row(row)?;
    }
    Ok(table)
}

/// Saves every table of a catalog into `dir` (created if absent), one
/// `<table>.tbl` file per table. File names are percent-style sanitised
/// so arbitrary table names stay valid paths.
///
/// Each table is written atomically (temp file, fsync, rename), so a
/// crash mid-save can never truncate a previously saved table file.
pub fn save_catalog(catalog: &Catalog, dir: &Path) -> Result<(), PersistError> {
    std::fs::create_dir_all(dir)?;
    for table in catalog.tables() {
        let file = dir.join(format!("{}.tbl", sanitize(table.name())));
        let tmp = dir.join(format!("{}.tbl.tmp", sanitize(table.name())));
        let mut f = std::fs::File::create(&tmp)?;
        if let Err(e) =
            write_table(table, &mut f).and_then(|()| f.sync_all().map_err(PersistError::from))
        {
            drop(f);
            std::fs::remove_file(&tmp).ok();
            return Err(e);
        }
        drop(f);
        if let Err(e) = std::fs::rename(&tmp, &file) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
    }
    Ok(())
}

/// Stable 64-bit FNV-1a digest of a table's canonical serialised form.
/// Two tables digest equal exactly when [`write_table`] emits identical
/// bytes — schema, row order and float bit patterns included — so the
/// digest is a cheap byte-identity check for exported warehouses
/// (e.g. comparing a replica's export against its primary's).
pub fn table_digest(table: &Table) -> u64 {
    let mut buf = Vec::new();
    write_table(table, &mut buf).expect("serialising into memory cannot fail");
    fnv1a(FNV_OFFSET, &buf)
}

/// Digest of a whole catalog: per-table digests folded in table-name
/// order, so two catalogs compare equal independently of the order
/// their tables were created in.
pub fn catalog_digest(catalog: &Catalog) -> u64 {
    let mut names = catalog.table_names();
    names.sort_unstable();
    let mut h = FNV_OFFSET;
    for name in names {
        let t = catalog.get(name).expect("name just listed");
        h = fnv1a(h, &table_digest(t).to_le_bytes());
    }
    h
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Loads every `.tbl` file in `dir` into a catalog.
pub fn load_catalog(dir: &Path) -> Result<Catalog, PersistError> {
    let mut catalog = Catalog::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().map(|e| e == "tbl").unwrap_or(false))
        .collect();
    entries.sort();
    for path in entries {
        let mut f = std::fs::File::open(&path)?;
        let table = read_table(&mut f)?;
        catalog.create(table)?;
    }
    Ok(catalog)
}

/// Replaces path-hostile characters in a table name.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::required("id", DataType::Int),
            ColumnDef::nullable("label", DataType::Str),
            ColumnDef::required("x", DataType::Float),
            ColumnDef::required("flag", DataType::Bool),
        ])
        .expect("static schema");
        let mut t = Table::new("weird name/with:stuff", schema);
        t.push_row(vec![1.into(), "plain".into(), 1.5.into(), true.into()])
            .expect("row");
        t.push_row(vec![
            2.into(),
            "tab\tnewline\nback\\slash".into(),
            (-0.1).into(),
            false.into(),
        ])
        .expect("row");
        t.push_row(vec![3.into(), Value::Null, 1e300.into(), true.into()])
            .expect("row");
        t
    }

    #[test]
    fn table_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).expect("write");
        let back = read_table(&mut buf.as_slice()).expect("read");
        assert_eq!(back.name(), t.name());
        assert_eq!(back.schema(), t.schema());
        assert_eq!(back.len(), t.len());
        for (a, b) in t.rows().zip(back.rows()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn digests_are_byte_identity() {
        let t = sample();
        assert_eq!(table_digest(&t), table_digest(&sample()));
        let mut changed = sample();
        changed
            .push_row(vec![4.into(), Value::Null, 0.0.into(), false.into()])
            .unwrap();
        assert_ne!(table_digest(&t), table_digest(&changed));

        // Catalog digest is insertion-order independent.
        let other = {
            let schema = TableSchema::new(vec![ColumnDef::required("y", DataType::Int)]).unwrap();
            let mut t = Table::new("other", schema);
            t.push_row(vec![9.into()]).unwrap();
            t
        };
        let mut ab = Catalog::new();
        ab.create(sample()).unwrap();
        ab.create(other.clone()).unwrap();
        let mut ba = Catalog::new();
        ba.create(other).unwrap();
        ba.create(sample()).unwrap();
        assert_eq!(catalog_digest(&ab), catalog_digest(&ba));
    }

    #[test]
    fn float_specials_roundtrip() {
        let schema = TableSchema::new(vec![ColumnDef::required("x", DataType::Float)]).unwrap();
        let mut t = Table::new("f", schema);
        for v in [f64::INFINITY, f64::NEG_INFINITY, 0.1 + 0.2, -0.0] {
            t.push_row(vec![v.into()]).unwrap();
        }
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let back = read_table(&mut buf.as_slice()).unwrap();
        for (a, b) in t.rows().zip(back.rows()) {
            assert_eq!(
                a[0].as_float().unwrap().to_bits(),
                b[0].as_float().unwrap().to_bits()
            );
        }
    }

    #[test]
    fn null_vs_literal_backslash_n() {
        // A string cell containing the two characters `\N` must not read
        // back as NULL.
        let schema = TableSchema::new(vec![ColumnDef::nullable("s", DataType::Str)]).unwrap();
        let mut t = Table::new("n", schema);
        t.push_row(vec!["\\N".into()]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let back = read_table(&mut buf.as_slice()).unwrap();
        assert_eq!(back.row(0).unwrap()[0], Value::from("\\N"));
        assert_eq!(back.row(1).unwrap()[0], Value::Null);
    }

    #[test]
    fn read_rejects_malformed_input() {
        assert!(read_table(&mut "nonsense".as_bytes()).is_err());
        assert!(read_table(&mut "mvolap-table v1\nrow 1".as_bytes()).is_err());
        let bad_arity = "mvolap-table v1\nname t\ncolumn a Int required\nrow 1\t2\n";
        assert!(matches!(
            read_table(&mut bad_arity.as_bytes()),
            Err(PersistError::Format { line: 4, .. })
        ));
    }

    #[test]
    fn catalog_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("mvolap_persist_{}", std::process::id()));
        let mut catalog = Catalog::new();
        catalog.create(sample()).unwrap();
        let schema = TableSchema::new(vec![ColumnDef::required("v", DataType::Int)]).unwrap();
        let mut t2 = Table::new("second", schema);
        t2.push_row(vec![9.into()]).unwrap();
        catalog.create(t2).unwrap();

        save_catalog(&catalog, &dir).expect("save");
        let back = load_catalog(&dir).expect("load");
        assert_eq!(back.len(), 2);
        assert_eq!(back.get("second").unwrap().len(), 1);
        assert_eq!(
            back.get("weird name/with:stuff").unwrap().len(),
            catalog.get("weird name/with:stuff").unwrap().len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
