//! Typed columnar storage.
//!
//! Each column stores its values in a dense typed vector plus a validity
//! mask, the classic columnar layout: type dispatch happens once per
//! column rather than once per value, and measure scans are cache-friendly.

use crate::{DataType, StorageError, Value};

/// A typed column of values with a validity (non-null) mask.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column: values and validity.
    Int(Vec<i64>, Vec<bool>),
    /// Float column: values and validity.
    Float(Vec<f64>, Vec<bool>),
    /// String column: values and validity.
    Str(Vec<String>, Vec<bool>),
    /// Boolean column: values and validity.
    Bool(Vec<bool>, Vec<bool>),
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::new(), Vec::new()),
            DataType::Float => Column::Float(Vec::new(), Vec::new()),
            DataType::Str => Column::Str(Vec::new(), Vec::new()),
            DataType::Bool => Column::Bool(Vec::new(), Vec::new()),
        }
    }

    /// Creates an empty column pre-sized for `capacity` rows.
    pub fn with_capacity(dtype: DataType, capacity: usize) -> Self {
        match dtype {
            DataType::Int => {
                Column::Int(Vec::with_capacity(capacity), Vec::with_capacity(capacity))
            }
            DataType::Float => {
                Column::Float(Vec::with_capacity(capacity), Vec::with_capacity(capacity))
            }
            DataType::Str => {
                Column::Str(Vec::with_capacity(capacity), Vec::with_capacity(capacity))
            }
            DataType::Bool => {
                Column::Bool(Vec::with_capacity(capacity), Vec::with_capacity(capacity))
            }
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(..) => DataType::Int,
            Column::Float(..) => DataType::Float,
            Column::Str(..) => DataType::Str,
            Column::Bool(..) => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v, _) => v.len(),
            Column::Float(v, _) => v.len(),
            Column::Str(v, _) => v.len(),
            Column::Bool(v, _) => v.len(),
        }
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value; `Value::Null` appends an invalid slot.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::TypeMismatch`] when the value's type differs
    /// from the column type (no implicit coercion at the storage layer,
    /// except `Int` widening into a `Float` column).
    pub fn push(&mut self, value: Value) -> Result<(), StorageError> {
        let mismatch = |col: &Column, v: &Value| StorageError::TypeMismatch {
            column: String::new(),
            expected: col.data_type(),
            value: v.to_string(),
        };
        match (self, value) {
            (Column::Int(v, m), Value::Int(x)) => {
                v.push(x);
                m.push(true);
            }
            (Column::Int(v, m), Value::Null) => {
                v.push(0);
                m.push(false);
            }
            (Column::Float(v, m), Value::Float(x)) => {
                v.push(x);
                m.push(true);
            }
            (Column::Float(v, m), Value::Int(x)) => {
                v.push(x as f64);
                m.push(true);
            }
            (Column::Float(v, m), Value::Null) => {
                v.push(0.0);
                m.push(false);
            }
            (Column::Str(v, m), Value::Str(x)) => {
                v.push(x);
                m.push(true);
            }
            (Column::Str(v, m), Value::Null) => {
                v.push(String::new());
                m.push(false);
            }
            (Column::Bool(v, m), Value::Bool(x)) => {
                v.push(x);
                m.push(true);
            }
            (Column::Bool(v, m), Value::Null) => {
                v.push(false);
                m.push(false);
            }
            (col, v) => return Err(mismatch(col, &v)),
        }
        Ok(())
    }

    /// Reads the value at `row`; out-of-bounds reads return `None`.
    pub fn get(&self, row: usize) -> Option<Value> {
        if row >= self.len() {
            return None;
        }
        Some(match self {
            Column::Int(v, m) => {
                if m[row] {
                    Value::Int(v[row])
                } else {
                    Value::Null
                }
            }
            Column::Float(v, m) => {
                if m[row] {
                    Value::Float(v[row])
                } else {
                    Value::Null
                }
            }
            Column::Str(v, m) => {
                if m[row] {
                    Value::Str(v[row].clone())
                } else {
                    Value::Null
                }
            }
            Column::Bool(v, m) => {
                if m[row] {
                    Value::Bool(v[row])
                } else {
                    Value::Null
                }
            }
        })
    }

    /// Whether the slot at `row` is non-null. Out of bounds counts as null.
    pub fn is_valid(&self, row: usize) -> bool {
        let mask = match self {
            Column::Int(_, m) | Column::Float(_, m) | Column::Str(_, m) | Column::Bool(_, m) => m,
        };
        mask.get(row).copied().unwrap_or(false)
    }

    /// Fast numeric accessor: the float value at `row`, if the column is
    /// numeric and the slot valid. Avoids `Value` boxing on hot aggregation
    /// paths.
    #[inline]
    pub fn float_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Float(v, m) => (m.get(row) == Some(&true)).then(|| v[row]),
            Column::Int(v, m) => (m.get(row) == Some(&true)).then(|| v[row] as f64),
            _ => None,
        }
    }

    /// Fast integer accessor, valid slots of `Int` columns only.
    #[inline]
    pub fn int_at(&self, row: usize) -> Option<i64> {
        match self {
            Column::Int(v, m) => (m.get(row) == Some(&true)).then(|| v[row]),
            _ => None,
        }
    }

    /// Approximate heap footprint in bytes (used by the storage-redundancy
    /// experiment).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Column::Int(v, m) => v.capacity() * 8 + m.capacity(),
            Column::Float(v, m) => v.capacity() * 8 + m.capacity(),
            Column::Str(v, m) => {
                v.iter()
                    .map(|s| s.capacity() + std::mem::size_of::<String>())
                    .sum::<usize>()
                    + m.capacity()
            }
            Column::Bool(v, m) => v.capacity() + m.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(7)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.get(0), Some(Value::Int(7)));
        assert_eq!(c.get(1), Some(Value::Null));
        assert_eq!(c.get(2), None);
        assert!(c.is_valid(0));
        assert!(!c.is_valid(1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = Column::new(DataType::Float);
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.get(0), Some(Value::Float(3.0)));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::new(DataType::Int);
        assert!(c.push(Value::from("x")).is_err());
        let mut c = Column::new(DataType::Str);
        assert!(c.push(Value::Bool(true)).is_err());
    }

    #[test]
    fn fast_accessors() {
        let mut c = Column::new(DataType::Float);
        c.push(Value::Float(1.5)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.float_at(0), Some(1.5));
        assert_eq!(c.float_at(1), None);
        assert_eq!(c.float_at(9), None);

        let mut i = Column::new(DataType::Int);
        i.push(Value::Int(4)).unwrap();
        assert_eq!(i.int_at(0), Some(4));
        assert_eq!(i.float_at(0), Some(4.0));
    }

    #[test]
    fn heap_bytes_positive_after_push() {
        let mut c = Column::new(DataType::Str);
        c.push(Value::from("hello world")).unwrap();
        assert!(c.heap_bytes() > 0);
    }
}
