//! Row predicates for filtered scans.

use crate::{StorageError, Table, Value};

/// A boolean expression over one row of a table.
///
/// Column references are by name and resolved against the table schema at
/// evaluation time; an unknown column is an error, not `false`, so typos
/// surface instead of silently filtering everything out.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (the full scan).
    True,
    /// Column equals constant (SQL semantics: NULL never equals).
    Eq(String, Value),
    /// Column differs from constant (NULL never differs either).
    Ne(String, Value),
    /// Column strictly less than constant.
    Lt(String, Value),
    /// Column less than or equal to constant.
    Le(String, Value),
    /// Column strictly greater than constant.
    Gt(String, Value),
    /// Column greater than or equal to constant.
    Ge(String, Value),
    /// Column value within inclusive bounds.
    Between(String, Value, Value),
    /// Column value is a member of the list.
    In(String, Vec<Value>),
    /// Column is NULL.
    IsNull(String),
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// At least one sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Equality shorthand.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Eq(column.into(), value.into())
    }

    /// Evaluates the predicate against row `row` of `table`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::UnknownColumn`] for unresolved column names.
    pub fn eval(&self, table: &Table, row: usize) -> Result<bool, StorageError> {
        use Predicate::*;
        let fetch = |name: &str| -> Result<Value, StorageError> {
            let idx = table
                .schema()
                .index_of(name)
                .ok_or_else(|| StorageError::UnknownColumn {
                    table: table.name().to_owned(),
                    column: name.to_owned(),
                })?;
            Ok(table.column(idx).get(row).unwrap_or(Value::Null))
        };
        Ok(match self {
            True => true,
            Eq(c, v) => fetch(c)?.sql_eq(v),
            Ne(c, v) => {
                let cell = fetch(c)?;
                !cell.is_null() && !v.is_null() && !cell.sql_eq(v)
            }
            Lt(c, v) => ord_test(&fetch(c)?, v, |o| o == std::cmp::Ordering::Less),
            Le(c, v) => ord_test(&fetch(c)?, v, |o| o != std::cmp::Ordering::Greater),
            Gt(c, v) => ord_test(&fetch(c)?, v, |o| o == std::cmp::Ordering::Greater),
            Ge(c, v) => ord_test(&fetch(c)?, v, |o| o != std::cmp::Ordering::Less),
            Between(c, lo, hi) => {
                let cell = fetch(c)?;
                ord_test(&cell, lo, |o| o != std::cmp::Ordering::Less)
                    && ord_test(&cell, hi, |o| o != std::cmp::Ordering::Greater)
            }
            In(c, list) => {
                let cell = fetch(c)?;
                list.iter().any(|v| cell.sql_eq(v))
            }
            IsNull(c) => fetch(c)?.is_null(),
            And(a, b) => a.eval(table, row)? && b.eval(table, row)?,
            Or(a, b) => a.eval(table, row)? || b.eval(table, row)?,
            Not(p) => !p.eval(table, row)?,
        })
    }
}

/// SQL three-valued comparison collapsed to boolean: NULL operands fail.
fn ord_test(cell: &Value, constant: &Value, test: impl Fn(std::cmp::Ordering) -> bool) -> bool {
    if cell.is_null() || constant.is_null() {
        return false;
    }
    test(cell.sql_cmp(constant))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType, TableSchema};

    fn sample() -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::required("id", DataType::Int),
            ColumnDef::nullable("name", DataType::Str),
            ColumnDef::required("amount", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        t.push_row(vec![1.into(), "a".into(), 10.0.into()]).unwrap();
        t.push_row(vec![2.into(), Value::Null, 20.0.into()])
            .unwrap();
        t.push_row(vec![3.into(), "c".into(), 30.0.into()]).unwrap();
        t
    }

    #[test]
    fn eq_and_null_semantics() {
        let t = sample();
        assert!(Predicate::eq("name", "a").eval(&t, 0).unwrap());
        // NULL equals nothing, differs from nothing.
        assert!(!Predicate::eq("name", "a").eval(&t, 1).unwrap());
        assert!(!Predicate::Ne("name".into(), "a".into())
            .eval(&t, 1)
            .unwrap());
        assert!(Predicate::IsNull("name".into()).eval(&t, 1).unwrap());
    }

    #[test]
    fn comparisons() {
        let t = sample();
        assert!(Predicate::Lt("amount".into(), 15.0.into())
            .eval(&t, 0)
            .unwrap());
        assert!(Predicate::Ge("amount".into(), 30.0.into())
            .eval(&t, 2)
            .unwrap());
        assert!(Predicate::Between("id".into(), 2.into(), 3.into())
            .eval(&t, 1)
            .unwrap());
        assert!(!Predicate::Between("id".into(), 2.into(), 3.into())
            .eval(&t, 0)
            .unwrap());
        assert!(Predicate::In("id".into(), vec![1.into(), 3.into()])
            .eval(&t, 2)
            .unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let t = sample();
        let p = Predicate::eq("name", "a").or(Predicate::eq("name", "c"));
        assert!(p.eval(&t, 0).unwrap());
        assert!(!p.eval(&t, 1).unwrap());
        assert!(p.clone().not().eval(&t, 1).unwrap());
        let q = p.and(Predicate::Gt("amount".into(), 20.0.into()));
        assert!(!q.eval(&t, 0).unwrap());
        assert!(q.eval(&t, 2).unwrap());
    }

    #[test]
    fn unknown_column_is_an_error() {
        let t = sample();
        let err = Predicate::eq("nope", 1).eval(&t, 0).unwrap_err();
        assert!(matches!(err, StorageError::UnknownColumn { .. }));
    }

    #[test]
    fn cross_type_numeric_compare() {
        let t = sample();
        assert!(Predicate::eq("amount", 10).eval(&t, 0).unwrap());
    }
}
