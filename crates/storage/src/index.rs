//! Secondary hash indexes over table columns.

use std::collections::HashMap;

use crate::{StorageError, Table, Value};

/// A hash index mapping one column's values to row ids.
///
/// Indexes are snapshots: they are built from a table and do not track
/// subsequent mutations (the warehouse workload is load-then-query).
#[derive(Debug, Clone)]
pub struct HashIndex {
    column: String,
    // Keyed by display form of the value, which is unique per distinct
    // value for the key types used in dimension tables (ints, strings).
    map: HashMap<String, Vec<usize>>,
}

impl HashIndex {
    /// Builds an index over `column` of `table`.
    ///
    /// NULLs are not indexed (they never match an equality probe).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::UnknownColumn`] when the column is absent.
    pub fn build(table: &Table, column: &str) -> Result<Self, StorageError> {
        let col = table.column_by_name(column)?;
        let mut map: HashMap<String, Vec<usize>> = HashMap::with_capacity(table.len());
        for r in 0..table.len() {
            match col.get(r) {
                Some(Value::Null) | None => continue,
                Some(v) => map.entry(v.to_string()).or_default().push(r),
            }
        }
        Ok(HashIndex {
            column: column.to_owned(),
            map,
        })
    }

    /// The indexed column name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Row ids whose column equals `value` (empty for misses and NULL).
    pub fn lookup(&self, value: &Value) -> &[usize] {
        if value.is_null() {
            return &[];
        }
        self.map
            .get(&value.to_string())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType, TableSchema};

    fn table() -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::required("id", DataType::Int),
            ColumnDef::nullable("division", DataType::Str),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        t.push_row(vec![1.into(), "Sales".into()]).unwrap();
        t.push_row(vec![2.into(), "R&D".into()]).unwrap();
        t.push_row(vec![3.into(), "Sales".into()]).unwrap();
        t.push_row(vec![4.into(), Value::Null]).unwrap();
        t
    }

    #[test]
    fn lookup_returns_all_matching_rows() {
        let t = table();
        let idx = HashIndex::build(&t, "division").unwrap();
        assert_eq!(idx.lookup(&Value::from("Sales")), &[0, 2]);
        assert_eq!(idx.lookup(&Value::from("R&D")), &[1]);
        assert_eq!(idx.lookup(&Value::from("Ghost")), &[] as &[usize]);
        assert_eq!(idx.distinct_values(), 2);
    }

    #[test]
    fn null_probe_matches_nothing() {
        let t = table();
        let idx = HashIndex::build(&t, "division").unwrap();
        assert!(idx.lookup(&Value::Null).is_empty());
    }

    #[test]
    fn unknown_column_rejected() {
        let t = table();
        assert!(HashIndex::build(&t, "ghost").is_err());
    }
}
