//! The warehouse catalog: a namespace of tables.

use std::collections::BTreeMap;

use crate::{StorageError, Table};

/// A named collection of tables — one "data warehouse".
///
/// Uses a `BTreeMap` so iteration order (and thus rendered output) is
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table under its own name.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::TableExists`] when the name is taken.
    pub fn create(&mut self, table: Table) -> Result<(), StorageError> {
        let name = table.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Registers or replaces a table under its own name.
    pub fn create_or_replace(&mut self, table: Table) {
        self.tables.insert(table.name().to_owned(), table);
    }

    /// Fetches a table by name.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NoSuchTable`] when absent.
    pub fn get(&self, name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_owned()))
    }

    /// Fetches a table mutably by name.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NoSuchTable`] when absent.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_owned()))
    }

    /// Drops a table, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NoSuchTable`] when absent.
    pub fn drop(&mut self, name: &str) -> Result<Table, StorageError> {
        self.tables
            .remove(name)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_owned()))
    }

    /// Table names in lexicographic order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Iterates over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total approximate heap bytes across all tables.
    pub fn heap_bytes(&self) -> usize {
        self.tables.values().map(Table::heap_bytes).sum()
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, DataType, TableSchema};

    fn mk(name: &str) -> Table {
        Table::new(
            name,
            TableSchema::new(vec![ColumnDef::required("x", DataType::Int)]).unwrap(),
        )
    }

    #[test]
    fn create_get_drop() {
        let mut c = Catalog::new();
        c.create(mk("facts")).unwrap();
        assert!(c.get("facts").is_ok());
        assert!(matches!(
            c.create(mk("facts")),
            Err(StorageError::TableExists(_))
        ));
        c.create_or_replace(mk("facts"));
        assert_eq!(c.len(), 1);
        c.drop("facts").unwrap();
        assert!(matches!(c.get("facts"), Err(StorageError::NoSuchTable(_))));
    }

    #[test]
    fn names_are_sorted() {
        let mut c = Catalog::new();
        c.create(mk("zeta")).unwrap();
        c.create(mk("alpha")).unwrap();
        assert_eq!(c.table_names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn counters() {
        let mut c = Catalog::new();
        let mut t = mk("t");
        t.push_row(vec![1.into()]).unwrap();
        t.push_row(vec![2.into()]).unwrap();
        c.create(t).unwrap();
        assert_eq!(c.total_rows(), 2);
        assert!(c.heap_bytes() > 0);
    }
}
