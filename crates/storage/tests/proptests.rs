//! Randomized property tests for the relational operators, driven by
//! the in-repo deterministic generator (`mvolap_prng::check` replaces
//! the external `proptest` crate, which the offline build cannot
//! fetch).

use mvolap_prng::{check, Rng};
use mvolap_storage::{
    AggCall, AggFunc, ColumnDef, DataType, Predicate, SortKey, Table, TableSchema, Value,
};

const CASES: u64 = 128;

/// A small relation: (k: int in 0..5, label: nullable 1–2 letter str,
/// x: float).
fn any_table(rng: &mut Rng) -> Table {
    let schema = TableSchema::new(vec![
        ColumnDef::required("k", DataType::Int),
        ColumnDef::nullable("label", DataType::Str),
        ColumnDef::required("x", DataType::Float),
    ])
    .expect("static schema");
    let mut t = Table::new("t", schema);
    for _ in 0..rng.usize_below(40) {
        let k = rng.i64_in(0, 5);
        let label = if rng.bool() {
            let len = rng.usize_in(1, 3);
            let s: String = (0..len)
                .map(|_| char::from(b'a' + rng.u32_in(0, 3) as u8))
                .collect();
            Value::from(s)
        } else {
            Value::Null
        };
        let x = rng.f64_in(-100.0, 100.0);
        t.push_row(vec![k.into(), label, x.into()])
            .expect("schema-conformant");
    }
    t
}

/// Filtering never invents rows, and complementary predicates
/// partition the table.
#[test]
fn filter_partitions() {
    check(CASES, 0x5701, |rng| {
        let t = any_table(rng);
        let threshold = rng.i64_in(-100, 100);
        let p = Predicate::Ge("k".into(), Value::Int(threshold));
        let yes = t.filter(&p).expect("filter");
        let no = t.filter(&p.clone().not()).expect("filter");
        assert_eq!(yes.len() + no.len(), t.len());
        for r in yes.rows() {
            assert!(r[0].as_int().expect("int") >= threshold);
        }
    });
}

/// Sort is a permutation and respects the ordering.
#[test]
fn sort_is_ordered_permutation() {
    check(CASES, 0x5702, |rng| {
        let t = any_table(rng);
        let s = t.sort_by(&[SortKey::asc("x")]).expect("sort");
        assert_eq!(s.len(), t.len());
        let xs: Vec<f64> = s.rows().map(|r| r[2].as_float().expect("float")).collect();
        for w in xs.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Same multiset of sums (cheap permutation check).
        let sum_t: f64 = t.rows().map(|r| r[2].as_float().expect("float")).sum();
        let sum_s: f64 = xs.iter().sum();
        assert!((sum_t - sum_s).abs() < 1e-9);
    });
}

/// Group-by SUM over a key equals the filtered sums, and group sums add
/// up to the total.
#[test]
fn group_by_sums_match_filters() {
    check(CASES, 0x5703, |rng| {
        let t = any_table(rng);
        let g = t
            .group_by(&["k"], &[AggCall::new(AggFunc::Sum, "x").with_alias("s")])
            .expect("group by");
        let mut grouped_total = 0.0;
        for row in g.rows() {
            let k = row[0].clone();
            let s = row[1].as_float().expect("sum");
            grouped_total += s;
            let direct: f64 = t
                .filter(&Predicate::Eq("k".into(), k))
                .expect("filter")
                .rows()
                .map(|r| r[2].as_float().expect("float"))
                .sum();
            assert!((direct - s).abs() < 1e-9);
        }
        let total: f64 = t.rows().map(|r| r[2].as_float().expect("float")).sum();
        assert!((grouped_total - total).abs() < 1e-9);
    });
}

/// COUNT group-by sizes sum to the row count.
#[test]
fn group_by_counts_sum_to_len() {
    check(CASES, 0x5704, |rng| {
        let t = any_table(rng);
        let g = t
            .group_by(&["k"], &[AggCall::new(AggFunc::Count, "k").with_alias("n")])
            .expect("group by");
        let n: i64 = g.rows().map(|r| r[1].as_int().expect("count")).sum();
        assert_eq!(n as usize, t.len());
    });
}

/// Min <= Avg <= Max within every group.
#[test]
fn group_by_min_avg_max_order() {
    check(CASES, 0x5705, |rng| {
        let t = any_table(rng);
        let g = t
            .group_by(
                &["k"],
                &[
                    AggCall::new(AggFunc::Min, "x"),
                    AggCall::new(AggFunc::Avg, "x"),
                    AggCall::new(AggFunc::Max, "x"),
                ],
            )
            .expect("group by");
        for row in g.rows() {
            let (min, avg, max) = (
                row[1].as_float().expect("min"),
                row[2].as_float().expect("avg"),
                row[3].as_float().expect("max"),
            );
            assert!(min <= avg + 1e-9 && avg <= max + 1e-9);
        }
    });
}

/// Self-join on the key yields exactly Σ n_k² rows.
#[test]
fn self_join_cardinality() {
    check(CASES, 0x5706, |rng| {
        let t = any_table(rng);
        let j = t.join(&t, "k", "k").expect("join");
        let g = t
            .group_by(&["k"], &[AggCall::new(AggFunc::Count, "k").with_alias("n")])
            .expect("group by");
        let expected: i64 = g
            .rows()
            .map(|r| {
                let n = r[1].as_int().expect("count");
                n * n
            })
            .sum();
        assert_eq!(j.len() as i64, expected);
    });
}

/// Distinct is idempotent and never grows.
#[test]
fn distinct_idempotent() {
    check(CASES, 0x5707, |rng| {
        let t = any_table(rng);
        let d1 = t.distinct().expect("distinct");
        let d2 = d1.distinct().expect("distinct");
        assert!(d1.len() <= t.len());
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.rows().zip(d2.rows()) {
            assert_eq!(a, b);
        }
    });
}

/// Projection keeps row count and column contents.
#[test]
fn project_preserves_columns() {
    check(CASES, 0x5708, |rng| {
        let t = any_table(rng);
        let p = t.project(&["x", "k"]).expect("project");
        assert_eq!(p.len(), t.len());
        for (orig, proj) in t.rows().zip(p.rows()) {
            assert_eq!(&orig[2], &proj[0]);
            assert_eq!(&orig[0], &proj[1]);
        }
    });
}
