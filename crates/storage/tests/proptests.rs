//! Property-based tests for the relational operators.

use mvolap_storage::{
    AggCall, AggFunc, ColumnDef, DataType, Predicate, SortKey, Table, TableSchema, Value,
};
use proptest::prelude::*;

/// A small relation: (k: int in 0..5, label: nullable str, x: float).
fn table_strategy() -> impl Strategy<Value = Table> {
    let row = (0i64..5, prop::option::of("[a-c]{1,2}"), -100.0f64..100.0);
    prop::collection::vec(row, 0..40).prop_map(|rows| {
        let schema = TableSchema::new(vec![
            ColumnDef::required("k", DataType::Int),
            ColumnDef::nullable("label", DataType::Str),
            ColumnDef::required("x", DataType::Float),
        ])
        .expect("static schema");
        let mut t = Table::new("t", schema);
        for (k, label, x) in rows {
            t.push_row(vec![
                k.into(),
                label.map(Value::from).unwrap_or(Value::Null),
                x.into(),
            ])
            .expect("schema-conformant");
        }
        t
    })
}

proptest! {
    /// Filtering never invents rows, and complementary predicates
    /// partition the table.
    #[test]
    fn filter_partitions(t in table_strategy(), threshold in -100i64..100) {
        let p = Predicate::Ge("k".into(), Value::Int(threshold));
        let yes = t.filter(&p).expect("filter");
        let no = t.filter(&p.clone().not()).expect("filter");
        prop_assert_eq!(yes.len() + no.len(), t.len());
        for r in yes.rows() {
            prop_assert!(r[0].as_int().expect("int") >= threshold);
        }
    }

    /// Sort is a permutation and respects the ordering.
    #[test]
    fn sort_is_ordered_permutation(t in table_strategy()) {
        let s = t.sort_by(&[SortKey::asc("x")]).expect("sort");
        prop_assert_eq!(s.len(), t.len());
        let xs: Vec<f64> = s.rows().map(|r| r[2].as_float().expect("float")).collect();
        for w in xs.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Same multiset of sums (cheap permutation check).
        let sum_t: f64 = t.rows().map(|r| r[2].as_float().expect("float")).sum();
        let sum_s: f64 = xs.iter().sum();
        prop_assert!((sum_t - sum_s).abs() < 1e-9);
    }

    /// Group-by SUM over a key equals the filtered sums, and group sums
    /// add up to the total.
    #[test]
    fn group_by_sums_match_filters(t in table_strategy()) {
        let g = t
            .group_by(&["k"], &[AggCall::new(AggFunc::Sum, "x").with_alias("s")])
            .expect("group by");
        let mut grouped_total = 0.0;
        for row in g.rows() {
            let k = row[0].clone();
            let s = row[1].as_float().expect("sum");
            grouped_total += s;
            let direct: f64 = t
                .filter(&Predicate::Eq("k".into(), k))
                .expect("filter")
                .rows()
                .map(|r| r[2].as_float().expect("float"))
                .sum();
            prop_assert!((direct - s).abs() < 1e-9);
        }
        let total: f64 = t.rows().map(|r| r[2].as_float().expect("float")).sum();
        prop_assert!((grouped_total - total).abs() < 1e-9);
    }

    /// COUNT group-by sizes sum to the row count.
    #[test]
    fn group_by_counts_sum_to_len(t in table_strategy()) {
        let g = t
            .group_by(&["k"], &[AggCall::new(AggFunc::Count, "k").with_alias("n")])
            .expect("group by");
        let n: i64 = g.rows().map(|r| r[1].as_int().expect("count")).sum();
        prop_assert_eq!(n as usize, t.len());
    }

    /// Min <= Avg <= Max within every group.
    #[test]
    fn group_by_min_avg_max_order(t in table_strategy()) {
        let g = t
            .group_by(
                &["k"],
                &[
                    AggCall::new(AggFunc::Min, "x"),
                    AggCall::new(AggFunc::Avg, "x"),
                    AggCall::new(AggFunc::Max, "x"),
                ],
            )
            .expect("group by");
        for row in g.rows() {
            let (min, avg, max) = (
                row[1].as_float().expect("min"),
                row[2].as_float().expect("avg"),
                row[3].as_float().expect("max"),
            );
            prop_assert!(min <= avg + 1e-9 && avg <= max + 1e-9);
        }
    }

    /// Self-join on the key yields exactly Σ n_k² rows.
    #[test]
    fn self_join_cardinality(t in table_strategy()) {
        let j = t.join(&t, "k", "k").expect("join");
        let g = t
            .group_by(&["k"], &[AggCall::new(AggFunc::Count, "k").with_alias("n")])
            .expect("group by");
        let expected: i64 = g
            .rows()
            .map(|r| {
                let n = r[1].as_int().expect("count");
                n * n
            })
            .sum();
        prop_assert_eq!(j.len() as i64, expected);
    }

    /// Distinct is idempotent and never grows.
    #[test]
    fn distinct_idempotent(t in table_strategy()) {
        let d1 = t.distinct().expect("distinct");
        let d2 = d1.distinct().expect("distinct");
        prop_assert!(d1.len() <= t.len());
        prop_assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.rows().zip(d2.rows()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Projection keeps row count and column contents.
    #[test]
    fn project_preserves_columns(t in table_strategy()) {
        let p = t.project(&["x", "k"]).expect("project");
        prop_assert_eq!(p.len(), t.len());
        for (orig, proj) in t.rows().zip(p.rows()) {
            prop_assert_eq!(&orig[2], &proj[0]);
            prop_assert_eq!(&orig[0], &proj[1]);
        }
    }
}
