//! # mvolap-query
//!
//! A small textual query language over the temporal multidimensional
//! model, in the spirit of Mendelzon & Vaisman's TOLAP (which the paper
//! credits for letting "the user choose in his request the way he wants
//! data to be aggregated"): every query names its *temporal mode of
//! presentation* explicitly.
//!
//! ## Syntax
//!
//! ```text
//! SELECT sum(Amount) [, max(Profit) ...]
//! BY year, Org.Division [, ...]
//! [WHERE Org.Division = 'Sales' [AND Org.Department IN ('A', 'B')]]
//! [FOR 2001..2002]
//! IN MODE tcm | VERSION 2 | AT 06/2002
//! IN ALL MODES [WITH WEIGHTS 10,8,5,0]
//! ```
//!
//! * `BY` accepts `year`, `quarter`, `month`, `instant`, or
//!   `<dimension>.<level>` keys; with no time key the whole period
//!   aggregates together.
//! * `WHERE` slices/dices by member names at any level (conjunctive
//!   `AND`; names are single-quoted, `''` escapes a quote).
//! * `FOR a..b` restricts fact times to whole years `a..=b`.
//! * `IN MODE` selects the temporal mode: `tcm` (temporally consistent),
//!   `VERSION n` (the n-th inferred structure version), or `AT mm/yyyy`
//!   (the structure version valid at that instant). `IN ALL MODES`
//!   evaluates every mode and ranks them by the §5.2 quality factor
//!   (execute with [`run_compare`]).
//!
//! ## Example
//!
//! ```
//! use mvolap_core::case_study::case_study;
//! use mvolap_query::run;
//!
//! let cs = case_study();
//! let rs = run(&cs.tmd, "SELECT sum(Amount) BY year, Org.Division \
//!                        FOR 2001..2002 IN MODE tcm").unwrap();
//! assert_eq!(rs.rows.len(), 4); // paper Table 4
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::{GroupKey, ModeSpec, Query, Select};
pub use error::QueryError;
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::parse;
pub use plan::{
    is_all_modes, plan, run, run_compare, run_compare_par, run_par, run_with_versions,
    run_with_versions_par, ModeResult,
};
