//! Query-language errors with source positions.

use mvolap_core::CoreError;

/// An error raised while lexing, parsing, planning or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// An unexpected character in the input.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Byte offset in the query string.
        at: usize,
    },
    /// The parser expected something else.
    Unexpected {
        /// What was expected.
        expected: String,
        /// What was found (token text or `end of input`).
        found: String,
        /// Byte offset in the query string.
        at: usize,
    },
    /// A number failed to parse or was out of range.
    BadNumber {
        /// The literal text.
        text: String,
        /// Byte offset.
        at: usize,
    },
    /// Name resolution failed during planning.
    Unresolved(String),
    /// The requested aggregate disagrees with the measure's configured
    /// aggregate function.
    AggregatorMismatch {
        /// The measure name.
        measure: String,
        /// Aggregate requested in the query.
        requested: String,
        /// Aggregate the schema defines.
        configured: String,
    },
    /// More than one time key in the `BY` clause.
    MultipleTimeKeys,
    /// Execution failed in the core engine.
    Core(CoreError),
}

impl From<CoreError> for QueryError {
    fn from(e: CoreError) -> Self {
        QueryError::Core(e)
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnexpectedChar { ch, at } => {
                write!(f, "unexpected character `{ch}` at byte {at}")
            }
            QueryError::Unexpected {
                expected,
                found,
                at,
            } => {
                write!(f, "expected {expected}, found `{found}` at byte {at}")
            }
            QueryError::BadNumber { text, at } => {
                write!(f, "bad number `{text}` at byte {at}")
            }
            QueryError::Unresolved(msg) => write!(f, "cannot resolve {msg}"),
            QueryError::AggregatorMismatch {
                measure,
                requested,
                configured,
            } => write!(
                f,
                "measure `{measure}` aggregates with {configured}, not {requested}"
            ),
            QueryError::MultipleTimeKeys => {
                write!(f, "at most one time key (year/instant) is allowed in BY")
            }
            QueryError::Core(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, QueryError>;
