//! Recursive-descent parser.

use crate::ast::{FilterSpec, GroupKey, ModeSpec, Query, Select};
use crate::error::{QueryError, Result};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses a query string into its AST.
///
/// # Errors
///
/// Lexer errors and [`QueryError::Unexpected`] with byte positions.
pub fn parse(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        len: input.len(),
    };
    let q = p.query()?;
    p.eat_optional(&TokenKind::Semi);
    p.expect_end()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at(&self) -> usize {
        self.peek().map(|t| t.at).unwrap_or(self.len)
    }

    fn found(&self) -> String {
        match self.peek() {
            Some(t) => match &t.kind {
                TokenKind::Ident(s) => s.clone(),
                TokenKind::Str(s) => format!("'{s}'"),
                TokenKind::Number(n) => n.to_string(),
                TokenKind::Equals => "=".into(),
                TokenKind::LParen => "(".into(),
                TokenKind::RParen => ")".into(),
                TokenKind::Comma => ",".into(),
                TokenKind::Dot => ".".into(),
                TokenKind::DotDot => "..".into(),
                TokenKind::Slash => "/".into(),
                TokenKind::Semi => ";".into(),
            },
            None => "end of input".into(),
        }
    }

    fn unexpected(&self, expected: &str) -> QueryError {
        QueryError::Unexpected {
            expected: expected.to_owned(),
            found: self.found(),
            at: self.at(),
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_optional(&mut self, kind: &TokenKind) {
        self.eat(kind);
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<()> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    /// Consumes an identifier (any case) and returns it.
    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    /// Consumes a keyword (case-insensitive match).
    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.unexpected(&format!("keyword {kw}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(
            self.peek(),
            Some(Token { kind: TokenKind::Ident(s), .. }) if s.eq_ignore_ascii_case(kw)
        )
    }

    fn number(&mut self, what: &str) -> Result<i64> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) => {
                let n = *n;
                self.pos += 1;
                Ok(n)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.unexpected("end of query"))
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.keyword("SELECT")?;
        let mut selects = vec![self.select()?];
        while self.eat(&TokenKind::Comma) {
            selects.push(self.select()?);
        }
        self.keyword("BY")?;
        let mut groups = vec![self.group()?];
        while self.eat(&TokenKind::Comma) {
            groups.push(self.group()?);
        }
        let mut filters = Vec::new();
        if self.at_keyword("WHERE") {
            self.keyword("WHERE")?;
            filters.push(self.filter()?);
            while self.at_keyword("AND") {
                self.keyword("AND")?;
                filters.push(self.filter()?);
            }
        }
        let range = if self.at_keyword("FOR") {
            self.keyword("FOR")?;
            let a = self.number("start year")?;
            self.expect(TokenKind::DotDot, "`..`")?;
            let b = self.number("end year")?;
            let (a, b) = (
                i32::try_from(a).map_err(|_| QueryError::BadNumber {
                    text: a.to_string(),
                    at: self.at(),
                })?,
                i32::try_from(b).map_err(|_| QueryError::BadNumber {
                    text: b.to_string(),
                    at: self.at(),
                })?,
            );
            Some((a, b))
        } else {
            None
        };
        self.keyword("IN")?;
        let mode = if self.at_keyword("ALL") {
            self.keyword("ALL")?;
            self.keyword("MODES")?;
            let weights = if self.at_keyword("WITH") {
                self.keyword("WITH")?;
                self.keyword("WEIGHTS")?;
                let mut w = [0u8; 4];
                for (i, slot) in w.iter_mut().enumerate() {
                    if i > 0 {
                        self.expect(TokenKind::Comma, "`,`")?;
                    }
                    let n = self.number("weight 0..=10")?;
                    *slot = u8::try_from(n).map_err(|_| QueryError::BadNumber {
                        text: n.to_string(),
                        at: self.at(),
                    })?;
                }
                Some((w[0], w[1], w[2], w[3]))
            } else {
                None
            };
            ModeSpec::AllModes { weights }
        } else {
            self.keyword("MODE")?;
            self.mode()?
        };
        Ok(Query {
            selects,
            groups,
            filters,
            range,
            mode,
        })
    }

    /// `<dim>.<level> IN ('a', 'b')` or `<dim>.<level> = 'a'`.
    fn filter(&mut self) -> Result<FilterSpec> {
        let dimension = self.ident("dimension name")?;
        self.expect(TokenKind::Dot, "`.` (dimension.level)")?;
        let level = self.ident("level name")?;
        if self.eat(&TokenKind::Equals) {
            let member = self.string("member name literal")?;
            return Ok(FilterSpec {
                dimension,
                level,
                members: vec![member],
            });
        }
        self.keyword("IN")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut members = vec![self.string("member name literal")?];
        while self.eat(&TokenKind::Comma) {
            members.push(self.string("member name literal")?);
        }
        self.expect(TokenKind::RParen, "`)`")?;
        Ok(FilterSpec {
            dimension,
            level,
            members,
        })
    }

    /// Consumes a string literal.
    fn string(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Str(s),
                ..
            }) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn select(&mut self) -> Result<Select> {
        let aggregate = self.ident("aggregate function")?.to_ascii_lowercase();
        self.expect(TokenKind::LParen, "`(`")?;
        let measure = self.ident("measure name")?;
        self.expect(TokenKind::RParen, "`)`")?;
        Ok(Select { aggregate, measure })
    }

    fn group(&mut self) -> Result<GroupKey> {
        let first = self.ident("group key")?;
        if first.eq_ignore_ascii_case("year") {
            return Ok(GroupKey::Year);
        }
        if first.eq_ignore_ascii_case("quarter") {
            return Ok(GroupKey::Quarter);
        }
        if first.eq_ignore_ascii_case("month") {
            return Ok(GroupKey::Month);
        }
        if first.eq_ignore_ascii_case("instant") {
            return Ok(GroupKey::Instant);
        }
        self.expect(TokenKind::Dot, "`.` (dimension.level)")?;
        let level = self.ident("level name")?;
        Ok(GroupKey::DimLevel {
            dimension: first,
            level,
        })
    }

    fn mode(&mut self) -> Result<ModeSpec> {
        if self.at_keyword("tcm") || self.at_keyword("consistent") {
            self.pos += 1;
            return Ok(ModeSpec::Tcm);
        }
        if self.at_keyword("version") {
            self.pos += 1;
            let n = self.number("version number")?;
            let n = u32::try_from(n).map_err(|_| QueryError::BadNumber {
                text: n.to_string(),
                at: self.at(),
            })?;
            return Ok(ModeSpec::Version(n));
        }
        if self.at_keyword("at") {
            self.pos += 1;
            let month = self.number("month")?;
            self.expect(TokenKind::Slash, "`/`")?;
            let year = self.number("year")?;
            let month = u32::try_from(month).map_err(|_| QueryError::BadNumber {
                text: month.to_string(),
                at: self.at(),
            })?;
            let year = i32::try_from(year).map_err(|_| QueryError::BadNumber {
                text: year.to_string(),
                at: self.at(),
            })?;
            return Ok(ModeSpec::At { month, year });
        }
        Err(self.unexpected("tcm, VERSION <n> or AT <mm/yyyy>"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let q =
            parse("SELECT sum(Amount) BY year, Org.Division FOR 2001..2002 IN MODE tcm").unwrap();
        assert_eq!(
            q.selects,
            vec![Select {
                aggregate: "sum".into(),
                measure: "Amount".into()
            }]
        );
        assert_eq!(
            q.groups,
            vec![
                GroupKey::Year,
                GroupKey::DimLevel {
                    dimension: "Org".into(),
                    level: "Division".into()
                }
            ]
        );
        assert_eq!(q.range, Some((2001, 2002)));
        assert_eq!(q.mode, ModeSpec::Tcm);
    }

    #[test]
    fn parses_version_and_at_modes() {
        let q = parse("SELECT sum(Amount) BY year IN MODE VERSION 2").unwrap();
        assert_eq!(q.mode, ModeSpec::Version(2));
        let q = parse("SELECT sum(Amount) BY year IN MODE AT 06/2002").unwrap();
        assert_eq!(
            q.mode,
            ModeSpec::At {
                month: 6,
                year: 2002
            }
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse("select SUM(Amount) by YEAR in mode Consistent;").unwrap();
        assert_eq!(q.mode, ModeSpec::Tcm);
        assert_eq!(q.selects[0].aggregate, "sum");
    }

    #[test]
    fn multiple_selects_and_groups() {
        let q = parse(
            "SELECT sum(Turnover), sum(Profit) BY year, Org.Division, Org.Department \
             IN MODE tcm",
        )
        .unwrap();
        assert_eq!(q.selects.len(), 2);
        assert_eq!(q.groups.len(), 3);
    }

    #[test]
    fn error_messages_carry_positions() {
        let err = parse("SELECT sum Amount) BY year IN MODE tcm").unwrap_err();
        assert!(
            matches!(err, QueryError::Unexpected { at: 11, .. }),
            "{err:?}"
        );
        let err = parse("SELECT sum(Amount) BY year IN MODE nowhere").unwrap_err();
        assert!(matches!(err, QueryError::Unexpected { .. }));
        let err = parse("SELECT sum(Amount) BY year IN MODE tcm extra").unwrap_err();
        assert!(matches!(err, QueryError::Unexpected { .. }));
    }

    #[test]
    fn group_requires_level_after_dot() {
        let err = parse("SELECT sum(Amount) BY Org IN MODE tcm").unwrap_err();
        assert!(matches!(err, QueryError::Unexpected { .. }));
    }
}
