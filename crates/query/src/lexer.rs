//! Tokenisation of the query language.

use crate::error::{QueryError, Result};

/// The kind of a token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A bare identifier or keyword (`SELECT`, `Org`, `Amount`).
    Ident(String),
    /// A single-quoted string literal (`'Dpt.Jones'`); `''` escapes a
    /// quote, SQL style.
    Str(String),
    /// An unsigned integer literal.
    Number(i64),
    /// `=`
    Equals,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `/`
    Slash,
    /// `;`
    Semi,
}

/// A token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub at: usize,
}

/// Splits a query string into tokens. Identifiers may contain letters,
/// digits, `_`, `&`, `+`, `-` and `'` after the first letter, so member
/// and dimension names like `R&D` or `Dpt.O'Brian` survive (the `.`
/// still separates dimension from level).
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    at: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    at: i,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    at: i,
                });
                i += 1;
            }
            ';' => {
                out.push(Token {
                    kind: TokenKind::Semi,
                    at: i,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    at: i,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Equals,
                    at: i,
                });
                i += 1;
            }
            '\'' => {
                // UTF-8 safe: only the ASCII quote byte is inspected;
                // content is copied as whole slices between quotes.
                let start = i;
                i += 1;
                let mut text = String::new();
                let mut seg_start = i;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(QueryError::Unexpected {
                                expected: "closing `'`".into(),
                                found: "end of input".into(),
                                at: start,
                            })
                        }
                        Some(b'\'') => {
                            text.push_str(&input[seg_start..i]);
                            if bytes.get(i + 1) == Some(&b'\'') {
                                text.push('\'');
                                i += 2;
                                seg_start = i;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => i += 1,
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(text),
                    at: start,
                });
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    out.push(Token {
                        kind: TokenKind::DotDot,
                        at: i,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Dot,
                        at: i,
                    });
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let value = text.parse::<i64>().map_err(|_| QueryError::BadNumber {
                    text: text.to_owned(),
                    at: start,
                })?;
                out.push(Token {
                    kind: TokenKind::Number(value),
                    at: start,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_alphanumeric() || matches!(c, '_' | '&' | '+' | '-' | '\'') {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_owned()),
                    at: start,
                });
            }
            other => {
                return Err(QueryError::UnexpectedChar { ch: other, at: i });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_query_tokens() {
        assert_eq!(
            kinds("SELECT sum(Amount) BY year"),
            vec![
                Ident("SELECT".into()),
                Ident("sum".into()),
                LParen,
                Ident("Amount".into()),
                RParen,
                Ident("BY".into()),
                Ident("year".into()),
            ]
        );
    }

    #[test]
    fn ranges_and_dates() {
        assert_eq!(
            kinds("FOR 2001..2002 AT 06/2002"),
            vec![
                Ident("FOR".into()),
                Number(2001),
                DotDot,
                Number(2002),
                Ident("AT".into()),
                Number(6),
                Slash,
                Number(2002),
            ]
        );
    }

    #[test]
    fn identifiers_keep_special_name_chars() {
        assert_eq!(
            kinds("R&D Dpt'X a_b-c"),
            vec![
                Ident("R&D".into()),
                Ident("Dpt'X".into()),
                Ident("a_b-c".into()),
            ]
        );
    }

    #[test]
    fn dot_separates_dimension_and_level() {
        assert_eq!(
            kinds("Org.Division"),
            vec![Ident("Org".into()), Dot, Ident("Division".into())]
        );
    }

    #[test]
    fn bad_character_reports_position() {
        let err = tokenize("SELECT ?").unwrap_err();
        assert_eq!(err, QueryError::UnexpectedChar { ch: '?', at: 7 });
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            kinds("WHERE x = 'Dpt.Jones'"),
            vec![
                Ident("WHERE".into()),
                Ident("x".into()),
                Equals,
                Str("Dpt.Jones".into()),
            ]
        );
        assert_eq!(kinds("'it''s'"), vec![Str("it's".into())]);
        assert_eq!(kinds("'R&D — lab'"), vec![Str("R&D — lab".into())]);
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks = tokenize("  BY year").unwrap();
        assert_eq!(toks[0].at, 2);
        assert_eq!(toks[1].at, 5);
    }
}
