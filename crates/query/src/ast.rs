//! The abstract syntax tree of a query.

/// One `agg(measure)` item of the SELECT clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Select {
    /// Aggregate function name, lower-cased (`sum`, `min`, …).
    pub aggregate: String,
    /// Measure name, as written.
    pub measure: String,
}

/// One BY-clause key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupKey {
    /// `year` — group by calendar year.
    Year,
    /// `quarter` — group by calendar quarter.
    Quarter,
    /// `month` — group by calendar month.
    Month,
    /// `instant` — group by raw instant.
    Instant,
    /// `<dimension>.<level>`.
    DimLevel {
        /// Dimension name.
        dimension: String,
        /// Level name.
        level: String,
    },
}

/// One WHERE-clause condition: `<dimension>.<level> IN ('a', 'b')` or
/// `<dimension>.<level> = 'a'`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterSpec {
    /// Dimension name.
    pub dimension: String,
    /// Level the member names live at.
    pub level: String,
    /// Accepted member names.
    pub members: Vec<String>,
}

/// The temporal mode named in `IN MODE …` / `IN ALL MODES`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModeSpec {
    /// `tcm` / `consistent`.
    Tcm,
    /// `VERSION n` — structure version by chronological index.
    Version(u32),
    /// `AT mm/yyyy` — the structure version valid at an instant.
    At {
        /// Calendar month `1..=12`.
        month: u32,
        /// Calendar year.
        year: i32,
    },
    /// `ALL MODES [WITH WEIGHTS s,e,a,u]` — evaluate under every
    /// temporal mode and score each with the §5.2 quality factor
    /// (execute via [`crate::run_compare`]).
    AllModes {
        /// Optional `pds` weights for (source, exact, approx, unknown).
        weights: Option<(u8, u8, u8, u8)>,
    },
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// SELECT items, in order.
    pub selects: Vec<Select>,
    /// BY keys, in order.
    pub groups: Vec<GroupKey>,
    /// WHERE conditions (conjunctive).
    pub filters: Vec<FilterSpec>,
    /// Optional `FOR a..b` year range (inclusive).
    pub range: Option<(i32, i32)>,
    /// The temporal mode of presentation.
    pub mode: ModeSpec,
}
