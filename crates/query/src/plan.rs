//! Planning and execution: AST → core [`AggregateQuery`] → result.

use mvolap_core::aggregate::{evaluate_par, AggregateQuery, ResultSet, TimeLevel};
use mvolap_core::structure_version::{structure_version_at, StructureVersion};
use mvolap_core::tmp::TemporalMode;
use mvolap_core::{Aggregator, ExecContext, QueryMemo, StructureVersionId, Tmd};
use mvolap_temporal::{Instant, Interval};

use crate::ast::{GroupKey, ModeSpec, Query};
use crate::error::{QueryError, Result};
use crate::parser::parse;

/// Resolves a parsed query against a schema into an executable
/// [`AggregateQuery`].
///
/// # Errors
///
/// [`QueryError::Unresolved`] for unknown names,
/// [`QueryError::AggregatorMismatch`] when the requested aggregate
/// disagrees with the measure's configured `⊕m`,
/// [`QueryError::MultipleTimeKeys`] for two time keys.
pub fn plan(
    tmd: &Tmd,
    structure_versions: &[StructureVersion],
    query: &Query,
) -> Result<AggregateQuery> {
    // SELECT items: resolve measures and validate aggregators.
    let mut measures = Vec::with_capacity(query.selects.len());
    for s in &query.selects {
        let id = tmd
            .measure_by_name(&s.measure)
            .map_err(|_| QueryError::Unresolved(format!("measure `{}`", s.measure)))?;
        let configured = tmd.measures()[id.index()].aggregator;
        let requested = Aggregator::parse(&s.aggregate)
            .ok_or_else(|| QueryError::Unresolved(format!("aggregate `{}`", s.aggregate)))?;
        if requested != configured {
            return Err(QueryError::AggregatorMismatch {
                measure: s.measure.clone(),
                requested: requested.name().to_owned(),
                configured: configured.name().to_owned(),
            });
        }
        measures.push(id);
    }

    // BY items: at most one time key; dimension.level pairs resolve
    // against the schema (level existence is validated at execution,
    // when the evaluation instant is known).
    let mut time_level: Option<TimeLevel> = None;
    let mut group_by = Vec::new();
    for g in &query.groups {
        match g {
            GroupKey::Year => {
                if time_level.replace(TimeLevel::Year).is_some() {
                    return Err(QueryError::MultipleTimeKeys);
                }
            }
            GroupKey::Quarter => {
                if time_level.replace(TimeLevel::Quarter).is_some() {
                    return Err(QueryError::MultipleTimeKeys);
                }
            }
            GroupKey::Month => {
                if time_level.replace(TimeLevel::Month).is_some() {
                    return Err(QueryError::MultipleTimeKeys);
                }
            }
            GroupKey::Instant => {
                if time_level.replace(TimeLevel::Instant).is_some() {
                    return Err(QueryError::MultipleTimeKeys);
                }
            }
            GroupKey::DimLevel { dimension, level } => {
                let dim = tmd
                    .dimension_by_name(dimension)
                    .map_err(|_| QueryError::Unresolved(format!("dimension `{dimension}`")))?;
                group_by.push((dim, level.clone()));
            }
        }
    }

    let mode = match &query.mode {
        ModeSpec::AllModes { .. } => {
            return Err(QueryError::Unresolved(
                "ALL MODES queries compare presentations; execute them with `run_compare`".into(),
            ))
        }
        ModeSpec::Tcm => TemporalMode::Consistent,
        ModeSpec::Version(n) => {
            let id = StructureVersionId(*n);
            if structure_versions.get(id.index()).map(|v| v.id) != Some(id) {
                return Err(QueryError::Unresolved(format!(
                    "structure version {n} (schema has {})",
                    structure_versions.len()
                )));
            }
            TemporalMode::Version(id)
        }
        ModeSpec::At { month, year } => {
            let t = Instant::from_ym(*year, *month)
                .map_err(|e| QueryError::Unresolved(format!("instant: {e}")))?;
            let sv = structure_version_at(structure_versions, t)
                .map_err(|_| QueryError::Unresolved(format!("structure version at {t}")))?;
            TemporalMode::Version(sv.id)
        }
    };

    let time_range = match query.range {
        Some((a, b)) if a <= b => Some(Interval::years(a, b)),
        Some((a, b)) => {
            return Err(QueryError::Unresolved(format!(
                "year range {a}..{b} is reversed"
            )))
        }
        None => None,
    };

    let mut filters = Vec::with_capacity(query.filters.len());
    for f in &query.filters {
        let dim = tmd
            .dimension_by_name(&f.dimension)
            .map_err(|_| QueryError::Unresolved(format!("dimension `{}`", f.dimension)))?;
        filters.push(mvolap_core::aggregate::MemberFilter {
            dimension: dim,
            level: f.level.clone(),
            members: f.members.clone(),
        });
    }

    Ok(AggregateQuery {
        group_by,
        time_level: time_level.unwrap_or(TimeLevel::All),
        measures,
        mode,
        time_range,
        filters,
    })
}

/// Parses, plans and executes a query string against a schema, reusing
/// pre-inferred structure versions.
///
/// # Errors
///
/// Any lexing, parsing, planning or execution failure.
pub fn run_with_versions(
    tmd: &Tmd,
    structure_versions: &[StructureVersion],
    input: &str,
) -> Result<ResultSet> {
    run_with_versions_par(
        tmd,
        structure_versions,
        input,
        &ExecContext::sequential(),
        &QueryMemo::new(),
    )
}

/// Morsel-parallel [`run_with_versions`]: execution routes through
/// [`evaluate_par`] with the caller's [`ExecContext`] and shared
/// [`QueryMemo`]. Results are bit-identical to the sequential run for
/// any thread count.
///
/// # Errors
///
/// Any lexing, parsing, planning or execution failure.
pub fn run_with_versions_par(
    tmd: &Tmd,
    structure_versions: &[StructureVersion],
    input: &str,
    ctx: &ExecContext,
    memo: &QueryMemo,
) -> Result<ResultSet> {
    let ast = parse(input)?;
    let q = plan(tmd, structure_versions, &ast)?;
    Ok(evaluate_par(tmd, structure_versions, &q, ctx, memo)?)
}

/// Parses, plans and executes a query string against a schema.
///
/// # Errors
///
/// Any lexing, parsing, planning or execution failure.
pub fn run(tmd: &Tmd, input: &str) -> Result<ResultSet> {
    let svs = tmd.structure_versions();
    run_with_versions(tmd, &svs, input)
}

/// Morsel-parallel [`run`]; see [`run_with_versions_par`].
///
/// # Errors
///
/// Any lexing, parsing, planning or execution failure.
pub fn run_par(tmd: &Tmd, input: &str, ctx: &ExecContext, memo: &QueryMemo) -> Result<ResultSet> {
    let svs = tmd.structure_versions();
    run_with_versions_par(tmd, &svs, input, ctx, memo)
}

/// One entry of an `IN ALL MODES` comparison: the mode's result plus its
/// §5.2 quality factor under the requested (or default) weights.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// The presented result.
    pub result: ResultSet,
    /// The global quality factor `Q` of this presentation.
    pub quality: f64,
}

/// True when `input` parses as an `IN ALL MODES` query, i.e. the
/// comparison path ([`run_compare`] / [`run_compare_par`]) applies
/// rather than the single-mode runners. Unparseable input is `false` —
/// the single-mode runner will surface the parse error.
#[must_use]
pub fn is_all_modes(input: &str) -> bool {
    matches!(parse(input), Ok(ast) if matches!(ast.mode, ModeSpec::AllModes { .. }))
}

/// Executes an `IN ALL MODES` query: the body is evaluated once per
/// temporal mode (tcm first, then each structure version), each scored
/// with the quality factor so the user "can choose his best version
/// among all temporal modes of presentation" (§5.2). Results come back
/// ordered best-quality first (ties keep TMP order).
///
/// Plain `IN MODE …` queries are also accepted and yield a single entry.
///
/// # Errors
///
/// Any lexing, parsing, planning or execution failure.
pub fn run_compare(tmd: &Tmd, input: &str) -> Result<Vec<ModeResult>> {
    run_compare_par(tmd, input, &ExecContext::sequential(), &QueryMemo::new())
}

/// Morsel-parallel [`run_compare`]: every mode's evaluation shares
/// `memo`, so mapping routes resolved for one presentation are reused
/// by the others. Bit-identical to [`run_compare`] for any thread
/// count.
///
/// # Errors
///
/// Any lexing, parsing, planning or execution failure.
pub fn run_compare_par(
    tmd: &Tmd,
    input: &str,
    ctx: &ExecContext,
    memo: &QueryMemo,
) -> Result<Vec<ModeResult>> {
    use mvolap_core::ConfidenceWeights;

    let svs = tmd.structure_versions();
    let ast = parse(input)?;
    let (modes, weights) = match &ast.mode {
        ModeSpec::AllModes { weights } => {
            let w = weights
                .map(|(s, e, a, u)| ConfidenceWeights::new(s, e, a, u))
                .unwrap_or_default();
            (mvolap_core::all_modes(&svs), w)
        }
        _ => {
            let planned = plan(tmd, &svs, &ast)?;
            (vec![planned.mode], ConfidenceWeights::default())
        }
    };

    // Plan once with a concrete mode, then swap modes per evaluation.
    let mut template = {
        let mut concrete = ast.clone();
        if matches!(concrete.mode, ModeSpec::AllModes { .. }) {
            concrete.mode = ModeSpec::Tcm;
        }
        plan(tmd, &svs, &concrete)?
    };

    let mut out = Vec::with_capacity(modes.len());
    for mode in modes {
        template.mode = mode;
        let result = evaluate_par(tmd, &svs, &template, ctx, memo)?;
        let quality = result.quality(&weights);
        out.push(ModeResult { result, quality });
    }
    out.sort_by(|a, b| {
        b.quality
            .partial_cmp(&a.quality)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvolap_core::case_study::case_study;
    use mvolap_core::Confidence;

    #[test]
    fn q1_tcm_matches_table_4() {
        let cs = case_study();
        let rs = run(
            &cs.tmd,
            "SELECT sum(Amount) BY year, Org.Division FOR 2001..2002 IN MODE tcm",
        )
        .unwrap();
        let rows: Vec<(String, String, Option<f64>)> = rs
            .rows
            .iter()
            .map(|r| (r.time.clone(), r.keys[0].clone(), r.cells[0].value))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("2001".into(), "Sales".into(), Some(150.0)),
                ("2001".into(), "R&D".into(), Some(100.0)),
                ("2002".into(), "Sales".into(), Some(100.0)),
                ("2002".into(), "R&D".into(), Some(150.0)),
            ]
        );
    }

    #[test]
    fn q2_in_version_2_matches_table_10() {
        let cs = case_study();
        let rs = run(
            &cs.tmd,
            "SELECT sum(Amount) BY year, Org.Department FOR 2002..2003 IN MODE VERSION 2",
        )
        .unwrap();
        let bill_2002 = rs
            .rows
            .iter()
            .find(|r| r.time == "2002" && r.keys[0] == "Dpt.Bill")
            .unwrap();
        assert_eq!(bill_2002.cells[0].value, Some(40.0));
        assert_eq!(bill_2002.cells[0].confidence, Confidence::Approx);
    }

    #[test]
    fn at_mode_resolves_to_covering_version() {
        let cs = case_study();
        let a = run(
            &cs.tmd,
            "SELECT sum(Amount) BY year, Org.Department FOR 2002..2003 IN MODE AT 06/2002",
        )
        .unwrap();
        let b = run(
            &cs.tmd,
            "SELECT sum(Amount) BY year, Org.Department FOR 2002..2003 IN MODE VERSION 1",
        )
        .unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn no_time_key_aggregates_whole_period() {
        let cs = case_study();
        let rs = run(&cs.tmd, "SELECT sum(Amount) BY Org.Division IN MODE tcm").unwrap();
        assert_eq!(rs.rows.len(), 2);
        let sales = rs.rows.iter().find(|r| r.keys[0] == "Sales").unwrap();
        assert_eq!(sales.cells[0].value, Some(450.0));
    }

    #[test]
    fn unresolved_names_error() {
        let cs = case_study();
        assert!(matches!(
            run(&cs.tmd, "SELECT sum(Ghost) BY year IN MODE tcm"),
            Err(QueryError::Unresolved(_))
        ));
        assert!(matches!(
            run(
                &cs.tmd,
                "SELECT sum(Amount) BY Nowhere.Division IN MODE tcm"
            ),
            Err(QueryError::Unresolved(_))
        ));
        assert!(matches!(
            run(&cs.tmd, "SELECT sum(Amount) BY year IN MODE VERSION 9"),
            Err(QueryError::Unresolved(_))
        ));
        assert!(matches!(
            run(&cs.tmd, "SELECT sum(Amount) BY year IN MODE AT 06/1999"),
            Err(QueryError::Unresolved(_))
        ));
    }

    #[test]
    fn aggregator_mismatch_is_rejected() {
        let cs = case_study();
        let err = run(&cs.tmd, "SELECT max(Amount) BY year IN MODE tcm").unwrap_err();
        assert!(matches!(err, QueryError::AggregatorMismatch { .. }));
    }

    #[test]
    fn two_time_keys_rejected() {
        let cs = case_study();
        let err = run(&cs.tmd, "SELECT sum(Amount) BY year, instant IN MODE tcm").unwrap_err();
        assert_eq!(err, QueryError::MultipleTimeKeys);
    }

    #[test]
    fn all_modes_comparison_ranks_by_quality() {
        let cs = case_study();
        let results = run_compare(
            &cs.tmd,
            "SELECT sum(Amount) BY year, Org.Department FOR 2002..2003 IN ALL MODES",
        )
        .unwrap();
        // tcm + three structure versions.
        assert_eq!(results.len(), 4);
        // Best first: tcm scores a perfect 1.0.
        assert_eq!(results[0].result.mode, TemporalMode::Consistent);
        assert!((results[0].quality - 1.0).abs() < 1e-12);
        for w in results.windows(2) {
            assert!(w[0].quality >= w[1].quality);
        }
    }

    #[test]
    fn all_modes_with_custom_weights() {
        let cs = case_study();
        // A user who fully trusts exact mappings: the 2002 structure
        // (exact merge) ties tcm at 1.0.
        let results = run_compare(
            &cs.tmd,
            "SELECT sum(Amount) BY year, Org.Department FOR 2002..2003 \
             IN ALL MODES WITH WEIGHTS 10,10,0,0",
        )
        .unwrap();
        let vs1 = results
            .iter()
            .find(|r| r.result.mode.label() == "VS1")
            .unwrap();
        assert!((vs1.quality - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_modes_rejected_by_plain_run() {
        let cs = case_study();
        let err = run(&cs.tmd, "SELECT sum(Amount) BY year IN ALL MODES").unwrap_err();
        assert!(matches!(err, QueryError::Unresolved(_)));
    }

    #[test]
    fn run_compare_accepts_single_mode_queries() {
        let cs = case_study();
        let results = run_compare(
            &cs.tmd,
            "SELECT sum(Amount) BY year, Org.Division FOR 2001..2002 IN MODE VERSION 1",
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].result.mode.label(), "VS1");
    }

    #[test]
    fn where_clause_filters_members() {
        let cs = case_study();
        let rs = run(
            &cs.tmd,
            "SELECT sum(Amount) BY year, Org.Department \
             WHERE Org.Division = 'Sales' IN MODE tcm",
        )
        .unwrap();
        // Only the departments under Sales at each fact's own time.
        assert!(rs.rows.iter().all(|r| r.keys[0] != "Dpt.Brian"));
        // Smith is under Sales in 2001, under R&D afterwards.
        assert!(rs
            .rows
            .iter()
            .any(|r| r.time == "2001" && r.keys[0] == "Dpt.Smith"));
        assert!(!rs
            .rows
            .iter()
            .any(|r| r.time == "2002" && r.keys[0] == "Dpt.Smith"));
    }

    #[test]
    fn where_in_list_and_conjunction() {
        let cs = case_study();
        let rs = run(
            &cs.tmd,
            "SELECT sum(Amount) BY year, Org.Department \
             WHERE Org.Department IN ('Dpt.Smith', 'Dpt.Brian') \
             AND Org.Division = 'R&D' \
             FOR 2001..2003 IN MODE tcm",
        )
        .unwrap();
        // Smith 2001 was in Sales: filtered by the second condition.
        let keys: Vec<(String, String)> = rs
            .rows
            .iter()
            .map(|r| (r.time.clone(), r.keys[0].clone()))
            .collect();
        assert!(keys.contains(&("2002".into(), "Dpt.Smith".into())));
        assert!(!keys.contains(&("2001".into(), "Dpt.Smith".into())));
        assert!(keys.contains(&("2001".into(), "Dpt.Brian".into())));
    }

    #[test]
    fn quarter_and_month_group_keys() {
        let cs = case_study();
        let rs = run(&cs.tmd, "SELECT sum(Amount) BY quarter IN MODE tcm").unwrap();
        // All case-study facts sit in June: Q2 of each year.
        assert!(rs.rows.iter().all(|r| r.time.ends_with("-Q2")));
        assert_eq!(rs.time_header, "Quarter");
        let rs = run(&cs.tmd, "SELECT sum(Amount) BY month IN MODE tcm").unwrap();
        assert!(rs.rows.iter().all(|r| r.time.ends_with("-06")));
    }

    #[test]
    fn where_unknown_dimension_is_unresolved() {
        let cs = case_study();
        assert!(matches!(
            run(
                &cs.tmd,
                "SELECT sum(Amount) BY year WHERE Ghost.Division = 'x' IN MODE tcm"
            ),
            Err(QueryError::Unresolved(_))
        ));
    }

    #[test]
    fn reversed_range_rejected() {
        let cs = case_study();
        let err = run(
            &cs.tmd,
            "SELECT sum(Amount) BY year FOR 2003..2001 IN MODE tcm",
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::Unresolved(_)));
    }
}
