//! Property-based tests on the core model's data structures:
//! dimension graph invariants, mapping-function algebra, confidence
//! lattice laws, and structure-version inference on random dimensions.

use mvolap_core::{
    infer_structure_versions, Confidence, MappingFunction, MemberVersionSpec, TemporalDimension,
};
use mvolap_temporal::{Instant, Interval};
use proptest::prelude::*;

fn confidence_strategy() -> impl Strategy<Value = Confidence> {
    prop::sample::select(Confidence::ALL.to_vec())
}

fn function_strategy() -> impl Strategy<Value = MappingFunction> {
    prop_oneof![
        Just(MappingFunction::Identity),
        Just(MappingFunction::Unknown),
        (-3.0f64..3.0).prop_map(MappingFunction::Scale),
        ((-3.0f64..3.0), (-10.0f64..10.0))
            .prop_map(|(a, b)| MappingFunction::Affine { a, b }),
    ]
}

/// A random small dimension: members with random validities, and a
/// random forest of valid roll-up edges (built through the validated
/// API, so construction itself re-checks the invariants).
fn dimension_strategy() -> impl Strategy<Value = TemporalDimension> {
    let member = (0i64..40, 1i64..40, prop::bool::ANY);
    prop::collection::vec(member, 1..12).prop_map(|specs| {
        let mut d = TemporalDimension::new("D");
        let mut ids = Vec::new();
        for (i, (start, len, open)) in specs.iter().enumerate() {
            let s = Instant::at(*start);
            let validity = if *open {
                Interval::since(s)
            } else {
                Interval::of(s, Instant::at(start + len))
            };
            ids.push(d.add_version(MemberVersionSpec::named(format!("m{i}")), validity));
        }
        // Wire a forest: each member may point at an earlier-id member
        // (guaranteeing acyclicity) over the intersection of validities.
        for (i, &child) in ids.iter().enumerate().skip(1) {
            let parent = ids[i / 2];
            let cv = d.version(child).expect("exists").validity;
            let pv = d.version(parent).expect("exists").validity;
            if let Some(edge) = cv.intersect(pv) {
                d.add_relationship(child, parent, edge).expect("acyclic by construction");
            }
        }
        d
    })
}

proptest! {
    /// ⊗cf is a commutative, associative, idempotent meet with identity
    /// `sd` and absorbing element `uk` — a bounded semilattice.
    #[test]
    fn confidence_is_a_meet_semilattice(
        a in confidence_strategy(),
        b in confidence_strategy(),
        c in confidence_strategy(),
    ) {
        prop_assert_eq!(a.combine(b), b.combine(a));
        prop_assert_eq!(a.combine(b).combine(c), a.combine(b.combine(c)));
        prop_assert_eq!(a.combine(a), a);
        prop_assert_eq!(a.combine(Confidence::Source), a);
        prop_assert_eq!(a.combine(Confidence::Unknown), Confidence::Unknown);
        // Combining never increases reliability.
        prop_assert!(a.combine(b) <= a);
    }

    /// Function composition agrees with sequential application and is
    /// associative; identity is a two-sided unit and unknown absorbs.
    #[test]
    fn mapping_function_algebra(
        f in function_strategy(),
        g in function_strategy(),
        h in function_strategy(),
        x in -50.0f64..50.0,
    ) {
        let composed = f.compose(g).apply(x);
        let sequential = f.apply(x).and_then(|y| g.apply(y));
        match (composed, sequential) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-6 * b.abs().max(1.0)),
            (a, b) => prop_assert_eq!(a, b),
        }
        // Associativity (on application results).
        let left = f.compose(g).compose(h).apply(x);
        let right = f.compose(g.compose(h)).apply(x);
        match (left, right) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-6 * b.abs().max(1.0)),
            (a, b) => prop_assert_eq!(a, b),
        }
        prop_assert_eq!(
            MappingFunction::Identity.compose(f).apply(x),
            f.apply(x)
        );
        prop_assert_eq!(
            f.compose(MappingFunction::Identity).apply(x),
            f.apply(x)
        );
        prop_assert_eq!(f.compose(MappingFunction::Unknown).apply(x), None);
    }

    /// Every snapshot of a random dimension is a DAG with sane depths:
    /// parents are strictly shallower than the deepest child path.
    #[test]
    fn snapshots_are_dags_with_consistent_depths(
        d in dimension_strategy(),
        probe in 0i64..80,
    ) {
        let t = Instant::at(probe);
        let snap = d.snapshot(t);
        let depths = snap.depths();
        // Every valid member got a depth (acyclicity: Kahn visits all).
        prop_assert_eq!(depths.len(), snap.members().len());
        for &m in snap.members() {
            for p in d.parents_at(m, t) {
                prop_assert!(depths[&p] < depths[&m]);
            }
        }
        // Roots have depth zero, leaves have no children.
        for r in snap.roots() {
            prop_assert_eq!(depths[&r], 0);
        }
        for l in snap.leaves() {
            prop_assert!(d.children_at(l, t).is_empty());
        }
    }

    /// Structure versions cover exactly the instants at which at least
    /// one element is valid, and membership matches point queries.
    #[test]
    fn structure_versions_agree_with_point_queries(
        d in dimension_strategy(),
        probe in -5i64..85,
    ) {
        let svs = infer_structure_versions(std::slice::from_ref(&d));
        let t = Instant::at(probe);
        let covered = svs.iter().find(|sv| sv.interval.contains(t));
        let any_valid = d.versions().iter().any(|v| v.validity.contains(t));
        prop_assert_eq!(covered.is_some(), any_valid);
        if let Some(sv) = covered {
            for v in d.versions() {
                prop_assert_eq!(
                    sv.contains(mvolap_core::DimensionId(0), v.id),
                    v.validity.contains(t),
                    "member {} at {}", v.name, t
                );
            }
        }
    }

    /// Excluding a member keeps the dimension internally consistent:
    /// no relationship outlives either endpoint.
    #[test]
    fn exclusion_preserves_relationship_invariant(
        d in dimension_strategy(),
        victim_seed in 0usize..12,
        cut in 5i64..60,
    ) {
        let mut d = d;
        let victim = d.versions()[victim_seed % d.versions().len()].id;
        let at = Instant::at(cut);
        // Exclusion may legitimately fail (cut before start); when it
        // succeeds, validate the Definition 2 inclusion for every edge.
        if d.exclude(victim, at).is_ok() {
            for r in d.relationships() {
                let cv = d.version(r.child).expect("exists").validity;
                let pv = d.version(r.parent).expect("exists").validity;
                let both = cv.intersect(pv);
                prop_assert!(
                    both.map(|b| b.contains_interval(r.validity)) == Some(true),
                    "edge {:?} outlives an endpoint", r
                );
            }
        }
    }
}
