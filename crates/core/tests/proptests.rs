//! Randomized property tests on the core model's data structures:
//! dimension graph invariants, mapping-function algebra, confidence
//! lattice laws, and structure-version inference on random dimensions.
//! Driven by the in-repo deterministic generator (`mvolap_prng::check`
//! replaces the external `proptest` crate, which the offline build
//! cannot fetch).

use mvolap_core::{
    infer_structure_versions, Confidence, MappingFunction, MemberVersionSpec, TemporalDimension,
};
use mvolap_prng::{check, Rng};
use mvolap_temporal::{Instant, Interval};

const CASES: u64 = 128;

fn any_confidence(rng: &mut Rng) -> Confidence {
    *rng.choose(&Confidence::ALL).expect("nonempty")
}

fn any_function(rng: &mut Rng) -> MappingFunction {
    match rng.usize_below(4) {
        0 => MappingFunction::Identity,
        1 => MappingFunction::Unknown,
        2 => MappingFunction::Scale(rng.f64_in(-3.0, 3.0)),
        _ => MappingFunction::Affine {
            a: rng.f64_in(-3.0, 3.0),
            b: rng.f64_in(-10.0, 10.0),
        },
    }
}

/// A random small dimension: members with random validities, and a
/// random forest of valid roll-up edges (built through the validated
/// API, so construction itself re-checks the invariants).
fn any_dimension(rng: &mut Rng) -> TemporalDimension {
    let mut d = TemporalDimension::new("D");
    let mut ids = Vec::new();
    for i in 0..rng.usize_in(1, 12) {
        let start = rng.i64_in(0, 40);
        let len = rng.i64_in(1, 40);
        let s = Instant::at(start);
        let validity = if rng.bool() {
            Interval::since(s)
        } else {
            Interval::of(s, Instant::at(start + len))
        };
        ids.push(d.add_version(MemberVersionSpec::named(format!("m{i}")), validity));
    }
    // Wire a forest: each member may point at an earlier-id member
    // (guaranteeing acyclicity) over the intersection of validities.
    for (i, &child) in ids.iter().enumerate().skip(1) {
        let parent = ids[i / 2];
        let cv = d.version(child).expect("exists").validity;
        let pv = d.version(parent).expect("exists").validity;
        if let Some(edge) = cv.intersect(pv) {
            d.add_relationship(child, parent, edge)
                .expect("acyclic by construction");
        }
    }
    d
}

/// ⊗cf is a commutative, associative, idempotent meet with identity
/// `sd` and absorbing element `uk` — a bounded semilattice.
#[test]
fn confidence_is_a_meet_semilattice() {
    check(CASES, 0xc001, |rng| {
        let (a, b, c) = (
            any_confidence(rng),
            any_confidence(rng),
            any_confidence(rng),
        );
        assert_eq!(a.combine(b), b.combine(a));
        assert_eq!(a.combine(b).combine(c), a.combine(b.combine(c)));
        assert_eq!(a.combine(a), a);
        assert_eq!(a.combine(Confidence::Source), a);
        assert_eq!(a.combine(Confidence::Unknown), Confidence::Unknown);
        // Combining never increases reliability.
        assert!(a.combine(b) <= a);
    });
}

/// Function composition agrees with sequential application and is
/// associative; identity is a two-sided unit and unknown absorbs.
#[test]
fn mapping_function_algebra() {
    check(CASES, 0xc002, |rng| {
        let (f, g, h) = (any_function(rng), any_function(rng), any_function(rng));
        let x = rng.f64_in(-50.0, 50.0);
        let composed = f.compose(g).apply(x);
        let sequential = f.apply(x).and_then(|y| g.apply(y));
        match (composed, sequential) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6 * b.abs().max(1.0)),
            (a, b) => assert_eq!(a, b),
        }
        // Associativity (on application results).
        let left = f.compose(g).compose(h).apply(x);
        let right = f.compose(g.compose(h)).apply(x);
        match (left, right) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6 * b.abs().max(1.0)),
            (a, b) => assert_eq!(a, b),
        }
        assert_eq!(MappingFunction::Identity.compose(f).apply(x), f.apply(x));
        assert_eq!(f.compose(MappingFunction::Identity).apply(x), f.apply(x));
        assert_eq!(f.compose(MappingFunction::Unknown).apply(x), None);
    });
}

/// Every snapshot of a random dimension is a DAG with sane depths:
/// parents are strictly shallower than the deepest child path.
#[test]
fn snapshots_are_dags_with_consistent_depths() {
    check(CASES, 0xc003, |rng| {
        let d = any_dimension(rng);
        let t = Instant::at(rng.i64_in(0, 80));
        let snap = d.snapshot(t);
        let depths = snap.depths();
        // Every valid member got a depth (acyclicity: Kahn visits all).
        assert_eq!(depths.len(), snap.members().len());
        for &m in snap.members() {
            for p in d.parents_at(m, t) {
                assert!(depths[&p] < depths[&m]);
            }
        }
        // Roots have depth zero, leaves have no children.
        for r in snap.roots() {
            assert_eq!(depths[&r], 0);
        }
        for l in snap.leaves() {
            assert!(d.children_at(l, t).is_empty());
        }
    });
}

/// Structure versions cover exactly the instants at which at least one
/// element is valid, and membership matches point queries.
#[test]
fn structure_versions_agree_with_point_queries() {
    check(CASES, 0xc004, |rng| {
        let d = any_dimension(rng);
        let t = Instant::at(rng.i64_in(-5, 85));
        let svs = infer_structure_versions(std::slice::from_ref(&d));
        let covered = svs.iter().find(|sv| sv.interval.contains(t));
        let any_valid = d.versions().iter().any(|v| v.validity.contains(t));
        assert_eq!(covered.is_some(), any_valid);
        if let Some(sv) = covered {
            for v in d.versions() {
                assert_eq!(
                    sv.contains(mvolap_core::DimensionId(0), v.id),
                    v.validity.contains(t),
                    "member {} at {}",
                    v.name,
                    t
                );
            }
        }
    });
}

/// Excluding a member keeps the dimension internally consistent: no
/// relationship outlives either endpoint.
#[test]
fn exclusion_preserves_relationship_invariant() {
    check(CASES, 0xc005, |rng| {
        let mut d = any_dimension(rng);
        let victim = d.versions()[rng.usize_below(d.versions().len())].id;
        let at = Instant::at(rng.i64_in(5, 60));
        // Exclusion may legitimately fail (cut before start); when it
        // succeeds, validate the Definition 2 inclusion for every edge.
        if d.exclude(victim, at).is_ok() {
            for r in d.relationships() {
                let cv = d.version(r.child).expect("exists").validity;
                let pv = d.version(r.parent).expect("exists").validity;
                let both = cv.intersect(pv);
                assert!(
                    both.map(|b| b.contains_interval(r.validity)) == Some(true),
                    "edge {r:?} outlives an endpoint"
                );
            }
        }
    });
}
