//! Shared memoization for the per-query-invariant lookups of the
//! multiversion model.
//!
//! Two resolutions dominate presentation and aggregation cost and
//! depend only on the schema *structure* (never on fact rows):
//!
//! * **mapping-closure routes** — where a member version's data lands
//!   in a target structure version ([`crate::mapping::MappingGraph::resolve`]);
//! * **roll-up paths** — a leaf's ancestors at a named level and
//!   instant ([`crate::levels::ancestors_at_level`]).
//!
//! [`QueryMemo`] wraps one generation-keyed cache
//! ([`mvolap_exec::GenCache`]) per lookup kind. Lookups carry
//! [`Tmd::generation`]; any structural mutation (evolution operators,
//! new versions/mappings) bumps the generation and thereby flushes both
//! caches on their next access — entries can never leak across schema
//! states. The memo is `Arc`-shareable across worker threads and across
//! queries: hand one `Arc<QueryMemo>` to every `*_par` entry point of a
//! serving process and routes computed by one query are reused by all.

use std::sync::Arc;

use mvolap_exec::{CacheStats, GenCache};
use mvolap_temporal::Instant;

use crate::ids::{DimensionId, MemberVersionId, StructureVersionId};
use crate::mapping::MappingRoute;
use crate::schema::Tmd;

/// Cache key of a mapping-closure resolution: which member version's
/// data, presented in which structure version of which dimension.
pub type RouteKey = (DimensionId, MemberVersionId, StructureVersionId);

/// Cache key of a roll-up resolution: leaf member version, target level
/// name, and the hierarchy instant it is resolved at.
pub type AncestorKey = (DimensionId, MemberVersionId, String, Instant);

/// Hit/miss counters for both caches of a [`QueryMemo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Mapping-closure route cache counters.
    pub routes: CacheStats,
    /// Roll-up ancestor cache counters.
    pub ancestors: CacheStats,
}

/// Shared memo for mapping routes and roll-up paths, invalidated by the
/// schema generation.
#[derive(Debug, Default)]
pub struct QueryMemo {
    routes: GenCache<RouteKey, Vec<MappingRoute>>,
    ancestors: GenCache<AncestorKey, Vec<MemberVersionId>>,
}

impl QueryMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        QueryMemo {
            routes: GenCache::new(),
            ancestors: GenCache::new(),
        }
    }

    /// An empty memo behind an `Arc`, ready to share across threads and
    /// queries.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(QueryMemo::new())
    }

    /// The mapping routes for `key` under `tmd`'s current generation,
    /// computing them with `make` on a miss.
    pub fn routes<F>(&self, tmd: &Tmd, key: RouteKey, make: F) -> Arc<Vec<MappingRoute>>
    where
        F: FnOnce() -> Vec<MappingRoute>,
    {
        self.routes.get_or_insert_with(tmd.generation(), key, make)
    }

    /// The roll-up ancestors for `key` under `tmd`'s current
    /// generation, computing them with `make` on a miss.
    pub fn ancestors<F>(&self, tmd: &Tmd, key: AncestorKey, make: F) -> Arc<Vec<MemberVersionId>>
    where
        F: FnOnce() -> Vec<MemberVersionId>,
    {
        self.ancestors
            .get_or_insert_with(tmd.generation(), key, make)
    }

    /// The roll-up ancestors for `key`, computing them with the
    /// fallible `make` on a miss. Failures propagate and are **not**
    /// cached — roll-up errors are time-dependent and must resurface on
    /// every affected lookup.
    ///
    /// # Errors
    ///
    /// Whatever `make` returns.
    pub fn try_ancestors<F, E>(
        &self,
        tmd: &Tmd,
        key: AncestorKey,
        make: F,
    ) -> std::result::Result<Arc<Vec<MemberVersionId>>, E>
    where
        F: FnOnce() -> std::result::Result<Vec<MemberVersionId>, E>,
    {
        if let Some(v) = self.ancestors.get(tmd.generation(), &key) {
            return Ok(v);
        }
        let v = make()?;
        Ok(self
            .ancestors
            .get_or_insert_with(tmd.generation(), key, || v))
    }

    /// Lifetime hit/miss counters of both caches.
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            routes: self.routes.stats(),
            ancestors: self.ancestors.stats(),
        }
    }

    /// Cached entries (routes, ancestors) — diagnostics.
    #[must_use]
    pub fn len(&self) -> (usize, usize) {
        (self.routes.len(), self.ancestors.len())
    }

    /// True when both caches are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty() && self.ancestors.is_empty()
    }
}

/// Session-affine sharding over [`QueryMemo`]: a hash of the session
/// id picks the shard, so workers serving different sessions stop
/// contending on one memo's locks while one session's repeated lookups
/// keep landing on the same warm shard. Each shard invalidates
/// independently on the schema generation, exactly like a lone
/// [`QueryMemo`] — sharding changes contention, never answers.
#[derive(Debug)]
pub struct ShardedMemo {
    shards: Vec<Arc<QueryMemo>>,
}

impl ShardedMemo {
    /// `shards` independent memos (clamped to at least one).
    #[must_use]
    pub fn new(shards: usize) -> ShardedMemo {
        ShardedMemo {
            shards: (0..shards.max(1)).map(|_| QueryMemo::shared()).collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard serving `session` — stable for the session's lifetime.
    /// Fibonacci hashing spreads consecutive session ids across shards
    /// instead of clustering them on `id % n`.
    #[must_use]
    pub fn for_session(&self, session: u64) -> &Arc<QueryMemo> {
        let spread = session.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(spread % self.shards.len() as u64) as usize]
    }

    /// Per-shard lifetime hit/miss counters, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<MemoStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Counters summed across every shard.
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        self.shards
            .iter()
            .map(|s| s.stats())
            .fold(MemoStats::default(), |acc, s| MemoStats {
                routes: acc.routes + s.routes,
                ancestors: acc.ancestors + s.ancestors,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::case_study;
    use crate::evolution;
    use mvolap_temporal::Interval;

    #[test]
    fn routes_cached_until_schema_mutates() {
        let mut cs = case_study();
        let memo = QueryMemo::new();
        let key = (DimensionId(0), MemberVersionId(0), StructureVersionId(0));
        let a = memo.routes(&cs.tmd, key, Vec::new);
        let b = memo.routes(&cs.tmd, key, || panic!("cached"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(memo.stats().routes, CacheStats { hits: 1, misses: 1 });

        // An evolution operator bumps the generation → recompute.
        evolution::create(
            &mut cs.tmd,
            cs.org,
            "Dpt.Fresh",
            Some("Department".into()),
            mvolap_temporal::Instant::ym(2004, 1),
            &[],
        )
        .unwrap();
        let recomputed = std::cell::Cell::new(false);
        let _ = memo.routes(&cs.tmd, key, || {
            recomputed.set(true);
            Vec::new()
        });
        assert!(recomputed.get(), "generation bump must flush the cache");
    }

    #[test]
    fn plain_version_insert_also_invalidates() {
        let mut cs = case_study();
        let memo = QueryMemo::new();
        let akey = (
            DimensionId(0),
            MemberVersionId(0),
            "Division".to_string(),
            Instant::ym(2001, 6),
        );
        memo.ancestors(&cs.tmd, akey.clone(), Vec::new);
        cs.tmd
            .add_version(
                cs.org,
                crate::member::MemberVersionSpec::named("X"),
                Interval::since(Instant::ym(2004, 1)),
            )
            .unwrap();
        let recomputed = std::cell::Cell::new(false);
        memo.ancestors(&cs.tmd, akey, || {
            recomputed.set(true);
            Vec::new()
        });
        assert!(recomputed.get());
    }

    #[test]
    fn sharded_memo_is_session_stable_and_aggregates_stats() {
        let cs = case_study();
        let memo = ShardedMemo::new(4);
        assert_eq!(memo.shard_count(), 4);
        // Same session → same shard, every time.
        for session in 0..64u64 {
            assert!(Arc::ptr_eq(
                memo.for_session(session),
                memo.for_session(session)
            ));
        }
        // Consecutive session ids land on more than one shard.
        let distinct = (0..64u64)
            .map(|s| memo.for_session(s).as_ref() as *const QueryMemo as usize)
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1, "sessions must spread across shards");

        // Stats aggregate across shards: one miss + one hit on a
        // single session's shard is visible in the fleet-wide sum.
        let key = (DimensionId(0), MemberVersionId(0), StructureVersionId(0));
        memo.for_session(7).routes(&cs.tmd, key, Vec::new);
        memo.for_session(7)
            .routes(&cs.tmd, key, || panic!("cached"));
        let total = memo.stats();
        assert_eq!(total.routes, CacheStats { hits: 1, misses: 1 });
        let per_shard = memo.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(
            per_shard
                .iter()
                .map(|s| s.routes.hits + s.routes.misses)
                .sum::<u64>(),
            2
        );
    }

    #[test]
    fn sharded_memo_clamps_to_one_shard() {
        let memo = ShardedMemo::new(0);
        assert_eq!(memo.shard_count(), 1);
        assert!(Arc::ptr_eq(memo.for_session(1), memo.for_session(99)));
    }
}
