//! Measures and the Temporally Consistent Fact Table (paper Definition 5).

use mvolap_temporal::Instant;

use crate::error::{CoreError, Result};
use crate::ids::MemberVersionId;

/// How a measure aggregates under roll-up (the `⊕m` of Definition 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregator {
    /// Values add (amounts, turnovers).
    Sum,
    /// Minimum value wins.
    Min,
    /// Maximum value wins.
    Max,
    /// Arithmetic mean.
    Avg,
    /// Count of contributing facts.
    Count,
}

impl Aggregator {
    /// Lower-case name, used by the query language.
    pub fn name(self) -> &'static str {
        match self {
            Aggregator::Sum => "sum",
            Aggregator::Min => "min",
            Aggregator::Max => "max",
            Aggregator::Avg => "avg",
            Aggregator::Count => "count",
        }
    }

    /// The aggregator to use when folding *already aggregated* partial
    /// results (second-stage aggregation): partial counts **add**;
    /// sums add; min/max nest. `Avg` stays `Avg` — an average of
    /// per-cell aggregates, documented on [`crate::aggregate::evaluate`].
    #[must_use]
    pub fn combining(self) -> Aggregator {
        match self {
            Aggregator::Count => Aggregator::Sum,
            other => other,
        }
    }

    /// Parses a lower-case aggregator name.
    pub fn parse(s: &str) -> Option<Aggregator> {
        match s {
            "sum" => Some(Aggregator::Sum),
            "min" => Some(Aggregator::Min),
            "max" => Some(Aggregator::Max),
            "avg" => Some(Aggregator::Avg),
            "count" => Some(Aggregator::Count),
            _ => None,
        }
    }
}

/// One measure of the schema: name plus default aggregate function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureDef {
    /// Measure name (e.g. `Amount`).
    pub name: String,
    /// Default aggregate function `⊕m`.
    pub aggregator: Aggregator,
}

impl MeasureDef {
    /// A sum-aggregated measure — the common case for the paper's
    /// amounts and turnovers.
    pub fn summed(name: impl Into<String>) -> Self {
        MeasureDef {
            name: name.into(),
            aggregator: Aggregator::Sum,
        }
    }
}

/// The *Temporally Consistent Fact Table* `f : D1 × … × Dn × T →
/// dom(m1) × … × dom(mm)` (Definition 5), stored columnar.
///
/// Each row associates leaf member versions (one per dimension), valid at
/// the fact time, with one value per measure. Validation against the
/// dimensions happens in the schema (`Tmd::add_fact`), which owns them.
#[derive(Debug, Clone, Default)]
pub struct FactTable {
    /// Per dimension: the coordinate column.
    coords: Vec<Vec<MemberVersionId>>,
    /// Fact times.
    times: Vec<Instant>,
    /// Per measure: the value column.
    values: Vec<Vec<f64>>,
}

impl FactTable {
    /// An empty fact table for `dimensions` × `measures`.
    pub fn new(dimensions: usize, measures: usize) -> Self {
        FactTable {
            coords: vec![Vec::new(); dimensions],
            times: Vec::new(),
            values: vec![Vec::new(); measures],
        }
    }

    /// Number of fact rows.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of dimension columns.
    pub fn dimensions(&self) -> usize {
        self.coords.len()
    }

    /// Number of measure columns.
    pub fn measures(&self) -> usize {
        self.values.len()
    }

    /// Appends a row. Arity is checked here; semantic validation (leaf,
    /// valid-at-t) lives in the schema which owns the dimensions.
    ///
    /// # Errors
    ///
    /// [`CoreError::CoordinateArityMismatch`] or
    /// [`CoreError::MeasureArityMismatch`].
    pub fn push(&mut self, coords: &[MemberVersionId], t: Instant, values: &[f64]) -> Result<()> {
        if coords.len() != self.coords.len() {
            return Err(CoreError::CoordinateArityMismatch {
                expected: self.coords.len(),
                actual: coords.len(),
            });
        }
        if values.len() != self.values.len() {
            return Err(CoreError::MeasureArityMismatch {
                expected: self.values.len(),
                actual: values.len(),
            });
        }
        for (col, &c) in self.coords.iter_mut().zip(coords) {
            col.push(c);
        }
        self.times.push(t);
        for (col, &v) in self.values.iter_mut().zip(values) {
            col.push(v);
        }
        Ok(())
    }

    /// The coordinate of row `row` in dimension `dim`.
    #[inline]
    pub fn coord(&self, row: usize, dim: usize) -> MemberVersionId {
        self.coords[dim][row]
    }

    /// The time of row `row`.
    #[inline]
    pub fn time(&self, row: usize) -> Instant {
        self.times[row]
    }

    /// The value of measure `measure` in row `row`.
    #[inline]
    pub fn value(&self, row: usize, measure: usize) -> f64 {
        self.values[measure][row]
    }

    /// All values of row `row`.
    pub fn row_values(&self, row: usize) -> Vec<f64> {
        self.values.iter().map(|col| col[row]).collect()
    }

    /// All coordinates of row `row`.
    pub fn row_coords(&self, row: usize) -> Vec<MemberVersionId> {
        self.coords.iter().map(|col| col[row]).collect()
    }

    /// Iterates over `(row_index, coords, time, values)`.
    pub fn rows(
        &self,
    ) -> impl Iterator<Item = (usize, Vec<MemberVersionId>, Instant, Vec<f64>)> + '_ {
        (0..self.len()).map(move |r| (r, self.row_coords(r), self.time(r), self.row_values(r)))
    }
}

/// Running aggregate state shared by the aggregation and cube layers.
#[derive(Debug, Clone, Copy)]
pub struct MeasureAccumulator {
    aggregator: Aggregator,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl MeasureAccumulator {
    /// A fresh accumulator for the given aggregate function.
    pub fn new(aggregator: Aggregator) -> Self {
        MeasureAccumulator {
            aggregator,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one value in.
    #[inline]
    pub fn update(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another accumulator's partial state in (the second-stage
    /// fold of the morsel-parallel engine). Count/min/max merge
    /// exactly; the sum associates in merge order, so merging partial
    /// states in morsel order keeps results deterministic for any
    /// worker count.
    pub fn merge(&mut self, other: &MeasureAccumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The aggregate result, or `None` when nothing was folded.
    pub fn finish(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(match self.aggregator {
            Aggregator::Sum => self.sum,
            Aggregator::Min => self.min,
            Aggregator::Max => self.max,
            Aggregator::Avg => self.sum / self.count as f64,
            Aggregator::Count => self.count as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut f = FactTable::new(2, 1);
        let a = MemberVersionId(0);
        let b = MemberVersionId(1);
        f.push(&[a, b], Instant::ym(2001, 1), &[100.0]).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f.coord(0, 0), a);
        assert_eq!(f.coord(0, 1), b);
        assert_eq!(f.value(0, 0), 100.0);
        assert_eq!(f.time(0), Instant::ym(2001, 1));
        assert_eq!(f.row_coords(0), vec![a, b]);
        assert_eq!(f.row_values(0), vec![100.0]);
    }

    #[test]
    fn arity_checked() {
        let mut f = FactTable::new(2, 1);
        assert!(matches!(
            f.push(&[MemberVersionId(0)], Instant::ym(2001, 1), &[1.0]),
            Err(CoreError::CoordinateArityMismatch { .. })
        ));
        assert!(matches!(
            f.push(
                &[MemberVersionId(0), MemberVersionId(1)],
                Instant::ym(2001, 1),
                &[]
            ),
            Err(CoreError::MeasureArityMismatch { .. })
        ));
        assert!(f.is_empty());
    }

    #[test]
    fn aggregator_roundtrip() {
        for a in [
            Aggregator::Sum,
            Aggregator::Min,
            Aggregator::Max,
            Aggregator::Avg,
            Aggregator::Count,
        ] {
            assert_eq!(Aggregator::parse(a.name()), Some(a));
        }
        assert_eq!(Aggregator::parse("median"), None);
    }

    #[test]
    fn accumulator_all_functions() {
        let vals = [3.0, 1.0, 2.0];
        let mut acc: Vec<MeasureAccumulator> = [
            Aggregator::Sum,
            Aggregator::Min,
            Aggregator::Max,
            Aggregator::Avg,
            Aggregator::Count,
        ]
        .iter()
        .map(|&a| MeasureAccumulator::new(a))
        .collect();
        for v in vals {
            for a in &mut acc {
                a.update(v);
            }
        }
        assert_eq!(acc[0].finish(), Some(6.0));
        assert_eq!(acc[1].finish(), Some(1.0));
        assert_eq!(acc[2].finish(), Some(3.0));
        assert_eq!(acc[3].finish(), Some(2.0));
        assert_eq!(acc[4].finish(), Some(3.0));
        assert_eq!(MeasureAccumulator::new(Aggregator::Sum).finish(), None);
    }
}
