//! The Temporal Multidimensional Schema (paper Definition 8).
//!
//! `TMD = <{D1, …, Dn, T}, MR, f>`: temporal dimensions, a time
//! dimension, mapping relationships and a temporally consistent fact
//! table. In this implementation the time dimension `T` is the discrete
//! [`Instant`] axis itself (grouped through
//! [`TimeLevel`](crate::aggregate::TimeLevel) at query time), which
//! matches the paper's treatment of time as a distinguished, non-evolving
//! dimension.

use mvolap_temporal::{Granularity, Instant, Interval};

use crate::dimension::TemporalDimension;
use crate::error::{CoreError, Result};
use crate::fact::{FactTable, MeasureDef};
use crate::ids::{DimensionId, MeasureId, MemberVersionId};
use crate::mapping::{MappingGraph, MappingRelationship};
use crate::member::MemberVersionSpec;
use crate::metadata::{EvolutionEntry, EvolutionLog};
use crate::structure_version::{infer_structure_versions, StructureVersion};

/// A Temporal Multidimensional Schema: the root object of the model.
#[derive(Debug, Clone)]
pub struct Tmd {
    name: String,
    granularity: Granularity,
    dimensions: Vec<TemporalDimension>,
    measures: Vec<MeasureDef>,
    /// One mapping graph per dimension (mapping relationships never cross
    /// dimensions).
    mappings: Vec<MappingGraph>,
    facts: FactTable,
    log: EvolutionLog,
    /// Structural-mutation counter: bumped by every schema change that
    /// can invalidate derived lookups (new versions, relationships,
    /// mappings, dimensions, measures — and explicitly by the evolution
    /// operators). Fact appends do *not* bump it: mapping routes and
    /// roll-up paths never depend on fact rows. [`crate::QueryMemo`]
    /// keys its caches on this value.
    generation: u64,
}

impl Tmd {
    /// Creates an empty schema.
    pub fn new(name: impl Into<String>, granularity: Granularity) -> Self {
        Tmd {
            name: name.into(),
            granularity,
            dimensions: Vec::new(),
            measures: Vec::new(),
            mappings: Vec::new(),
            facts: FactTable::new(0, 0),
            log: EvolutionLog::new(),
            generation: 0,
        }
    }

    /// The current structural generation. Any change to dimensions,
    /// member versions, relationships, mappings or measures moves it;
    /// memo caches keyed on it ([`crate::QueryMemo`]) are thereby
    /// invalidated atomically.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Explicitly advances the structural generation, invalidating
    /// every generation-keyed cache. The evolution operators call this
    /// on completion; callers holding external derived state may too.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The time granularity used for rendering instants.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Adds a dimension. Only possible while the fact table is empty —
    /// the paper's "creation of a dimension" schema evolution; with facts
    /// present it would leave existing rows without coordinates.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidEvolution`] when facts already exist.
    pub fn add_dimension(&mut self, dimension: TemporalDimension) -> Result<DimensionId> {
        if !self.facts.is_empty() {
            return Err(CoreError::InvalidEvolution(
                "cannot add a dimension to a schema that already holds facts".into(),
            ));
        }
        let id = DimensionId(self.dimensions.len() as u32);
        self.dimensions.push(dimension);
        self.mappings.push(MappingGraph::new());
        self.facts = FactTable::new(self.dimensions.len(), self.measures.len());
        self.bump_generation();
        Ok(id)
    }

    /// Adds a measure, under the same restriction as [`Tmd::add_dimension`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidEvolution`] when facts or mappings already
    /// exist (their per-measure arity would go stale).
    pub fn add_measure(&mut self, measure: MeasureDef) -> Result<MeasureId> {
        if !self.facts.is_empty() {
            return Err(CoreError::InvalidEvolution(
                "cannot add a measure to a schema that already holds facts".into(),
            ));
        }
        if self.mappings.iter().any(|g| !g.relationships().is_empty()) {
            return Err(CoreError::InvalidEvolution(
                "cannot add a measure once mapping relationships exist".into(),
            ));
        }
        let id = MeasureId(self.measures.len() as u16);
        self.measures.push(measure);
        self.facts = FactTable::new(self.dimensions.len(), self.measures.len());
        self.bump_generation();
        Ok(id)
    }

    /// Looks up a dimension by id.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDimension`].
    pub fn dimension(&self, id: DimensionId) -> Result<&TemporalDimension> {
        self.dimensions
            .get(id.index())
            .ok_or(CoreError::UnknownDimension(id))
    }

    /// Mutable dimension access for evolution operators.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDimension`].
    pub(crate) fn dimension_mut(&mut self, id: DimensionId) -> Result<&mut TemporalDimension> {
        // Handing out mutable access means the dimension may change
        // structurally; conservatively advance the generation.
        self.bump_generation();
        self.dimensions
            .get_mut(id.index())
            .ok_or(CoreError::UnknownDimension(id))
    }

    /// Looks up a dimension id by name.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDimensionName`].
    pub fn dimension_by_name(&self, name: &str) -> Result<DimensionId> {
        self.dimensions
            .iter()
            .position(|d| d.name() == name)
            .map(|i| DimensionId(i as u32))
            .ok_or_else(|| CoreError::UnknownDimensionName(name.to_owned()))
    }

    /// All dimensions, in id order.
    pub fn dimensions(&self) -> &[TemporalDimension] {
        &self.dimensions
    }

    /// All measures, in id order.
    pub fn measures(&self) -> &[MeasureDef] {
        &self.measures
    }

    /// Looks up a measure id by name.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownMeasureName`].
    pub fn measure_by_name(&self, name: &str) -> Result<MeasureId> {
        self.measures
            .iter()
            .position(|m| m.name == name)
            .map(|i| MeasureId(i as u16))
            .ok_or_else(|| CoreError::UnknownMeasureName(name.to_owned()))
    }

    /// The temporally consistent fact table.
    pub fn facts(&self) -> &FactTable {
        &self.facts
    }

    /// The mapping graph of one dimension.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDimension`].
    pub fn mapping_graph(&self, dim: DimensionId) -> Result<&MappingGraph> {
        self.mappings
            .get(dim.index())
            .ok_or(CoreError::UnknownDimension(dim))
    }

    /// The evolution log.
    pub fn evolution_log(&self) -> &EvolutionLog {
        &self.log
    }

    /// Records an evolution event (used by the evolution operators).
    pub(crate) fn record_evolution(&mut self, entry: EvolutionEntry) {
        self.log.record(entry);
    }

    /// Appends a fact row after full Definition 5 validation: every
    /// coordinate must exist, be valid at `t`, and be a leaf member
    /// version at `t`.
    ///
    /// # Errors
    ///
    /// Arity, validity or leaf violations — see [`CoreError`].
    pub fn add_fact(
        &mut self,
        coords: &[MemberVersionId],
        t: Instant,
        values: &[f64],
    ) -> Result<()> {
        if coords.len() != self.dimensions.len() {
            return Err(CoreError::CoordinateArityMismatch {
                expected: self.dimensions.len(),
                actual: coords.len(),
            });
        }
        for (dim, &c) in self.dimensions.iter().zip(coords) {
            dim.version(c)?;
            if !dim.is_valid_at(c, t) {
                return Err(CoreError::CoordinateNotValid {
                    dimension: dim.name().to_owned(),
                    id: c,
                    at: t,
                });
            }
            if !dim.is_leaf_at(c, t) {
                return Err(CoreError::CoordinateNotLeaf {
                    dimension: dim.name().to_owned(),
                    id: c,
                });
            }
        }
        self.facts.push(coords, t, values)
    }

    /// Convenience: appends a fact addressed by member names (resolved to
    /// the version valid at `t`).
    ///
    /// # Errors
    ///
    /// Name resolution failures plus everything [`Tmd::add_fact`] raises.
    pub fn add_fact_by_names(&mut self, names: &[&str], t: Instant, values: &[f64]) -> Result<()> {
        if names.len() != self.dimensions.len() {
            return Err(CoreError::CoordinateArityMismatch {
                expected: self.dimensions.len(),
                actual: names.len(),
            });
        }
        let mut coords = Vec::with_capacity(names.len());
        for (dim, &name) in self.dimensions.iter().zip(names) {
            coords.push(dim.version_named_at(name, t)?.id);
        }
        self.add_fact(&coords, t, values)
    }

    /// Adds a mapping relationship to dimension `dim` after Definition 7
    /// validation: per-measure arity matches the schema, endpoints exist,
    /// differ, and are leaf member versions.
    ///
    /// # Errors
    ///
    /// See [`CoreError`] variants for each violated rule.
    pub fn add_mapping(&mut self, dim: DimensionId, rel: MappingRelationship) -> Result<()> {
        let dimension = self.dimension(dim)?;
        if rel.forward.len() != self.measures.len() || rel.backward.len() != self.measures.len() {
            return Err(CoreError::MappingArityMismatch {
                expected: self.measures.len(),
                actual: rel.forward.len(),
            });
        }
        for endpoint in [rel.from, rel.to] {
            dimension.version(endpoint)?;
            if !dimension.is_ever_leaf(endpoint) {
                return Err(CoreError::MappingEndpointNotLeaf(endpoint));
            }
        }
        self.mappings[dim.index()].add(rel)?;
        self.bump_generation();
        Ok(())
    }

    /// Replaces the per-measure mappings of an existing relationship
    /// `from → to` of dimension `dim` — the mutation underlying the
    /// *confidence change* evolution
    /// ([`crate::evolution::change_confidence`]). Arity is re-validated
    /// against the schema's measures; the structural generation advances
    /// because composed mapping routes change.
    ///
    /// # Errors
    ///
    /// [`CoreError::MappingArityMismatch`] or
    /// [`CoreError::MappingNotFound`].
    pub fn set_mapping(
        &mut self,
        dim: DimensionId,
        from: MemberVersionId,
        to: MemberVersionId,
        forward: Vec<crate::mapping::MeasureMapping>,
        backward: Vec<crate::mapping::MeasureMapping>,
    ) -> Result<()> {
        self.dimension(dim)?;
        if forward.len() != self.measures.len() || backward.len() != self.measures.len() {
            return Err(CoreError::MappingArityMismatch {
                expected: self.measures.len(),
                actual: forward.len(),
            });
        }
        self.mappings[dim.index()].reweigh(from, to, forward, backward)?;
        self.bump_generation();
        Ok(())
    }

    /// Infers the structure versions of the schema (Definition 9).
    pub fn structure_versions(&self) -> Vec<StructureVersion> {
        infer_structure_versions(&self.dimensions)
    }

    /// Shorthand: adds a member version to a dimension.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDimension`].
    pub fn add_version(
        &mut self,
        dim: DimensionId,
        spec: MemberVersionSpec,
        validity: Interval,
    ) -> Result<MemberVersionId> {
        Ok(self.dimension_mut(dim)?.add_version(spec, validity))
    }

    /// Shorthand: adds a temporal relationship to a dimension.
    ///
    /// # Errors
    ///
    /// Propagates [`TemporalDimension::add_relationship`] errors.
    pub fn add_relationship(
        &mut self,
        dim: DimensionId,
        child: MemberVersionId,
        parent: MemberVersionId,
        validity: Interval,
    ) -> Result<()> {
        self.dimension_mut(dim)?
            .add_relationship(child, parent, validity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::Confidence;
    use crate::mapping::MeasureMapping;

    fn base_schema() -> (Tmd, DimensionId) {
        let mut tmd = Tmd::new("test", Granularity::Month);
        let mut d = TemporalDimension::new("Org");
        let all = Interval::since(Instant::ym(2001, 1));
        let sales = d.add_version(MemberVersionSpec::named("Sales").at_level("Division"), all);
        let jones = d.add_version(
            MemberVersionSpec::named("Dpt.Jones").at_level("Department"),
            all,
        );
        d.add_relationship(jones, sales, all).unwrap();
        let dim = tmd.add_dimension(d).unwrap();
        tmd.add_measure(MeasureDef::summed("Amount")).unwrap();
        (tmd, dim)
    }

    #[test]
    fn fact_validation_leaf_and_validity() {
        let (mut tmd, dim) = base_schema();
        let t = Instant::ym(2001, 6);
        let jones = tmd
            .dimension(dim)
            .unwrap()
            .version_named_at("Dpt.Jones", t)
            .unwrap()
            .id;
        let sales = tmd
            .dimension(dim)
            .unwrap()
            .version_named_at("Sales", t)
            .unwrap()
            .id;
        tmd.add_fact(&[jones], t, &[100.0]).unwrap();
        assert_eq!(tmd.facts().len(), 1);
        // Non-leaf coordinate rejected.
        assert!(matches!(
            tmd.add_fact(&[sales], t, &[1.0]),
            Err(CoreError::CoordinateNotLeaf { .. })
        ));
        // Out-of-validity time rejected.
        assert!(matches!(
            tmd.add_fact(&[jones], Instant::ym(1999, 1), &[1.0]),
            Err(CoreError::CoordinateNotValid { .. })
        ));
        // Arity rejected.
        assert!(matches!(
            tmd.add_fact(&[], t, &[1.0]),
            Err(CoreError::CoordinateArityMismatch { .. })
        ));
    }

    #[test]
    fn fact_by_names() {
        let (mut tmd, _) = base_schema();
        tmd.add_fact_by_names(&["Dpt.Jones"], Instant::ym(2001, 6), &[42.0])
            .unwrap();
        assert_eq!(tmd.facts().len(), 1);
        assert!(tmd
            .add_fact_by_names(&["Dpt.Ghost"], Instant::ym(2001, 6), &[1.0])
            .is_err());
    }

    #[test]
    fn schema_frozen_after_facts() {
        let (mut tmd, _) = base_schema();
        tmd.add_fact_by_names(&["Dpt.Jones"], Instant::ym(2001, 6), &[1.0])
            .unwrap();
        assert!(matches!(
            tmd.add_dimension(TemporalDimension::new("X")),
            Err(CoreError::InvalidEvolution(_))
        ));
        assert!(matches!(
            tmd.add_measure(MeasureDef::summed("m2")),
            Err(CoreError::InvalidEvolution(_))
        ));
    }

    #[test]
    fn mapping_validation() {
        let (mut tmd, dim) = base_schema();
        let t = Instant::ym(2001, 6);
        let jones = tmd
            .dimension(dim)
            .unwrap()
            .version_named_at("Dpt.Jones", t)
            .unwrap()
            .id;
        let sales = tmd
            .dimension(dim)
            .unwrap()
            .version_named_at("Sales", t)
            .unwrap()
            .id;
        // Add a second leaf to map to.
        let bill = tmd
            .add_version(
                dim,
                MemberVersionSpec::named("Dpt.Bill").at_level("Department"),
                Interval::since(Instant::ym(2003, 1)),
            )
            .unwrap();
        // Wrong arity (2 measure mappings for a 1-measure schema).
        let bad = MappingRelationship::uniform(
            jones,
            bill,
            MeasureMapping::EXACT_IDENTITY,
            MeasureMapping::EXACT_IDENTITY,
            2,
        );
        assert!(matches!(
            tmd.add_mapping(dim, bad),
            Err(CoreError::MappingArityMismatch { .. })
        ));
        // Non-leaf endpoint.
        let non_leaf = MappingRelationship::equivalence(jones, sales, 1);
        assert!(matches!(
            tmd.add_mapping(dim, non_leaf),
            Err(CoreError::MappingEndpointNotLeaf(_))
        ));
        // Valid mapping accepted.
        let good = MappingRelationship::uniform(
            jones,
            bill,
            MeasureMapping {
                func: crate::mapping::MappingFunction::Scale(0.4),
                confidence: Confidence::Approx,
            },
            MeasureMapping::EXACT_IDENTITY,
            1,
        );
        tmd.add_mapping(dim, good).unwrap();
        assert_eq!(tmd.mapping_graph(dim).unwrap().relationships().len(), 1);
    }

    #[test]
    fn measure_frozen_after_mappings() {
        let (mut tmd, dim) = base_schema();
        let t = Instant::ym(2001, 6);
        let jones = tmd
            .dimension(dim)
            .unwrap()
            .version_named_at("Dpt.Jones", t)
            .unwrap()
            .id;
        let bill = tmd
            .add_version(
                dim,
                MemberVersionSpec::named("Dpt.Bill"),
                Interval::since(Instant::ym(2003, 1)),
            )
            .unwrap();
        tmd.add_mapping(dim, MappingRelationship::equivalence(jones, bill, 1))
            .unwrap();
        assert!(matches!(
            tmd.add_measure(MeasureDef::summed("m2")),
            Err(CoreError::InvalidEvolution(_))
        ));
    }

    #[test]
    fn lookups_by_name() {
        let (tmd, dim) = base_schema();
        assert_eq!(tmd.dimension_by_name("Org").unwrap(), dim);
        assert!(tmd.dimension_by_name("Nope").is_err());
        assert_eq!(tmd.measure_by_name("Amount").unwrap(), MeasureId(0));
        assert!(tmd.measure_by_name("Profit").is_err());
    }
}
