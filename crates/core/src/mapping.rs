//! Mapping relationships (paper Definition 7) and their closure.
//!
//! A mapping relationship `<Id_from, Id_to, F, F⁻¹>` keeps the link
//! between two member versions across a transition: `F` tells how each
//! measure maps from the old version onto the new one, `F⁻¹` the reverse,
//! each function tagged with a confidence factor. The prototype (§5.2)
//! restricts functions to linear `x ↦ k·x`, which is what the
//! [`MappingFunction::Scale`] variant models; identity, affine and
//! unknown functions round out the algebra.
//!
//! [`MappingGraph`] computes the *closure*: given a member version that is
//! not valid in a target structure version, it composes mapping edges
//! (forward or backward) until it reaches versions that are valid there.
//! Composition multiplies linear factors and `⊗cf`-combines confidences.

use std::collections::HashMap;

use crate::confidence::Confidence;
use crate::error::{CoreError, Result};
use crate::ids::MemberVersionId;

/// A measure-mapping function `fm : dom(mk) → dom(mk)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MappingFunction {
    /// `x ↦ x` — data carries over unchanged.
    Identity,
    /// `x ↦ k·x` — the prototype's linear functions (§5.2): a percentage
    /// or weighting of the measure.
    Scale(f64),
    /// `x ↦ a·x + b` — affine extension.
    Affine {
        /// Multiplicative factor.
        a: f64,
        /// Additive offset.
        b: f64,
    },
    /// The mapping is unknown (`(-, uk)` in paper Table 11): values
    /// cannot be computed.
    Unknown,
}

impl MappingFunction {
    /// Applies the function; `Unknown` yields `None`.
    #[inline]
    pub fn apply(self, x: f64) -> Option<f64> {
        match self {
            MappingFunction::Identity => Some(x),
            MappingFunction::Scale(k) => Some(k * x),
            MappingFunction::Affine { a, b } => Some(a * x + b),
            MappingFunction::Unknown => None,
        }
    }

    /// Function composition `then ∘ self` (apply `self` first).
    /// `Unknown` absorbs.
    #[must_use]
    pub fn compose(self, then: MappingFunction) -> MappingFunction {
        use MappingFunction::*;
        match (self, then) {
            (Unknown, _) | (_, Unknown) => Unknown,
            (Identity, g) => g,
            (f, Identity) => f,
            (Scale(k1), Scale(k2)) => Scale(k1 * k2),
            (Scale(k), Affine { a, b }) => Affine { a: a * k, b },
            (Affine { a, b }, Scale(k)) => Affine { a: k * a, b: k * b },
            (Affine { a: a1, b: b1 }, Affine { a: a2, b: b2 }) => Affine {
                a: a2 * a1,
                b: a2 * b1 + b2,
            },
        }
    }

    /// The linear factor `k`, when the function is linear (identity or
    /// scale). Used by the Table 12 metadata export.
    pub fn linear_factor(self) -> Option<f64> {
        match self {
            MappingFunction::Identity => Some(1.0),
            MappingFunction::Scale(k) => Some(k),
            _ => None,
        }
    }
}

impl std::fmt::Display for MappingFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingFunction::Identity => f.write_str("x->x"),
            MappingFunction::Scale(k) => write!(f, "x->{k}*x"),
            MappingFunction::Affine { a, b } => write!(f, "x->{a}*x+{b}"),
            MappingFunction::Unknown => f.write_str("-"),
        }
    }
}

/// One `<fm, cf>` pair of Definition 7: a mapping function plus its
/// confidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureMapping {
    /// The mapping function.
    pub func: MappingFunction,
    /// The confidence of data produced by this function.
    pub confidence: Confidence,
}

impl MeasureMapping {
    /// An exact identity mapping (`(x→x, em)`).
    pub const EXACT_IDENTITY: MeasureMapping = MeasureMapping {
        func: MappingFunction::Identity,
        confidence: Confidence::Exact,
    };

    /// A source-data identity mapping (`(x→x, sd)`), used by the §4.2
    /// reclassify-as-transform adaptation.
    pub const SOURCE_IDENTITY: MeasureMapping = MeasureMapping {
        func: MappingFunction::Identity,
        confidence: Confidence::Source,
    };

    /// An unknown mapping (`(-, uk)`).
    pub const UNKNOWN: MeasureMapping = MeasureMapping {
        func: MappingFunction::Unknown,
        confidence: Confidence::Unknown,
    };

    /// An approximate linear mapping (`(x→k·x, am)`).
    pub fn approx_scale(k: f64) -> MeasureMapping {
        MeasureMapping {
            func: MappingFunction::Scale(k),
            confidence: Confidence::Approx,
        }
    }

    /// Composition: functions compose, confidences combine with `⊗cf`.
    #[must_use]
    pub fn compose(self, then: MeasureMapping) -> MeasureMapping {
        MeasureMapping {
            func: self.func.compose(then.func),
            confidence: self.confidence.combine(then.confidence),
        }
    }
}

/// A *Mapping Relationship* `<Id_from, Id_to, F, F⁻¹>` (Definition 7)
/// between two leaf member versions of one dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingRelationship {
    /// The member version before the change (`Id_from`).
    pub from: MemberVersionId,
    /// The member version after the change (`Id_to`).
    pub to: MemberVersionId,
    /// Per measure: how old data maps onto the new version (`F`).
    pub forward: Vec<MeasureMapping>,
    /// Per measure: how new data maps back onto the old version (`F⁻¹`).
    pub backward: Vec<MeasureMapping>,
}

impl MappingRelationship {
    /// Builds a relationship with uniform per-measure mappings (the
    /// common single-measure case and Table 11's patterns).
    pub fn uniform(
        from: MemberVersionId,
        to: MemberVersionId,
        forward: MeasureMapping,
        backward: MeasureMapping,
        measures: usize,
    ) -> Self {
        MappingRelationship {
            from,
            to,
            forward: vec![forward; measures],
            backward: vec![backward; measures],
        }
    }

    /// The equivalence relationship used by transformations: both
    /// directions exact identity.
    pub fn equivalence(from: MemberVersionId, to: MemberVersionId, measures: usize) -> Self {
        Self::uniform(
            from,
            to,
            MeasureMapping::EXACT_IDENTITY,
            MeasureMapping::EXACT_IDENTITY,
            measures,
        )
    }
}

/// Chronological direction of a mapping route.
///
/// Mapping relationships point from the member version *before* a
/// transition to the one *after* it, so routes into a **later**
/// structure traverse forward edges and routes into an **earlier**
/// structure traverse backward edges. Mixing directions within one route
/// would double-count: a fact already fully attributed backward through
/// a merge must not additionally leak forward into a later successor and
/// back. Structure versions refine every validity interval, so a member
/// version invalid in a target structure version lies strictly before or
/// after it and the direction is always well-defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteDirection {
    /// Follow only forward (`F`) edges: old data into a newer structure.
    Forward,
    /// Follow only backward (`F⁻¹`) edges: new data into an older
    /// structure.
    Backward,
    /// Follow both — only sound when targets cannot be reached through
    /// time-zig-zag paths (e.g. sibling lookups in tests/tools).
    Any,
}

impl RouteDirection {
    fn allows(self, is_forward: bool) -> bool {
        match self {
            RouteDirection::Forward => is_forward,
            RouteDirection::Backward => !is_forward,
            RouteDirection::Any => true,
        }
    }
}

/// One resolved route from a source member version into a target
/// structure version: the reachable valid target plus the composed
/// per-measure mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingRoute {
    /// The valid target member version.
    pub target: MemberVersionId,
    /// Composed per-measure mappings along the route.
    pub per_measure: Vec<MeasureMapping>,
    /// Number of mapping edges traversed.
    pub hops: usize,
}

/// The mapping closure of one dimension.
///
/// Holds all mapping relationships as a bidirectional graph: a forward
/// edge `from → to` applies `F` (old data presented in a newer
/// structure), a backward edge `to → from` applies `F⁻¹`.
#[derive(Debug, Clone, Default)]
pub struct MappingGraph {
    relationships: Vec<MappingRelationship>,
    /// Adjacency: member version → (relationship index, is_forward).
    adjacency: HashMap<MemberVersionId, Vec<(usize, bool)>>,
}

impl MappingGraph {
    /// An empty graph.
    pub fn new() -> Self {
        MappingGraph::default()
    }

    /// Adds one mapping relationship (the `Associate` operator's core).
    ///
    /// # Errors
    ///
    /// [`CoreError::MappingSelfLoop`] when `from == to`.
    pub fn add(&mut self, rel: MappingRelationship) -> Result<()> {
        if rel.from == rel.to {
            return Err(CoreError::MappingSelfLoop(rel.from));
        }
        let idx = self.relationships.len();
        self.adjacency
            .entry(rel.from)
            .or_default()
            .push((idx, true));
        self.adjacency.entry(rel.to).or_default().push((idx, false));
        self.relationships.push(rel);
        Ok(())
    }

    /// All relationships, in insertion order.
    pub fn relationships(&self) -> &[MappingRelationship] {
        &self.relationships
    }

    /// Replaces the per-measure mappings of the relationship `from → to`
    /// in place — the *confidence change* evolution: the administrator's
    /// knowledge about a past transition improves (an approximate share
    /// becomes exact, an unknown becomes an estimate) without the
    /// endpoints themselves changing.
    ///
    /// # Errors
    ///
    /// [`CoreError::MappingNotFound`] when no relationship links the
    /// endpoints in that orientation.
    pub fn reweigh(
        &mut self,
        from: MemberVersionId,
        to: MemberVersionId,
        forward: Vec<MeasureMapping>,
        backward: Vec<MeasureMapping>,
    ) -> Result<()> {
        let rel = self
            .relationships
            .iter_mut()
            .find(|r| r.from == from && r.to == to)
            .ok_or(CoreError::MappingNotFound { from, to })?;
        rel.forward = forward;
        rel.backward = backward;
        Ok(())
    }

    /// Relationships incident to `id` (as source or target).
    pub fn incident(&self, id: MemberVersionId) -> Vec<&MappingRelationship> {
        self.adjacency
            .get(&id)
            .map(|edges| edges.iter().map(|&(i, _)| &self.relationships[i]).collect())
            .unwrap_or_default()
    }

    /// Resolves every route from `source` to member versions for which
    /// `is_valid_target` holds, composing mapping functions along the
    /// way and traversing only edges `direction` allows.
    ///
    /// Search over mapping edges; expansion stops at valid targets
    /// (the nearest representation wins — no route tunnels *through* a
    /// valid target). Diamond routes to the same target are all
    /// returned; callers sum their contributions, which distributes
    /// measure mass correctly for split/merge chains.
    ///
    /// If `source` itself is valid, a single zero-hop source-identity
    /// route is returned.
    pub fn resolve(
        &self,
        source: MemberVersionId,
        measures: usize,
        direction: RouteDirection,
        is_valid_target: impl Fn(MemberVersionId) -> bool,
    ) -> Vec<MappingRoute> {
        if is_valid_target(source) {
            return vec![MappingRoute {
                target: source,
                per_measure: vec![MeasureMapping::SOURCE_IDENTITY; measures],
                hops: 0,
            }];
        }
        let mut routes = Vec::new();
        // Frontier of (node, composed mapping so far, hops). Paths do not
        // revisit nodes (`path` tracks the chain) so split/merge diamonds
        // terminate.
        let mut frontier: Vec<(MemberVersionId, Vec<MeasureMapping>, Vec<MemberVersionId>)> =
            vec![(
                source,
                vec![MeasureMapping::SOURCE_IDENTITY; measures],
                vec![source],
            )];
        while let Some((node, acc, path)) = frontier.pop() {
            let Some(edges) = self.adjacency.get(&node) else {
                continue;
            };
            for &(ri, is_forward) in edges {
                if !direction.allows(is_forward) {
                    continue;
                }
                let rel = &self.relationships[ri];
                let next = if is_forward { rel.to } else { rel.from };
                if path.contains(&next) {
                    continue;
                }
                let step = if is_forward {
                    &rel.forward
                } else {
                    &rel.backward
                };
                let composed: Vec<MeasureMapping> =
                    acc.iter().zip(step).map(|(a, s)| a.compose(*s)).collect();
                if is_valid_target(next) {
                    routes.push(MappingRoute {
                        target: next,
                        per_measure: composed,
                        hops: path.len(),
                    });
                } else {
                    let mut new_path = path.clone();
                    new_path.push(next);
                    frontier.push((next, composed, new_path));
                }
            }
        }
        routes.sort_by_key(|r| (r.target, r.hops));
        routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MappingFunction::*;

    #[test]
    fn apply_all_variants() {
        assert_eq!(Identity.apply(5.0), Some(5.0));
        assert_eq!(Scale(0.4).apply(100.0), Some(40.0));
        assert_eq!(Affine { a: 2.0, b: 1.0 }.apply(3.0), Some(7.0));
        assert_eq!(Unknown.apply(3.0), None);
    }

    #[test]
    fn compose_algebra() {
        assert_eq!(Scale(0.5).compose(Scale(0.4)), Scale(0.2));
        assert_eq!(Identity.compose(Scale(2.0)), Scale(2.0));
        assert_eq!(Scale(2.0).compose(Identity), Scale(2.0));
        assert_eq!(Unknown.compose(Scale(2.0)), Unknown);
        assert_eq!(Scale(2.0).compose(Unknown), Unknown);
        // Affine composition: x -> 2x+1 then x -> 3x+4 is x -> 6x+7.
        assert_eq!(
            Affine { a: 2.0, b: 1.0 }.compose(Affine { a: 3.0, b: 4.0 }),
            Affine { a: 6.0, b: 7.0 }
        );
        // Scale then affine keeps the offset outside the scale.
        assert_eq!(
            Scale(2.0).compose(Affine { a: 3.0, b: 4.0 }),
            Affine { a: 6.0, b: 4.0 }
        );
    }

    #[test]
    fn compose_agrees_with_sequential_application() {
        let fns = [Identity, Scale(0.4), Affine { a: 2.0, b: -1.0 }, Scale(3.0)];
        for f in fns {
            for g in fns {
                let composed = f.compose(g);
                for x in [-2.0, 0.0, 1.5, 100.0] {
                    let seq = f.apply(x).and_then(|y| g.apply(y));
                    match (composed.apply(x), seq) {
                        (Some(a), Some(b)) => {
                            assert!((a - b).abs() < 1e-9, "{f} then {g} at {x}: {a} vs {b}")
                        }
                        (a, b) => assert_eq!(a, b, "{f} then {g} at {x}"),
                    }
                }
            }
        }
    }

    #[test]
    fn measure_mapping_composition_combines_confidence() {
        let a = MeasureMapping::approx_scale(0.4);
        let b = MeasureMapping::EXACT_IDENTITY;
        let c = a.compose(b);
        assert_eq!(c.func, Scale(0.4));
        assert_eq!(c.confidence, Confidence::Approx);
    }

    #[test]
    fn linear_factor() {
        assert_eq!(Scale(0.6).linear_factor(), Some(0.6));
        assert_eq!(Identity.linear_factor(), Some(1.0));
        assert_eq!(Unknown.linear_factor(), None);
        assert_eq!(Affine { a: 1.0, b: 2.0 }.linear_factor(), None);
    }

    fn split_graph() -> (
        MappingGraph,
        MemberVersionId,
        MemberVersionId,
        MemberVersionId,
    ) {
        // Paper Example 6: Jones split into Bill (40%) and Paul (60%).
        let jones = MemberVersionId(0);
        let bill = MemberVersionId(1);
        let paul = MemberVersionId(2);
        let mut g = MappingGraph::new();
        g.add(MappingRelationship::uniform(
            jones,
            bill,
            MeasureMapping::approx_scale(0.4),
            MeasureMapping::EXACT_IDENTITY,
            1,
        ))
        .unwrap();
        g.add(MappingRelationship::uniform(
            jones,
            paul,
            MeasureMapping::approx_scale(0.6),
            MeasureMapping::EXACT_IDENTITY,
            1,
        ))
        .unwrap();
        (g, jones, bill, paul)
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = MappingGraph::new();
        assert!(matches!(
            g.add(MappingRelationship::equivalence(
                MemberVersionId(1),
                MemberVersionId(1),
                1
            )),
            Err(CoreError::MappingSelfLoop(_))
        ));
    }

    #[test]
    fn resolve_forward_split() {
        // Map Jones's 2002 data into the 2003 structure: two approximate
        // routes (paper Table 10).
        let (g, jones, bill, paul) = split_graph();
        let valid = [bill, paul];
        let routes = g.resolve(jones, 1, RouteDirection::Forward, |id| valid.contains(&id));
        assert_eq!(routes.len(), 2);
        let to_bill = routes.iter().find(|r| r.target == bill).unwrap();
        assert_eq!(to_bill.per_measure[0].func, Scale(0.4));
        assert_eq!(to_bill.per_measure[0].confidence, Confidence::Approx);
        let to_paul = routes.iter().find(|r| r.target == paul).unwrap();
        assert_eq!(to_paul.per_measure[0].func, Scale(0.6));
    }

    #[test]
    fn resolve_backward_merge() {
        // Map Bill's 2003 data onto the 2002 structure: exact identity to
        // Jones (paper Table 9).
        let (g, jones, bill, _paul) = split_graph();
        let routes = g.resolve(bill, 1, RouteDirection::Backward, |id| id == jones);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].target, jones);
        assert_eq!(routes[0].per_measure[0].func, Identity);
        assert_eq!(routes[0].per_measure[0].confidence, Confidence::Exact);
    }

    #[test]
    fn resolve_valid_source_is_source_identity() {
        let (g, jones, ..) = split_graph();
        let routes = g.resolve(jones, 1, RouteDirection::Any, |id| id == jones);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].hops, 0);
        assert_eq!(routes[0].per_measure[0].confidence, Confidence::Source);
    }

    #[test]
    fn resolve_unreachable_is_empty() {
        let (g, _, bill, paul) = split_graph();
        // Bill cannot reach Paul without passing through Jones, which is
        // not a valid target here -> route Bill->Jones->Paul composes.
        let routes = g.resolve(bill, 1, RouteDirection::Any, |id| id == paul);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].hops, 2);
        // Identity (backward to Jones) then 0.6 scale (forward to Paul).
        assert_eq!(routes[0].per_measure[0].func, Scale(0.6));
        assert_eq!(routes[0].per_measure[0].confidence, Confidence::Approx);
        // Truly disconnected: nothing.
        let lone = MemberVersionId(99);
        assert!(g
            .resolve(lone, 1, RouteDirection::Any, |id| id == paul)
            .is_empty());
    }

    #[test]
    fn resolve_multi_hop_chain_composes_factors() {
        // A -> B (x0.5, am), B -> C (x0.4, em): mapping A into {C} should
        // compose to x0.2 with confidence am.
        let a = MemberVersionId(0);
        let b = MemberVersionId(1);
        let c = MemberVersionId(2);
        let mut g = MappingGraph::new();
        g.add(MappingRelationship::uniform(
            a,
            b,
            MeasureMapping::approx_scale(0.5),
            MeasureMapping::UNKNOWN,
            1,
        ))
        .unwrap();
        g.add(MappingRelationship::uniform(
            b,
            c,
            MeasureMapping {
                func: Scale(0.4),
                confidence: Confidence::Exact,
            },
            MeasureMapping::UNKNOWN,
            1,
        ))
        .unwrap();
        let routes = g.resolve(a, 1, RouteDirection::Forward, |id| id == c);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].per_measure[0].func, Scale(0.2));
        assert_eq!(routes[0].per_measure[0].confidence, Confidence::Approx);
        assert_eq!(routes[0].hops, 2);
    }

    #[test]
    fn resolve_does_not_tunnel_through_valid_targets() {
        // A -> B -> C with both B and C valid: the route stops at B.
        let a = MemberVersionId(0);
        let b = MemberVersionId(1);
        let c = MemberVersionId(2);
        let mut g = MappingGraph::new();
        g.add(MappingRelationship::equivalence(a, b, 1)).unwrap();
        g.add(MappingRelationship::equivalence(b, c, 1)).unwrap();
        let valid = [b, c];
        let routes = g.resolve(a, 1, RouteDirection::Forward, |id| valid.contains(&id));
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].target, b);
    }

    #[test]
    fn unknown_mapping_propagates() {
        let a = MemberVersionId(0);
        let b = MemberVersionId(1);
        let mut g = MappingGraph::new();
        g.add(MappingRelationship::uniform(
            a,
            b,
            MeasureMapping::EXACT_IDENTITY,
            MeasureMapping::UNKNOWN,
            1,
        ))
        .unwrap();
        // Backward route exists but its value is uncomputable.
        let routes = g.resolve(b, 1, RouteDirection::Backward, |id| id == a);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].per_measure[0].func, Unknown);
        assert_eq!(routes[0].per_measure[0].confidence, Confidence::Unknown);
    }

    #[test]
    fn incident_lists_relationships() {
        let (g, jones, bill, _) = split_graph();
        assert_eq!(g.incident(jones).len(), 2);
        assert_eq!(g.incident(bill).len(), 1);
        assert!(g.incident(MemberVersionId(42)).is_empty());
    }
}
