//! # mvolap-core
//!
//! The temporal multidimensional model of *Body, Miquel, Bédard &
//! Tchounikine, "Handling Evolutions in Multidimensional Structures",
//! IEEE ICDE 2003* — a multiversion OLAP model in which dimension
//! instances carry valid time, structure versions are inferred rather
//! than declared, and mapping relationships keep data comparable across
//! merges, splits and reclassifications.
//!
//! ## Model walk-through (paper definitions → modules)
//!
//! | Definition | Concept | Module |
//! |---|---|---|
//! | 1 | Member Version | [`member`] |
//! | 2–3 | Temporal Relationship / Dimension | [`dimension`] |
//! | 4 | Levels | [`levels`] |
//! | 5 | Temporally Consistent Fact Table | [`fact`] |
//! | 6 | Confidence Factor + `⊗cf` | [`confidence`] |
//! | 7 | Mapping Relationship | [`mapping`] |
//! | 8 | Temporal Multidimensional Schema | [`schema`] |
//! | 9 | Structure Version | [`structure_version`] |
//! | 10 | Temporal Mode of Presentation | [`tmp`] |
//! | 11 | MultiVersion Fact Table | [`multiversion`] |
//! | 12 | Data Aggregation | [`aggregate`] |
//! | §3.2 | Evolution operators | [`evolution`] |
//! | §4–5 | Logical adaptation / relational export | [`logical`] |
//! | §5.2 | Metadata | [`metadata`] |
//!
//! ## Quick start
//!
//! ```
//! use mvolap_core::case_study::case_study;
//! use mvolap_core::aggregate::{evaluate, AggregateQuery};
//! use mvolap_core::tmp::TemporalMode;
//! use mvolap_temporal::Interval;
//!
//! // The paper's running example: an institution whose Organization
//! // dimension evolves across 2001-2003.
//! let cs = case_study();
//! let svs = cs.tmd.structure_versions();
//! assert_eq!(svs.len(), 3);
//!
//! // Q1: total amount by year and division, temporally consistent.
//! let q1 = AggregateQuery::by_year(cs.org, "Division", TemporalMode::Consistent)
//!     .in_range(Interval::years(2001, 2002));
//! let result = evaluate(&cs.tmd, &svs, &q1).unwrap();
//! assert_eq!(result.rows.len(), 4);
//! assert_eq!(result.rows[0].keys[0], "Sales");
//! assert_eq!(result.rows[0].cells[0].value, Some(150.0));
//! ```

pub mod aggregate;
pub mod case_study;
pub mod confidence;
pub mod dimension;
pub mod error;
pub mod evolution;
pub mod fact;
pub mod ids;
pub mod levels;
pub mod logical;
pub mod mapping;
pub mod member;
pub mod memo;
pub mod metadata;
pub mod multiversion;
pub mod persist;
pub mod schema;
pub mod structure_version;
pub mod tmp;

pub use aggregate::{evaluate, evaluate_par, AggregateQuery, ResultRow, ResultSet, TimeLevel};
pub use confidence::{CellColour, Confidence, ConfidenceAlgebra, ConfidenceWeights};
pub use dimension::{DimensionSnapshot, TemporalDimension, TemporalRelationship};
pub use error::{CoreError, Result};
pub use fact::{Aggregator, FactTable, MeasureDef};
pub use ids::{DimensionId, MeasureId, MemberVersionId, StructureVersionId};
pub use mapping::{
    MappingFunction, MappingGraph, MappingRelationship, MeasureMapping, RouteDirection,
};
pub use member::{MemberVersion, MemberVersionSpec};
pub use memo::{MemoStats, QueryMemo, ShardedMemo};
pub use multiversion::{
    present, present_par, DeltaMvft, MultiVersionFactTable, MvCell, MvRow, PresentedFacts,
};
pub use mvolap_exec::ExecContext;
pub use schema::Tmd;
pub use structure_version::{infer_structure_versions, structure_version_at, StructureVersion};
pub use tmp::{all_modes, TemporalMode};
