//! Data aggregation over the multiversion fact table (paper
//! Definition 12) and the result tables the paper reports.
//!
//! An [`AggregateQuery`] groups the presented facts by a level per
//! dimension (roll-up through the temporal relationships) and a time
//! level, folding measures through `⊕m` and confidences through `⊗cf`.
//! The motivating queries Q1 ("total amount by year and division") and
//! Q2 ("total amounts per department") are both instances.

use std::collections::HashMap;

use mvolap_exec::ExecContext;
use mvolap_temporal::{Instant, Interval};

use crate::confidence::{Confidence, ConfidenceWeights};
use crate::error::{CoreError, Result};
use crate::fact::MeasureAccumulator;
use crate::ids::{DimensionId, MeasureId};
use crate::levels::ancestors_at_level;
use crate::memo::QueryMemo;
use crate::multiversion::{present_par, MvCell};
use crate::schema::Tmd;
use crate::structure_version::StructureVersion;
use crate::tmp::TemporalMode;

/// How the time axis is grouped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeLevel {
    /// One group per calendar year (the paper's reports).
    Year,
    /// One group per calendar quarter (month granularity assumed).
    Quarter,
    /// One group per calendar month.
    Month,
    /// One group per instant.
    Instant,
    /// A single all-time group.
    All,
}

/// A slice/dice restriction: keep only facts whose coordinate in
/// `dimension` rolls up (at the query's hierarchy instant) to one of
/// `members` at `level`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberFilter {
    /// The filtered dimension.
    pub dimension: DimensionId,
    /// The level the member names live at.
    pub level: String,
    /// Accepted member names.
    pub members: Vec<String>,
}

/// An aggregation query against a schema.
#[derive(Debug, Clone)]
pub struct AggregateQuery {
    /// Group-by columns: a dimension and one of its level names.
    pub group_by: Vec<(DimensionId, String)>,
    /// Time grouping.
    pub time_level: TimeLevel,
    /// Measures to aggregate (by schema id).
    pub measures: Vec<MeasureId>,
    /// The temporal mode of presentation.
    pub mode: TemporalMode,
    /// Optional restriction of fact times.
    pub time_range: Option<Interval>,
    /// Slice/dice restrictions on member names (conjunctive).
    pub filters: Vec<MemberFilter>,
}

impl AggregateQuery {
    /// A query grouping one dimension level by year over all measures —
    /// the shape of the paper's Q1/Q2.
    pub fn by_year(dim: DimensionId, level: impl Into<String>, mode: TemporalMode) -> Self {
        AggregateQuery {
            group_by: vec![(dim, level.into())],
            time_level: TimeLevel::Year,
            measures: Vec::new(), // empty = all measures
            mode,
            time_range: None,
            filters: Vec::new(),
        }
    }

    /// A grand-total query (no grouping) over all measures.
    pub fn grand_total(mode: TemporalMode) -> Self {
        AggregateQuery {
            group_by: Vec::new(),
            time_level: TimeLevel::All,
            measures: Vec::new(),
            mode,
            time_range: None,
            filters: Vec::new(),
        }
    }

    /// Restricts fact times to `range`.
    #[must_use]
    pub fn in_range(mut self, range: Interval) -> Self {
        self.time_range = Some(range);
        self
    }

    /// Adds a member filter (conjunctive with existing ones).
    #[must_use]
    pub fn filtered(mut self, filter: MemberFilter) -> Self {
        self.filters.push(filter);
        self
    }
}

/// One result row: the time key, the group keys (member names) and one
/// cell per measure.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Rendered time key (`"2001"`, an instant, or `"all"`).
    pub time: String,
    /// One member name per group-by column; `"(unclassified)"` marks a
    /// non-covering roll-up.
    pub keys: Vec<String>,
    /// One aggregated cell per queried measure.
    pub cells: Vec<MvCell>,
}

/// The result of an [`AggregateQuery`].
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// The mode the data is presented in.
    pub mode: TemporalMode,
    /// Header for the time column.
    pub time_header: String,
    /// Headers for the group-by columns (level names).
    pub key_headers: Vec<String>,
    /// Headers for the measure columns.
    pub measure_headers: Vec<String>,
    /// Result rows, ordered by time then first contribution.
    pub rows: Vec<ResultRow>,
    /// Source fact rows not representable in this mode.
    pub unmapped_rows: usize,
}

impl ResultSet {
    /// The §5.2 global quality factor
    /// `Q = (Σᵢⱼ pds(fb(i,j))) / (Ni·Nj·10)` over the result grid, with
    /// `pds` the user's confidence weighting. Empty results score 0.
    pub fn quality(&self, weights: &ConfidenceWeights) -> f64 {
        let ni = self.rows.len();
        let nj = self.measure_headers.len();
        if ni == 0 || nj == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .rows
            .iter()
            .flat_map(|r| r.cells.iter())
            .map(|c| weights.weight(c.confidence) as u64)
            .sum();
        sum as f64 / (ni as f64 * nj as f64 * 10.0)
    }

    /// Exports the result as a relational table (time, keys, one value
    /// and one confidence-code column per measure) for rendering or
    /// further relational work.
    ///
    /// # Errors
    ///
    /// Propagates storage-schema errors (duplicate headers).
    pub fn to_storage_table(&self, name: &str) -> Result<mvolap_storage::Table> {
        use mvolap_storage::{ColumnDef, DataType, Table, TableSchema, Value};
        let mut defs = vec![ColumnDef::required(self.time_header.clone(), DataType::Str)];
        for k in &self.key_headers {
            defs.push(ColumnDef::required(k.clone(), DataType::Str));
        }
        for m in &self.measure_headers {
            defs.push(ColumnDef::nullable(m.clone(), DataType::Float));
            defs.push(ColumnDef::required(format!("{m}_cf"), DataType::Str));
        }
        let schema = TableSchema::new(defs).map_err(CoreError::from)?;
        let mut table = Table::with_capacity(name, schema, self.rows.len());
        for row in &self.rows {
            let mut values: Vec<Value> =
                Vec::with_capacity(1 + row.keys.len() + 2 * row.cells.len());
            values.push(row.time.clone().into());
            values.extend(row.keys.iter().map(|k| Value::from(k.clone())));
            for cell in &row.cells {
                values.push(cell.value.map(Value::Float).unwrap_or(Value::Null));
                values.push(cell.confidence.code().into());
            }
            table.push_row(values).map_err(CoreError::from)?;
        }
        Ok(table)
    }

    /// Plain-text rendering in the paper's tabular style.
    pub fn render(&self, name: &str) -> Result<String> {
        Ok(mvolap_storage::render::render_table(
            &self.to_storage_table(name)?,
        ))
    }

    /// Pivot-grid rendering: time down the side, the first group key's
    /// members across the top, one measure per call — the layout of the
    /// prototype's result grids. Cells carry their confidence code;
    /// blank cells are impossible cross-points.
    pub fn render_grid(&self, measure: usize) -> String {
        render_rows_grid(&self.rows, measure)
    }
}

/// Pivot-grid rendering over result rows (shared by [`ResultSet`] and
/// the cube view): time × first-key-member grid of one measure.
pub fn render_rows_grid(rows: &[ResultRow], measure: usize) -> String {
    // Column headers: distinct first-key members in first-seen order.
    let mut columns: Vec<String> = Vec::new();
    for r in rows {
        if let Some(k) = r.keys.first() {
            if !columns.contains(k) {
                columns.push(k.clone());
            }
        }
    }
    let mut times: Vec<String> = Vec::new();
    for r in rows {
        if !times.contains(&r.time) {
            times.push(r.time.clone());
        }
    }
    let mut grid: Vec<Vec<String>> = vec![vec![String::new(); columns.len()]; times.len()];
    for r in rows {
        let Some(k) = r.keys.first() else { continue };
        let ti = times.iter().position(|t| t == &r.time).expect("collected");
        let ci = columns.iter().position(|c| c == k).expect("collected");
        if let Some(cell) = r.cells.get(measure) {
            grid[ti][ci] = match cell.value {
                Some(v) => format!("{v} ({})", cell.confidence.code()),
                None => format!("? ({})", cell.confidence.code()),
            };
        }
    }
    let mut widths: Vec<usize> = columns.iter().map(String::len).collect();
    for row in &grid {
        for (w, c) in widths.iter_mut().zip(row) {
            *w = (*w).max(c.len());
        }
    }
    let t_width = times.iter().map(String::len).max().unwrap_or(4).max(4);
    let mut out = String::new();
    out.push_str(&format!("{:<t_width$}", ""));
    for (c, w) in columns.iter().zip(&widths) {
        out.push_str(&format!("  {c:<w$}"));
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
    for (t, row) in times.iter().zip(&grid) {
        out.push_str(&format!("{t:<t_width$}"));
        for (c, w) in row.iter().zip(&widths) {
            out.push_str(&format!("  {c:<w$}"));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// Internal cell accumulator mirroring the multiversion layer's
/// semantics: `⊕m` on values, `⊗cf` on confidences, unknown poisons.
struct Acc {
    acc: MeasureAccumulator,
    confidence: Confidence,
    unknown: bool,
}

impl Acc {
    /// Merges another partial group cell in (second-stage fold of the
    /// morsel-parallel engine).
    fn merge(&mut self, other: &Acc) {
        self.acc.merge(&other.acc);
        self.confidence = self.confidence.combine(other.confidence);
        self.unknown |= other.unknown;
    }
}

/// Per-worker partial state of an aggregation fold: groups in
/// first-contribution order, plus the earliest row error (the fold
/// itself cannot early-return across workers).
struct EvalAcc {
    index: HashMap<(String, Vec<String>), usize>,
    keys: Vec<(String, Vec<String>)>,
    accs: Vec<Vec<Acc>>,
    error: Option<CoreError>,
}

impl EvalAcc {
    fn new() -> Self {
        EvalAcc {
            index: HashMap::new(),
            keys: Vec::new(),
            accs: Vec::new(),
            error: None,
        }
    }

    /// Merges a later partial in, appending its new groups in their own
    /// order. The earliest error (in morsel order) wins, matching the
    /// error the sequential row loop would have surfaced first.
    fn merge(&mut self, other: EvalAcc) {
        if self.error.is_none() {
            self.error = other.error;
        }
        for (key, cells) in other.keys.into_iter().zip(other.accs) {
            match self.index.get(&key) {
                Some(&i) => {
                    for (a, b) in self.accs[i].iter_mut().zip(&cells) {
                        a.merge(b);
                    }
                }
                None => {
                    self.index.insert(key.clone(), self.keys.len());
                    self.keys.push(key);
                    self.accs.push(cells);
                }
            }
        }
    }
}

/// Evaluates an aggregation query (Definition 12) against a schema.
///
/// `structure_versions` must be [`Tmd::structure_versions`] of the same
/// schema (passed in so repeated queries amortise the inference).
///
/// Aggregation is two-stage: the multiversion presentation first folds
/// raw facts into one cell per `(coordinates, time)` with each
/// measure's `⊕m`, then this function folds cells into groups with the
/// *combining* form ([`crate::Aggregator::combining`]) — so partial counts add
/// instead of being re-counted. For `Avg` measures the group value is
/// the average of the per-cell aggregates (cells are the values of the
/// Definition 11 function `f'`), not a fact-weighted average.
///
/// # Errors
///
/// Unknown dimensions, measures, levels or structure versions.
pub fn evaluate(
    tmd: &Tmd,
    structure_versions: &[StructureVersion],
    query: &AggregateQuery,
) -> Result<ResultSet> {
    evaluate_par(
        tmd,
        structure_versions,
        query,
        &ExecContext::sequential(),
        &QueryMemo::new(),
    )
}

/// Morsel-parallel [`evaluate`]: presented rows are folded in
/// fixed-size morsels and per-worker partial groupings merged in morsel
/// order — bit-identical to the sequential evaluation for every
/// `ctx.threads`.
///
/// `memo` caches mapping routes (through the presentation) and roll-up
/// ancestor sets per `(dimension, leaf, level, instant)`; share one
/// [`QueryMemo`] across queries to amortise both, evolution operators
/// invalidate it via [`Tmd::generation`].
///
/// # Errors
///
/// Unknown dimensions, measures, levels or structure versions.
pub fn evaluate_par(
    tmd: &Tmd,
    structure_versions: &[StructureVersion],
    query: &AggregateQuery,
    ctx: &ExecContext,
    memo: &QueryMemo,
) -> Result<ResultSet> {
    // Resolve measures: empty means all.
    let measure_ids: Vec<MeasureId> = if query.measures.is_empty() {
        (0..tmd.measures().len())
            .map(|i| MeasureId(i as u16))
            .collect()
    } else {
        for &m in &query.measures {
            if m.index() >= tmd.measures().len() {
                return Err(CoreError::UnknownMeasure(m));
            }
        }
        query.measures.clone()
    };
    for &(dim, _) in &query.group_by {
        tmd.dimension(dim)?;
    }

    let presented = present_par(tmd, structure_versions, &query.mode, ctx, memo)?;

    // The instant at which each grouped dimension's hierarchy is read:
    // fixed at the structure version's start for version modes, the
    // fact's own time for consistent presentation.
    let hierarchy_instant = |dim: DimensionId, fact_time: Instant| -> Result<Instant> {
        match query.mode.version_for(dim) {
            None => Ok(fact_time),
            Some(svid) => {
                let sv = structure_versions
                    .get(svid.index())
                    .ok_or(CoreError::UnknownStructureVersion(svid.index()))?;
                Ok(sv.interval.start())
            }
        }
    };

    // Per-row grouping, shared by every worker. Errors return through
    // the fold state (the engine's fold is infallible).
    let process = |state: &mut EvalAcc, row: &crate::multiversion::MvRow| -> Result<()> {
        if let Some(range) = query.time_range {
            if !range.contains(row.time) {
                return Ok(());
            }
        }
        // Member filters: the row survives when, in every filtered
        // dimension, at least one of its ancestors at the filter level
        // carries an accepted name.
        for filter in &query.filters {
            let dimension = tmd.dimension(filter.dimension)?;
            let at = hierarchy_instant(filter.dimension, row.time)?;
            let leaf = row.coords[filter.dimension.index()];
            let ancestors = memo.try_ancestors(
                tmd,
                (filter.dimension, leaf, filter.level.clone(), at),
                || ancestors_at_level(dimension, leaf, &filter.level, at),
            )?;
            let accepted = ancestors.iter().any(|&a| {
                dimension
                    .version(a)
                    .map(|v| filter.members.contains(&v.name))
                    .unwrap_or(false)
            });
            if !accepted {
                return Ok(());
            }
        }
        let time_key = match query.time_level {
            TimeLevel::Year => row.time.year().to_string(),
            TimeLevel::Quarter => {
                let ym = row.time.to_ym();
                format!("{}-Q{}", ym.year, (ym.month - 1) / 3 + 1)
            }
            TimeLevel::Month => {
                let ym = row.time.to_ym();
                format!("{}-{:02}", ym.year, ym.month)
            }
            TimeLevel::Instant => row.time.display(tmd.granularity()),
            TimeLevel::All => "all".to_owned(),
        };
        // Roll the row's coordinates up to the requested levels; a
        // dimension may fan out (multiple hierarchies) — the row then
        // contributes to every combination.
        let mut key_options: Vec<Vec<String>> = Vec::with_capacity(query.group_by.len());
        for &(dim, ref level) in &query.group_by {
            let dimension = tmd.dimension(dim)?;
            let at = hierarchy_instant(dim, row.time)?;
            let leaf = row.coords[dim.index()];
            let ancestors = memo.try_ancestors(tmd, (dim, leaf, level.clone(), at), || {
                ancestors_at_level(dimension, leaf, level, at)
            })?;
            if ancestors.is_empty() {
                key_options.push(vec!["(unclassified)".to_owned()]);
            } else {
                key_options.push(
                    ancestors
                        .iter()
                        .map(|&a| dimension.version(a).map(|v| v.name.clone()))
                        .collect::<Result<Vec<_>>>()?,
                );
            }
        }

        // Cartesian product over fan-outs (usually a single combination).
        let mut combo = vec![0usize; key_options.len()];
        loop {
            let group_keys: Vec<String> = key_options
                .iter()
                .zip(&combo)
                .map(|(opts, &i)| opts[i].clone())
                .collect();
            let full_key = (time_key.clone(), group_keys);
            let idx = *state.index.entry(full_key.clone()).or_insert_with(|| {
                state.keys.push(full_key);
                state.accs.push(
                    measure_ids
                        .iter()
                        .map(|&m| Acc {
                            // Second-stage fold over MVFT cells: partial
                            // counts add (`combining`), sums add,
                            // min/max nest.
                            acc: MeasureAccumulator::new(
                                tmd.measures()[m.index()].aggregator.combining(),
                            ),
                            confidence: Confidence::Source,
                            unknown: false,
                        })
                        .collect(),
                );
                state.keys.len() - 1
            });
            for (slot, &m) in measure_ids.iter().enumerate() {
                let cell = &row.cells[m.index()];
                let acc = &mut state.accs[idx][slot];
                acc.confidence = acc.confidence.combine(cell.confidence);
                match cell.value {
                    Some(v) => acc.acc.update(v),
                    None => acc.unknown = true,
                }
            }
            // Advance the mixed-radix counter.
            let mut d = 0;
            loop {
                if d == combo.len() {
                    break;
                }
                combo[d] += 1;
                if combo[d] < key_options[d].len() {
                    break;
                }
                combo[d] = 0;
                d += 1;
            }
            if d == combo.len() {
                break;
            }
        }
        Ok(())
    };

    let folded = ctx.parallel_fold(
        &presented.rows,
        EvalAcc::new,
        |state, _row_index, row| {
            // After an error, stop doing work in this partial — results
            // are discarded once the error surfaces.
            if state.error.is_some() {
                return;
            }
            if let Err(e) = process(state, row) {
                state.error = Some(e);
            }
        },
        |into, from| into.merge(from),
    );
    if let Some(e) = folded.error {
        return Err(e);
    }
    let EvalAcc { keys, accs, .. } = folded;

    // Order: by time key (numeric-aware), preserving first-contribution
    // order within a time group — the paper's table layout.
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by(|&a, &b| {
        let ta = &keys[a].0;
        let tb = &keys[b].0;
        match (ta.parse::<i64>(), tb.parse::<i64>()) {
            (Ok(x), Ok(y)) => x.cmp(&y).then(a.cmp(&b)),
            _ => ta.cmp(tb).then(a.cmp(&b)),
        }
    });

    let rows: Vec<ResultRow> = order
        .into_iter()
        .map(|i| ResultRow {
            time: keys[i].0.clone(),
            keys: keys[i].1.clone(),
            cells: accs[i]
                .iter()
                .map(|a| MvCell {
                    value: if a.unknown { None } else { a.acc.finish() },
                    confidence: a.confidence,
                })
                .collect(),
        })
        .collect();

    Ok(ResultSet {
        mode: query.mode.clone(),
        time_header: match query.time_level {
            TimeLevel::Year => "Year".to_owned(),
            TimeLevel::Quarter => "Quarter".to_owned(),
            TimeLevel::Month => "Month".to_owned(),
            TimeLevel::Instant => "Time".to_owned(),
            TimeLevel::All => "Period".to_owned(),
        },
        key_headers: query.group_by.iter().map(|(_, l)| l.clone()).collect(),
        measure_headers: measure_ids
            .iter()
            .map(|&m| tmd.measures()[m.index()].name.clone())
            .collect(),
        rows,
        unmapped_rows: presented.unmapped_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::case_study;
    use crate::ids::StructureVersionId;

    fn q1(mode: TemporalMode) -> AggregateQuery {
        let cs = case_study();
        AggregateQuery::by_year(cs.org, "Division", mode).in_range(Interval::years(2001, 2002))
    }

    fn rows_of(rs: &ResultSet) -> Vec<(String, String, Option<f64>, Confidence)> {
        rs.rows
            .iter()
            .map(|r| {
                (
                    r.time.clone(),
                    r.keys[0].clone(),
                    r.cells[0].value,
                    r.cells[0].confidence,
                )
            })
            .collect()
    }

    #[test]
    fn q1_consistent_time_reproduces_table_4() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let rs = evaluate(&cs.tmd, &svs, &q1(TemporalMode::Consistent)).unwrap();
        let rows = rows_of(&rs);
        assert_eq!(
            rows,
            vec![
                (
                    "2001".into(),
                    "Sales".into(),
                    Some(150.0),
                    Confidence::Source
                ),
                ("2001".into(), "R&D".into(), Some(100.0), Confidence::Source),
                (
                    "2002".into(),
                    "Sales".into(),
                    Some(100.0),
                    Confidence::Source
                ),
                ("2002".into(), "R&D".into(), Some(150.0), Confidence::Source),
            ]
        );
    }

    #[test]
    fn q1_on_2001_structure_reproduces_table_5() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let rs = evaluate(
            &cs.tmd,
            &svs,
            &q1(TemporalMode::Version(StructureVersionId(0))),
        )
        .unwrap();
        let rows = rows_of(&rs);
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows[0],
            (
                "2001".into(),
                "Sales".into(),
                Some(150.0),
                Confidence::Source
            )
        );
        assert_eq!(
            rows[1],
            ("2001".into(), "R&D".into(), Some(100.0), Confidence::Source)
        );
        // 2002: Smith's data returns under Sales in the 2001 structure.
        assert_eq!(rows[2].0, "2002");
        assert_eq!(rows[2].1, "Sales");
        assert_eq!(rows[2].2, Some(200.0));
        assert_eq!(rows[3].1, "R&D");
        assert_eq!(rows[3].2, Some(50.0));
    }

    #[test]
    fn q1_on_2002_structure_reproduces_table_6() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let rs = evaluate(
            &cs.tmd,
            &svs,
            &q1(TemporalMode::Version(StructureVersionId(1))),
        )
        .unwrap();
        let rows = rows_of(&rs);
        assert_eq!(rows.len(), 4);
        // 2001: Smith's 50 moves under R&D in the 2002 structure.
        assert_eq!(rows[0].1, "Sales");
        assert_eq!(rows[0].2, Some(100.0));
        assert_eq!(rows[1].1, "R&D");
        assert_eq!(rows[1].2, Some(150.0));
        assert_eq!(
            rows[2],
            (
                "2002".into(),
                "Sales".into(),
                Some(100.0),
                Confidence::Source
            )
        );
        assert_eq!(
            rows[3],
            ("2002".into(), "R&D".into(), Some(150.0), Confidence::Source)
        );
    }

    fn q2(mode: TemporalMode) -> AggregateQuery {
        let cs = case_study();
        AggregateQuery::by_year(cs.org, "Department", mode).in_range(Interval::years(2002, 2003))
    }

    #[test]
    fn q2_consistent_time_reproduces_table_8() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let rs = evaluate(&cs.tmd, &svs, &q2(TemporalMode::Consistent)).unwrap();
        let rows = rows_of(&rs);
        assert_eq!(
            rows,
            vec![
                (
                    "2002".into(),
                    "Dpt.Jones".into(),
                    Some(100.0),
                    Confidence::Source
                ),
                (
                    "2002".into(),
                    "Dpt.Smith".into(),
                    Some(100.0),
                    Confidence::Source
                ),
                (
                    "2002".into(),
                    "Dpt.Brian".into(),
                    Some(50.0),
                    Confidence::Source
                ),
                (
                    "2003".into(),
                    "Dpt.Bill".into(),
                    Some(150.0),
                    Confidence::Source
                ),
                (
                    "2003".into(),
                    "Dpt.Paul".into(),
                    Some(50.0),
                    Confidence::Source
                ),
                (
                    "2003".into(),
                    "Dpt.Smith".into(),
                    Some(110.0),
                    Confidence::Source
                ),
                (
                    "2003".into(),
                    "Dpt.Brian".into(),
                    Some(40.0),
                    Confidence::Source
                ),
            ]
        );
    }

    #[test]
    fn q2_on_2002_structure_reproduces_table_9() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let rs = evaluate(
            &cs.tmd,
            &svs,
            &q2(TemporalMode::Version(StructureVersionId(1))),
        )
        .unwrap();
        let rows = rows_of(&rs);
        // 2003's Bill(150) + Paul(50) present as Jones 200, exact.
        let jones_2003 = rows
            .iter()
            .find(|r| r.0 == "2003" && r.1 == "Dpt.Jones")
            .unwrap();
        assert_eq!(jones_2003.2, Some(200.0));
        assert_eq!(jones_2003.3, Confidence::Exact);
        let smith_2003 = rows
            .iter()
            .find(|r| r.0 == "2003" && r.1 == "Dpt.Smith")
            .unwrap();
        assert_eq!(smith_2003.2, Some(110.0));
        assert_eq!(smith_2003.3, Confidence::Source);
        assert_eq!(rows.len(), 6); // 3 rows in 2002, 3 in 2003
    }

    #[test]
    fn q2_on_2003_structure_reproduces_table_10() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let rs = evaluate(
            &cs.tmd,
            &svs,
            &q2(TemporalMode::Version(StructureVersionId(2))),
        )
        .unwrap();
        let rows = rows_of(&rs);
        let get = |year: &str, dept: &str| {
            rows.iter()
                .find(|r| r.0 == year && r.1 == dept)
                .unwrap_or_else(|| panic!("{year}/{dept} missing"))
                .clone()
        };
        // Paper Table 10, 2002: Bill 40 (am), Paul 60 (am), Smith 100,
        // Brian 50.
        assert_eq!(get("2002", "Dpt.Bill").2, Some(40.0));
        assert_eq!(get("2002", "Dpt.Bill").3, Confidence::Approx);
        assert_eq!(get("2002", "Dpt.Paul").2, Some(60.0));
        assert_eq!(get("2002", "Dpt.Smith").2, Some(100.0));
        assert_eq!(get("2002", "Dpt.Brian").2, Some(50.0));
        // 2003 is source data.
        assert_eq!(get("2003", "Dpt.Bill").2, Some(150.0));
        assert_eq!(get("2003", "Dpt.Bill").3, Confidence::Source);
        assert_eq!(rows.len(), 8);
    }

    #[test]
    fn quality_factor_reflects_mapping_share() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let w = ConfidenceWeights::DEFAULT;
        let tcm = evaluate(&cs.tmd, &svs, &q2(TemporalMode::Consistent)).unwrap();
        assert!((tcm.quality(&w) - 1.0).abs() < 1e-12, "all source = 1.0");
        let v3 = evaluate(
            &cs.tmd,
            &svs,
            &q2(TemporalMode::Version(StructureVersionId(2))),
        )
        .unwrap();
        let q3 = v3.quality(&w);
        // 6 source cells (10) + 2 approx cells (5) over 8 cells.
        assert!((q3 - (6.0 * 10.0 + 2.0 * 5.0) / (8.0 * 10.0)).abs() < 1e-12);
        assert!(q3 < 1.0);
    }

    #[test]
    fn storage_export_and_render() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let rs = evaluate(&cs.tmd, &svs, &q1(TemporalMode::Consistent)).unwrap();
        let table = rs.to_storage_table("q1").unwrap();
        assert_eq!(table.len(), 4);
        assert_eq!(
            table.schema().names(),
            vec!["Year", "Division", "Amount", "Amount_cf"]
        );
        let text = rs.render("q1").unwrap();
        assert!(text.contains("Sales"));
        assert!(text.contains("150"));
        assert!(text.contains("sd"));
    }

    #[test]
    fn render_grid_pivots_first_key() {
        // Table 10 as a grid: departments across, years down.
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let rs = evaluate(
            &cs.tmd,
            &svs,
            &q2(TemporalMode::Version(StructureVersionId(2))),
        )
        .unwrap();
        let grid = rs.render_grid(0);
        let lines: Vec<&str> = grid.lines().collect();
        assert!(lines[0].contains("Dpt.Bill") && lines[0].contains("Dpt.Brian"));
        let row_2002 = lines.iter().find(|l| l.starts_with("2002")).unwrap();
        assert!(row_2002.contains("40 (am)"));
        assert!(row_2002.contains("60 (am)"));
        assert!(row_2002.contains("100 (sd)"));
    }

    #[test]
    fn time_level_all_and_instant() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let mut q = q1(TemporalMode::Consistent);
        q.time_level = TimeLevel::All;
        q.time_range = None;
        let rs = evaluate(&cs.tmd, &svs, &q).unwrap();
        // Two divisions over all time.
        assert_eq!(rs.rows.len(), 2);
        let sales = rs.rows.iter().find(|r| r.keys[0] == "Sales").unwrap();
        // 100+50 (2001) + 100 (2002) + 150+50 (2003) = 450.
        assert_eq!(sales.cells[0].value, Some(450.0));

        q.time_level = TimeLevel::Instant;
        let rs = evaluate(&cs.tmd, &svs, &q).unwrap();
        assert!(rs.rows.iter().any(|r| r.time == "06/2001"));
    }

    #[test]
    fn unknown_level_is_an_error() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let q = AggregateQuery::by_year(cs.org, "Galaxy", TemporalMode::Consistent);
        assert!(matches!(
            evaluate(&cs.tmd, &svs, &q),
            Err(CoreError::UnknownLevel { .. })
        ));
    }
}
