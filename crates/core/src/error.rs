//! Core model errors.

use mvolap_temporal::{Instant, Interval, TemporalError};

use crate::ids::{DimensionId, MeasureId, MemberVersionId};

/// Errors raised by the temporal multidimensional model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying temporal algebra error.
    Temporal(TemporalError),
    /// A member version id did not resolve.
    UnknownMemberVersion {
        /// Dimension searched.
        dimension: String,
        /// The unresolved id.
        id: MemberVersionId,
    },
    /// A member-version name did not resolve.
    UnknownMemberName {
        /// Dimension searched.
        dimension: String,
        /// The unresolved name.
        name: String,
    },
    /// A dimension id did not resolve.
    UnknownDimension(DimensionId),
    /// A dimension name did not resolve.
    UnknownDimensionName(String),
    /// A measure id did not resolve.
    UnknownMeasure(MeasureId),
    /// A measure name did not resolve.
    UnknownMeasureName(String),
    /// A relationship's valid time is not included in the intersection of
    /// the valid times of both member versions (paper Definition 2).
    RelationshipOutsideMemberValidity {
        /// Child member version.
        child: MemberVersionId,
        /// Parent member version.
        parent: MemberVersionId,
        /// The offending relationship validity.
        validity: Interval,
    },
    /// Adding the relationship would create a cycle at some instant,
    /// violating the DAG requirement of Definition 3.
    CycleDetected {
        /// Child member version.
        child: MemberVersionId,
        /// Parent member version.
        parent: MemberVersionId,
        /// An instant at which the cycle would exist.
        at: Instant,
    },
    /// A relationship would duplicate an existing overlapping edge.
    DuplicateRelationship {
        /// Child member version.
        child: MemberVersionId,
        /// Parent member version.
        parent: MemberVersionId,
    },
    /// A self-loop relationship was requested.
    SelfRelationship(MemberVersionId),
    /// A fact row's coordinate arity does not match the schema.
    CoordinateArityMismatch {
        /// Dimensions in the schema.
        expected: usize,
        /// Coordinates supplied.
        actual: usize,
    },
    /// A fact row's measure arity does not match the schema.
    MeasureArityMismatch {
        /// Measures in the schema.
        expected: usize,
        /// Values supplied.
        actual: usize,
    },
    /// A fact coordinate is not valid at the fact's time.
    CoordinateNotValid {
        /// Dimension of the offending coordinate.
        dimension: String,
        /// The coordinate.
        id: MemberVersionId,
        /// The fact time.
        at: Instant,
    },
    /// A fact coordinate is not a leaf member version.
    CoordinateNotLeaf {
        /// Dimension of the offending coordinate.
        dimension: String,
        /// The coordinate.
        id: MemberVersionId,
    },
    /// A mapping relationship's measure arity does not match the schema.
    MappingArityMismatch {
        /// Measures in the schema.
        expected: usize,
        /// Mapping pairs supplied.
        actual: usize,
    },
    /// A mapping relationship endpoint is not a leaf member version
    /// (Definition 7: mappings are only relevant for leaves).
    MappingEndpointNotLeaf(MemberVersionId),
    /// A mapping between identical endpoints was requested.
    MappingSelfLoop(MemberVersionId),
    /// No mapping relationship exists between the given endpoints.
    MappingNotFound {
        /// Source member version.
        from: MemberVersionId,
        /// Target member version.
        to: MemberVersionId,
    },
    /// A structure version id did not resolve.
    UnknownStructureVersion(usize),
    /// No structure version covers the given instant.
    NoStructureVersionAt(Instant),
    /// A member version is immutable in the requested way (e.g. excluding
    /// before its start).
    InvalidExclusion {
        /// The member version.
        id: MemberVersionId,
        /// The requested exclusion instant.
        at: Instant,
    },
    /// An evolution operation's preconditions failed.
    InvalidEvolution(String),
    /// Level lookup failed.
    UnknownLevel {
        /// Dimension searched.
        dimension: String,
        /// Requested level.
        level: String,
    },
    /// Storage-layer failure during logical export.
    Storage(String),
}

impl From<TemporalError> for CoreError {
    fn from(e: TemporalError) -> Self {
        CoreError::Temporal(e)
    }
}

impl From<mvolap_storage::StorageError> for CoreError {
    fn from(e: mvolap_storage::StorageError) -> Self {
        CoreError::Storage(e.to_string())
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use CoreError::*;
        match self {
            Temporal(e) => write!(f, "temporal error: {e}"),
            UnknownMemberVersion { dimension, id } => {
                write!(f, "unknown member version {id:?} in dimension `{dimension}`")
            }
            UnknownMemberName { dimension, name } => {
                write!(f, "unknown member `{name}` in dimension `{dimension}`")
            }
            UnknownDimension(id) => write!(f, "unknown dimension {id:?}"),
            UnknownDimensionName(name) => write!(f, "unknown dimension `{name}`"),
            UnknownMeasure(id) => write!(f, "unknown measure {id:?}"),
            UnknownMeasureName(name) => write!(f, "unknown measure `{name}`"),
            RelationshipOutsideMemberValidity { child, parent, validity } => write!(
                f,
                "relationship {child:?}->{parent:?} validity {validity} exceeds the intersection of member validities"
            ),
            CycleDetected { child, parent, at } => write!(
                f,
                "relationship {child:?}->{parent:?} would create a cycle at {at}"
            ),
            DuplicateRelationship { child, parent } => {
                write!(f, "overlapping duplicate relationship {child:?}->{parent:?}")
            }
            SelfRelationship(id) => write!(f, "self relationship on {id:?}"),
            CoordinateArityMismatch { expected, actual } => {
                write!(f, "fact has {actual} coordinates, schema has {expected} dimensions")
            }
            MeasureArityMismatch { expected, actual } => {
                write!(f, "fact has {actual} measures, schema has {expected}")
            }
            CoordinateNotValid { dimension, id, at } => {
                write!(f, "coordinate {id:?} of `{dimension}` is not valid at {at}")
            }
            CoordinateNotLeaf { dimension, id } => {
                write!(f, "coordinate {id:?} of `{dimension}` is not a leaf member version")
            }
            MappingArityMismatch { expected, actual } => {
                write!(f, "mapping has {actual} measure functions, schema has {expected} measures")
            }
            MappingEndpointNotLeaf(id) => {
                write!(f, "mapping endpoint {id:?} is not a leaf member version")
            }
            MappingSelfLoop(id) => write!(f, "mapping from {id:?} to itself"),
            MappingNotFound { from, to } => {
                write!(f, "no mapping relationship {from:?}->{to:?} exists")
            }
            UnknownStructureVersion(i) => write!(f, "unknown structure version VS{i}"),
            NoStructureVersionAt(t) => write!(f, "no structure version covers {t}"),
            InvalidExclusion { id, at } => {
                write!(f, "cannot exclude {id:?} at {at}: before its validity start")
            }
            InvalidEvolution(msg) => write!(f, "invalid evolution operation: {msg}"),
            UnknownLevel { dimension, level } => {
                write!(f, "unknown level `{level}` in dimension `{dimension}`")
            }
            Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
