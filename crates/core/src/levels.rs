//! Levels in a dimension (paper Definition 4).
//!
//! Levels are *derived* from the instances, never declared up front:
//! either as equivalence classes of the explicit `Level` field (when every
//! valid member version carries one), or as depth classes in the DAG
//! `D(t)`. This is the paper's "bottom-up" schema approach (§2.3), which
//! is what lets one model handle non-onto, non-covering and multiple
//! hierarchies, and lets schema evolution reduce to instance evolution.

use mvolap_temporal::Instant;

use crate::dimension::TemporalDimension;
use crate::error::{CoreError, Result};
use crate::ids::MemberVersionId;

/// One level of a dimension at a given instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Level {
    /// Level name: the explicit `Level` field value, or `"L<depth>"` for
    /// depth-derived levels.
    pub name: String,
    /// Member versions in this level, in id order.
    pub members: Vec<MemberVersionId>,
}

/// How the levels of a dimension were derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelDerivation {
    /// Every valid member version carries an explicit level tag.
    Explicit,
    /// At least one version lacks a tag; levels are DAG depths.
    Depth,
}

/// Computes the levels of `dimension` at instant `t`.
///
/// Returns the derivation used plus the levels ordered top-down (smaller
/// depth / closer to the roots first). For explicit levels, the order is
/// the minimum DAG depth of each class, which reconstructs the
/// hierarchical order without any declared schema.
pub fn levels_at(dimension: &TemporalDimension, t: Instant) -> (LevelDerivation, Vec<Level>) {
    let snap = dimension.snapshot(t);
    let depths = snap.depths();
    let explicit = snap.members().iter().all(|&id| {
        dimension
            .version(id)
            .map(|v| v.level.is_some())
            .unwrap_or(false)
    }) && !snap.members().is_empty();

    if explicit {
        // Group by the level tag, ordered by minimum depth of the class.
        let mut classes: Vec<(String, Vec<MemberVersionId>, usize)> = Vec::new();
        for &id in snap.members() {
            let tag = dimension
                .version(id)
                .expect("snapshot member exists")
                .level
                .clone()
                .expect("explicit derivation checked");
            let d = depths.get(&id).copied().unwrap_or(0);
            match classes.iter_mut().find(|(name, ..)| *name == tag) {
                Some((_, members, min_d)) => {
                    members.push(id);
                    *min_d = (*min_d).min(d);
                }
                None => classes.push((tag, vec![id], d)),
            }
        }
        classes.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        (
            LevelDerivation::Explicit,
            classes
                .into_iter()
                .map(|(name, members, _)| Level { name, members })
                .collect(),
        )
    } else {
        let max_depth = depths.values().copied().max().unwrap_or(0);
        let mut levels: Vec<Level> = (0..=max_depth)
            .map(|d| Level {
                name: format!("L{d}"),
                members: Vec::new(),
            })
            .collect();
        for (&id, &d) in &depths {
            levels[d].members.push(id);
        }
        levels.retain(|l| !l.members.is_empty());
        if snap.members().is_empty() {
            levels.clear();
        }
        (LevelDerivation::Depth, levels)
    }
}

/// All level names a dimension exhibits over its whole history, ordered
/// top-down by first appearance. Probes the structure at every validity
/// boundary, so levels that exist only during part of history are
/// included.
pub fn all_level_names(dimension: &TemporalDimension) -> Vec<String> {
    let mut points: Vec<Instant> = dimension
        .validity_intervals()
        .into_iter()
        .map(|iv| iv.start())
        .collect();
    points.sort_unstable();
    points.dedup();
    let mut names: Vec<String> = Vec::new();
    for t in points {
        let (_, levels) = levels_at(dimension, t);
        for l in levels {
            if !names.contains(&l.name) {
                names.push(l.name);
            }
        }
    }
    names
}

/// The level name of one member version at `t`.
pub fn level_of(dimension: &TemporalDimension, id: MemberVersionId, t: Instant) -> Option<String> {
    let (_, levels) = levels_at(dimension, t);
    levels
        .into_iter()
        .find(|l| l.members.contains(&id))
        .map(|l| l.name)
}

/// The ancestors of `leaf` that belong to level `level` at instant `t`.
///
/// With multiple hierarchies a leaf may have several ancestors at one
/// level; with non-covering hierarchies it may have none. A leaf asked
/// about its own level maps to itself.
///
/// # Errors
///
/// [`CoreError::UnknownLevel`] when the level does not exist at `t`.
pub fn ancestors_at_level(
    dimension: &TemporalDimension,
    leaf: MemberVersionId,
    level: &str,
    t: Instant,
) -> Result<Vec<MemberVersionId>> {
    let (_, levels) = levels_at(dimension, t);
    let target =
        levels
            .iter()
            .find(|l| l.name == level)
            .ok_or_else(|| CoreError::UnknownLevel {
                dimension: dimension.name().to_owned(),
                level: level.to_owned(),
            })?;
    if target.members.contains(&leaf) {
        return Ok(vec![leaf]);
    }
    let mut out: Vec<MemberVersionId> = dimension
        .ancestors_at(leaf, t)
        .into_iter()
        .filter(|a| target.members.contains(a))
        .collect();
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::MemberVersionSpec;
    use mvolap_temporal::Interval;

    fn tagged_org() -> TemporalDimension {
        let mut d = TemporalDimension::new("Org");
        let all = Interval::since(Instant::ym(2001, 1));
        let sales = d.add_version(MemberVersionSpec::named("Sales").at_level("Division"), all);
        let rnd = d.add_version(MemberVersionSpec::named("R&D").at_level("Division"), all);
        let jones = d.add_version(
            MemberVersionSpec::named("Dpt.Jones").at_level("Department"),
            all,
        );
        let brian = d.add_version(
            MemberVersionSpec::named("Dpt.Brian").at_level("Department"),
            all,
        );
        d.add_relationship(jones, sales, all).unwrap();
        d.add_relationship(brian, rnd, all).unwrap();
        d
    }

    #[test]
    fn explicit_levels_match_example_4() {
        let d = tagged_org();
        let (derivation, levels) = levels_at(&d, Instant::ym(2001, 6));
        assert_eq!(derivation, LevelDerivation::Explicit);
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].name, "Division");
        assert_eq!(levels[0].members.len(), 2);
        assert_eq!(levels[1].name, "Department");
        assert_eq!(levels[1].members.len(), 2);
    }

    #[test]
    fn depth_levels_when_tags_missing() {
        let mut d = TemporalDimension::new("Untagged");
        let all = Interval::since(Instant::ym(2001, 1));
        let top = d.add_version(MemberVersionSpec::named("Top"), all);
        let mid = d.add_version(MemberVersionSpec::named("Mid"), all);
        let bot = d.add_version(MemberVersionSpec::named("Bot"), all);
        d.add_relationship(mid, top, all).unwrap();
        d.add_relationship(bot, mid, all).unwrap();
        let (derivation, levels) = levels_at(&d, Instant::ym(2001, 6));
        assert_eq!(derivation, LevelDerivation::Depth);
        let names: Vec<&str> = levels.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["L0", "L1", "L2"]);
        assert_eq!(levels[0].members, vec![top]);
        assert_eq!(levels[2].members, vec![bot]);
    }

    #[test]
    fn levels_evolve_over_time() {
        // A level disappears when all its members are excluded — the
        // paper's point that schema evolution reduces to instance
        // evolution.
        let mut d = TemporalDimension::new("Org");
        let early = Interval::years(2001, 2001);
        let all = Interval::since(Instant::ym(2001, 1));
        let div = d.add_version(MemberVersionSpec::named("Div").at_level("Division"), all);
        let dept = d.add_version(
            MemberVersionSpec::named("Dept").at_level("Department"),
            early,
        );
        d.add_relationship(dept, div, early).unwrap();
        let (_, in_2001) = levels_at(&d, Instant::ym(2001, 6));
        assert_eq!(in_2001.len(), 2);
        let (_, in_2002) = levels_at(&d, Instant::ym(2002, 6));
        assert_eq!(in_2002.len(), 1);
        assert_eq!(in_2002[0].name, "Division");
    }

    #[test]
    fn level_of_member() {
        let d = tagged_org();
        let jones = d
            .version_named_at("Dpt.Jones", Instant::ym(2001, 6))
            .unwrap()
            .id;
        assert_eq!(
            level_of(&d, jones, Instant::ym(2001, 6)).as_deref(),
            Some("Department")
        );
    }

    #[test]
    fn ancestors_at_level_rolls_up() {
        let d = tagged_org();
        let t = Instant::ym(2001, 6);
        let jones = d.version_named_at("Dpt.Jones", t).unwrap().id;
        let sales = d.version_named_at("Sales", t).unwrap().id;
        assert_eq!(
            ancestors_at_level(&d, jones, "Division", t).unwrap(),
            vec![sales]
        );
        // Leaf at its own level maps to itself.
        assert_eq!(
            ancestors_at_level(&d, jones, "Department", t).unwrap(),
            vec![jones]
        );
        assert!(ancestors_at_level(&d, jones, "Galaxy", t).is_err());
    }

    #[test]
    fn non_covering_hierarchy_yields_empty_ancestors() {
        // A department directly under no division at t: non-covering.
        let mut d = TemporalDimension::new("Org");
        let all = Interval::since(Instant::ym(2001, 1));
        d.add_version(MemberVersionSpec::named("Sales").at_level("Division"), all);
        let orphan = d.add_version(
            MemberVersionSpec::named("Dpt.Lone").at_level("Department"),
            all,
        );
        let t = Instant::ym(2001, 6);
        assert_eq!(
            ancestors_at_level(&d, orphan, "Division", t).unwrap(),
            Vec::<MemberVersionId>::new()
        );
    }

    #[test]
    fn all_level_names_covers_history() {
        // A Team level that only exists in 2001 is still reported.
        let mut d = TemporalDimension::new("Org");
        let all = Interval::since(Instant::ym(2001, 1));
        let early = Interval::years(2001, 2001);
        let div = d.add_version(MemberVersionSpec::named("Div").at_level("Division"), all);
        let dept = d.add_version(MemberVersionSpec::named("Dept").at_level("Department"), all);
        let team = d.add_version(MemberVersionSpec::named("Team1").at_level("Team"), early);
        d.add_relationship(dept, div, all).unwrap();
        d.add_relationship(team, dept, early).unwrap();
        assert_eq!(all_level_names(&d), vec!["Division", "Department", "Team"]);
    }

    #[test]
    fn empty_dimension_has_no_levels() {
        let d = TemporalDimension::new("Empty");
        let (derivation, levels) = levels_at(&d, Instant::ym(2001, 1));
        assert_eq!(derivation, LevelDerivation::Depth);
        assert!(levels.is_empty());
    }
}
