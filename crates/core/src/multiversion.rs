//! The MultiVersion Fact Table (paper Definition 11).
//!
//! `f' : D1 × … × Dn × T × TMP → dom(m1) × … × dom(mm) × CF^m` — the fact
//! table extended with a temporal-mode axis and per-measure confidence
//! factors. It is *inferred*, never authored: "it can be automatically
//! calculated from the temporal dimensions, Mapping Relationships and the
//! Temporally Consistent Fact Table".
//!
//! For the temporally consistent mode every fact is source data. For a
//! structure-version mode `VMi`, a fact whose coordinates are valid in
//! `Vi` stays source data; otherwise each invalid coordinate is routed
//! through the mapping closure to the member versions valid in `Vi`,
//! scaling values and downgrading confidence along the way. Facts with no
//! route at all are counted as unmapped (the "impossible cross-points" a
//! red cell flags in the prototype).
//!
//! Two materialisations exist: the full [`MultiVersionFactTable`]
//! (duplicating values in every version — the redundancy §5.1 concedes)
//! and the [`DeltaMvft`] extension that stores only mapped rows per
//! version and reconstructs the rest from the consistent fact table.

use std::collections::HashMap;
use std::sync::Arc;

use mvolap_exec::ExecContext;
use mvolap_temporal::Instant;

use crate::confidence::Confidence;
use crate::error::{CoreError, Result};
use crate::fact::MeasureAccumulator;
use crate::ids::{DimensionId, MemberVersionId};
use crate::mapping::MappingRoute;
use crate::memo::QueryMemo;
use crate::schema::Tmd;
use crate::structure_version::StructureVersion;
use crate::tmp::TemporalMode;

/// One cell value of the multiversion fact table: a possibly-unknown
/// value plus its confidence factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MvCell {
    /// The mapped value; `None` when an unknown mapping contributed.
    pub value: Option<f64>,
    /// The combined confidence factor.
    pub confidence: Confidence,
}

impl MvCell {
    /// A source-data cell.
    pub fn source(value: f64) -> Self {
        MvCell {
            value: Some(value),
            confidence: Confidence::Source,
        }
    }
}

/// One row of the multiversion fact table, within one temporal mode.
#[derive(Debug, Clone, PartialEq)]
pub struct MvRow {
    /// One leaf member version per dimension.
    pub coords: Vec<MemberVersionId>,
    /// The fact time.
    pub time: Instant,
    /// One cell per measure.
    pub cells: Vec<MvCell>,
}

/// The facts of a schema presented under one temporal mode.
#[derive(Debug, Clone)]
pub struct PresentedFacts {
    /// The mode these rows are presented in.
    pub mode: TemporalMode,
    /// The presented rows, one per distinct `(coords, time)` cell,
    /// in first-contribution order.
    pub rows: Vec<MvRow>,
    /// Source fact rows that could not be presented in this mode (no
    /// mapping route for some coordinate).
    pub unmapped_rows: usize,
}

/// Accumulates contributions to one cell: values fold through the
/// measure's `⊕m`, confidences through `⊗cf`, and an unknown-mapping
/// contribution poisons the value (the `uk` row of the truth table).
struct CellAcc {
    acc: MeasureAccumulator,
    confidence: Confidence,
    unknown: bool,
}

impl CellAcc {
    fn new(aggregator: crate::fact::Aggregator) -> Self {
        CellAcc {
            acc: MeasureAccumulator::new(aggregator),
            confidence: Confidence::Source,
            unknown: false,
        }
    }

    fn update(&mut self, value: Option<f64>, confidence: Confidence) {
        self.confidence = self.confidence.combine(confidence);
        match value {
            Some(v) => self.acc.update(v),
            None => self.unknown = true,
        }
    }

    /// Merges another partial cell in (second-stage fold of the
    /// morsel-parallel engine). Sound because `⊗cf` is a meet with
    /// `Source` as identity and the accumulator merges exactly.
    fn merge(&mut self, other: &CellAcc) {
        self.acc.merge(&other.acc);
        self.confidence = self.confidence.combine(other.confidence);
        self.unknown |= other.unknown;
    }

    fn finish(&self) -> MvCell {
        MvCell {
            value: if self.unknown {
                None
            } else {
                self.acc.finish()
            },
            confidence: self.confidence,
        }
    }
}

/// Per-worker partial state of a presentation fold: the grouped cells
/// contributed by one set of morsels, in first-contribution order.
struct PresentAcc {
    index: HashMap<(Vec<MemberVersionId>, Instant), usize>,
    keys: Vec<(Vec<MemberVersionId>, Instant)>,
    cells: Vec<Vec<CellAcc>>,
    unmapped: usize,
}

impl PresentAcc {
    fn new() -> Self {
        PresentAcc {
            index: HashMap::new(),
            keys: Vec::new(),
            cells: Vec::new(),
            unmapped: 0,
        }
    }

    /// The cell row for `key`, creating it on first contribution.
    fn cells_for(&mut self, key: (Vec<MemberVersionId>, Instant), tmd: &Tmd) -> &mut Vec<CellAcc> {
        let idx = *self.index.entry(key.clone()).or_insert_with(|| {
            self.keys.push(key);
            self.cells.push(
                tmd.measures()
                    .iter()
                    .map(|m| CellAcc::new(m.aggregator))
                    .collect(),
            );
            self.keys.len() - 1
        });
        &mut self.cells[idx]
    }

    /// Merges a later partial in. Appending `other`'s new keys in their
    /// own order keeps the global order equal to the sequential
    /// first-contribution order, because partials are merged in morsel
    /// order.
    fn merge(&mut self, other: PresentAcc) {
        self.unmapped += other.unmapped;
        for (key, accs) in other.keys.into_iter().zip(other.cells) {
            match self.index.get(&key) {
                Some(&i) => {
                    for (a, b) in self.cells[i].iter_mut().zip(&accs) {
                        a.merge(b);
                    }
                }
                None => {
                    self.index.insert(key.clone(), self.keys.len());
                    self.keys.push(key);
                    self.cells.push(accs);
                }
            }
        }
    }

    fn finish(self, mode: &TemporalMode) -> PresentedFacts {
        let rows = self
            .keys
            .into_iter()
            .zip(&self.cells)
            .map(|((coords, time), accs)| MvRow {
                coords,
                time,
                cells: accs.iter().map(CellAcc::finish).collect(),
            })
            .collect();
        PresentedFacts {
            mode: mode.clone(),
            rows,
            unmapped_rows: self.unmapped,
        }
    }
}

/// Presents the schema's facts under `mode`, resolving mappings against
/// the supplied structure versions (obtain them once via
/// [`Tmd::structure_versions`] and reuse across modes).
///
/// # Errors
///
/// [`CoreError::UnknownStructureVersion`] when the mode references a
/// version id outside `structure_versions`.
pub fn present(
    tmd: &Tmd,
    structure_versions: &[StructureVersion],
    mode: &TemporalMode,
) -> Result<PresentedFacts> {
    // A fresh memo per call reproduces the historical behaviour of a
    // local per-presentation route cache.
    present_par(
        tmd,
        structure_versions,
        mode,
        &ExecContext::sequential(),
        &QueryMemo::new(),
    )
}

/// Morsel-parallel [`present`]: fact rows are folded in fixed-size
/// morsels and the per-worker partials merged in morsel order, so the
/// result is bit-identical for every `ctx.threads` (the sequential
/// presentation is the `threads = 1` case of the same decomposition).
///
/// `memo` caches mapping-closure routes per `(dimension, member
/// version, structure version)` keyed to [`Tmd::generation`]; share one
/// [`QueryMemo`] across calls to reuse routes between modes and
/// queries, evolution operators invalidate it automatically.
///
/// # Errors
///
/// [`CoreError::UnknownStructureVersion`] when the mode references a
/// version id outside `structure_versions`.
pub fn present_par(
    tmd: &Tmd,
    structure_versions: &[StructureVersion],
    mode: &TemporalMode,
    ctx: &ExecContext,
    memo: &QueryMemo,
) -> Result<PresentedFacts> {
    let n_dims = tmd.dimensions().len();
    let n_measures = tmd.measures().len();
    let facts = tmd.facts();

    // Pre-resolve the target structure version per dimension (None =>
    // temporally consistent presentation for that dimension).
    let mut per_dim_sv: Vec<Option<&StructureVersion>> = Vec::with_capacity(n_dims);
    for d in 0..n_dims {
        match mode.version_for(DimensionId(d as u32)) {
            None => per_dim_sv.push(None),
            Some(svid) => {
                let sv = structure_versions
                    .get(svid.index())
                    .filter(|sv| sv.id == svid)
                    .ok_or(CoreError::UnknownStructureVersion(svid.index()))?;
                per_dim_sv.push(Some(sv));
            }
        }
    }
    let per_dim_sv = &per_dim_sv;

    // The fold walks row indices; the items slice only sets the length.
    let row_markers = vec![(); facts.len()];

    let acc = ctx.parallel_fold(
        &row_markers,
        PresentAcc::new,
        |state, row, &()| {
            let t = facts.time(row);
            // Resolve per-dimension routes for this fact. The index
            // drives three parallel structures (fact coordinates,
            // per-dim targets, the routes vector), so a range loop is
            // the clearest form.
            let mut routes: Vec<Arc<Vec<MappingRoute>>> = Vec::with_capacity(n_dims);
            #[allow(clippy::needless_range_loop)]
            for d in 0..n_dims {
                let c = facts.coord(row, d);
                match per_dim_sv[d] {
                    None => {
                        // Temporally consistent: facts were validated
                        // at insert time to be valid at their own time.
                        routes.push(Arc::new(vec![MappingRoute {
                            target: c,
                            per_measure: vec![
                                crate::mapping::MeasureMapping::SOURCE_IDENTITY;
                                n_measures
                            ],
                            hops: 0,
                        }]));
                    }
                    Some(sv) => {
                        let dim_id = DimensionId(d as u32);
                        let rs = memo.routes(tmd, (dim_id, c, sv.id), || {
                            // Routes must move monotonically through
                            // time toward the target structure version:
                            // forward edges for data older than it,
                            // backward edges for newer data (see
                            // `RouteDirection`).
                            let validity = tmd
                                .dimension(dim_id)
                                .and_then(|dim| dim.version(c))
                                .expect("fact coordinates are validated on insert")
                                .validity;
                            let direction = if validity.end() < sv.interval.start() {
                                crate::mapping::RouteDirection::Forward
                            } else if sv.interval.end() < validity.start() {
                                crate::mapping::RouteDirection::Backward
                            } else {
                                // Valid coordinates short-circuit in
                                // `resolve`; partial overlap cannot
                                // occur because structure versions
                                // refine every validity interval.
                                crate::mapping::RouteDirection::Any
                            };
                            tmd.mapping_graph(dim_id)
                                .expect("dimension exists")
                                .resolve(c, n_measures, direction, |id| sv.contains(dim_id, id))
                        });
                        if rs.is_empty() {
                            state.unmapped += 1;
                            return;
                        }
                        routes.push(rs);
                    }
                }
            }

            // Cartesian product of per-dimension routes (splits fan
            // out).
            let mut combo = vec![0usize; n_dims];
            loop {
                let coords: Vec<MemberVersionId> =
                    (0..n_dims).map(|d| routes[d][combo[d]].target).collect();
                let cells = state.cells_for((coords, t), tmd);
                for (m, cell) in cells.iter_mut().enumerate() {
                    // Compose this measure's mapping across dimensions
                    // and apply it to the source value.
                    let mut mapping = crate::mapping::MeasureMapping::SOURCE_IDENTITY;
                    for (d, r) in routes.iter().enumerate() {
                        mapping = mapping.compose(r[combo[d]].per_measure[m]);
                    }
                    let value = mapping.func.apply(facts.value(row, m));
                    cell.update(value, mapping.confidence);
                }
                // Advance the mixed-radix counter.
                let mut d = 0;
                loop {
                    if d == n_dims {
                        break;
                    }
                    combo[d] += 1;
                    if combo[d] < routes[d].len() {
                        break;
                    }
                    combo[d] = 0;
                    d += 1;
                }
                if d == n_dims {
                    break;
                }
            }
        },
        |into, from| into.merge(from),
    );
    Ok(acc.finish(mode))
}

/// The fully materialised MultiVersion Fact Table: every temporal mode's
/// presentation, as the prototype stored it ("we have to duplicate the
/// values in all versions", §5.1).
#[derive(Debug, Clone)]
pub struct MultiVersionFactTable {
    presentations: Vec<PresentedFacts>,
}

impl MultiVersionFactTable {
    /// Infers the full table: `tcm` plus one presentation per structure
    /// version (Definition 11).
    ///
    /// # Errors
    ///
    /// Propagates presentation errors.
    pub fn infer(tmd: &Tmd) -> Result<Self> {
        Self::infer_par(tmd, &ExecContext::sequential(), &QueryMemo::new())
    }

    /// Morsel-parallel [`MultiVersionFactTable::infer`]: each mode's
    /// presentation runs through [`present_par`], sharing `memo`'s
    /// route cache across modes. Bit-identical to [`infer`] for every
    /// thread count.
    ///
    /// [`infer`]: MultiVersionFactTable::infer
    ///
    /// # Errors
    ///
    /// Propagates presentation errors.
    pub fn infer_par(tmd: &Tmd, ctx: &ExecContext, memo: &QueryMemo) -> Result<Self> {
        let svs = tmd.structure_versions();
        let modes = crate::tmp::all_modes(&svs);
        let mut presentations = Vec::with_capacity(modes.len());
        for mode in &modes {
            presentations.push(present_par(tmd, &svs, mode, ctx, memo)?);
        }
        Ok(MultiVersionFactTable { presentations })
    }

    /// All per-mode presentations, `tcm` first.
    pub fn presentations(&self) -> &[PresentedFacts] {
        &self.presentations
    }

    /// The presentation for one mode.
    pub fn for_mode(&self, mode: &TemporalMode) -> Option<&PresentedFacts> {
        self.presentations.iter().find(|p| &p.mode == mode)
    }

    /// The function `f'` itself: the cells at `(coords, t, mode)`.
    pub fn lookup(
        &self,
        coords: &[MemberVersionId],
        t: Instant,
        mode: &TemporalMode,
    ) -> Option<&[MvCell]> {
        self.for_mode(mode)?
            .rows
            .iter()
            .find(|r| r.coords == coords && r.time == t)
            .map(|r| r.cells.as_slice())
    }

    /// Total materialised rows across all modes (the §5.1 redundancy).
    pub fn total_rows(&self) -> usize {
        self.presentations.iter().map(|p| p.rows.len()).sum()
    }
}

/// Differences-only materialisation (extension; the paper notes "we could
/// only store differences between versions instead of replicating all
/// values").
///
/// Stores, per structure-version mode, only the rows that *differ* from
/// the consistent presentation (i.e. rows with at least one mapped
/// contribution); source-valid rows are reconstructed from the consistent
/// fact table on demand.
#[derive(Debug, Clone)]
pub struct DeltaMvft {
    modes: Vec<TemporalMode>,
    /// Per version mode: the mapped (non-source) rows.
    deltas: Vec<Vec<MvRow>>,
    /// Per version mode: how many source rows were unmappable.
    unmapped: Vec<usize>,
}

impl DeltaMvft {
    /// Builds the delta representation for every structure-version mode.
    ///
    /// # Errors
    ///
    /// Propagates presentation errors.
    pub fn infer(tmd: &Tmd) -> Result<Self> {
        Self::infer_par(tmd, &ExecContext::sequential(), &QueryMemo::new())
    }

    /// Morsel-parallel [`DeltaMvft::infer`]; see
    /// [`MultiVersionFactTable::infer_par`] for the contract.
    ///
    /// # Errors
    ///
    /// Propagates presentation errors.
    pub fn infer_par(tmd: &Tmd, ctx: &ExecContext, memo: &QueryMemo) -> Result<Self> {
        let svs = tmd.structure_versions();
        let mut modes = Vec::with_capacity(svs.len());
        let mut deltas = Vec::with_capacity(svs.len());
        let mut unmapped = Vec::with_capacity(svs.len());
        for sv in &svs {
            let mode = TemporalMode::Version(sv.id);
            let p = present_par(tmd, &svs, &mode, ctx, memo)?;
            let mapped: Vec<MvRow> = p
                .rows
                .into_iter()
                .filter(|r| r.cells.iter().any(|c| c.confidence != Confidence::Source))
                .collect();
            modes.push(mode);
            deltas.push(mapped);
            unmapped.push(p.unmapped_rows);
        }
        Ok(DeltaMvft {
            modes,
            deltas,
            unmapped,
        })
    }

    /// Rows actually stored (across all version modes).
    pub fn stored_rows(&self) -> usize {
        self.deltas.iter().map(Vec::len).sum()
    }

    /// Reconstructs the full presentation of one version mode by merging
    /// the stored delta with the source-valid rows of the consistent fact
    /// table.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownStructureVersion`] for a mode not captured at
    /// build time.
    pub fn reconstruct(&self, tmd: &Tmd, mode: &TemporalMode) -> Result<PresentedFacts> {
        let idx = self
            .modes
            .iter()
            .position(|m| m == mode)
            .ok_or(CoreError::UnknownStructureVersion(usize::MAX))?;
        let svs = tmd.structure_versions();
        let TemporalMode::Version(svid) = mode else {
            return Err(CoreError::UnknownStructureVersion(usize::MAX));
        };
        let sv = svs
            .get(svid.index())
            .ok_or(CoreError::UnknownStructureVersion(svid.index()))?;

        // Source-valid rows: facts whose every coordinate is valid in the
        // version. Accumulate duplicates exactly as `present` does.
        let facts = tmd.facts();
        let n_dims = tmd.dimensions().len();
        let mut index: HashMap<(Vec<MemberVersionId>, Instant), usize> = HashMap::new();
        let mut keys: Vec<(Vec<MemberVersionId>, Instant)> = Vec::new();
        let mut cells: Vec<Vec<CellAcc>> = Vec::new();
        for row in 0..facts.len() {
            let coords = facts.row_coords(row);
            let all_valid = (0..n_dims).all(|d| sv.contains(DimensionId(d as u32), coords[d]));
            if !all_valid {
                continue;
            }
            let key = (coords, facts.time(row));
            let idx = *index.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                cells.push(
                    tmd.measures()
                        .iter()
                        .map(|m| CellAcc::new(m.aggregator))
                        .collect(),
                );
                keys.len() - 1
            });
            for (m, cell) in cells[idx].iter_mut().enumerate() {
                cell.update(Some(facts.value(row, m)), Confidence::Source);
            }
        }
        let mut rows: Vec<MvRow> = keys
            .into_iter()
            .zip(&cells)
            .map(|((coords, time), accs)| MvRow {
                coords,
                time,
                cells: accs.iter().map(CellAcc::finish).collect(),
            })
            .collect();

        // Merge in the stored deltas; a delta row may target the same cell
        // as a source row (a mapped contribution landing on live data).
        for delta in &self.deltas[idx] {
            match rows
                .iter_mut()
                .find(|r| r.coords == delta.coords && r.time == delta.time)
            {
                Some(existing) => {
                    for ((cell, d), measure) in existing
                        .cells
                        .iter_mut()
                        .zip(&delta.cells)
                        .zip(tmd.measures())
                    {
                        // The stored delta already folded the mapped
                        // contributions; merge the two partial cells with
                        // the measure's second-stage (combining) form.
                        cell.value = match (cell.value, d.value) {
                            (Some(a), Some(b)) => {
                                let mut acc =
                                    MeasureAccumulator::new(measure.aggregator.combining());
                                acc.update(a);
                                acc.update(b);
                                acc.finish()
                            }
                            _ => None,
                        };
                        cell.confidence = cell.confidence.combine(d.confidence);
                    }
                }
                None => rows.push(delta.clone()),
            }
        }
        Ok(PresentedFacts {
            mode: mode.clone(),
            rows,
            unmapped_rows: self.unmapped[idx],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::{case_study, CaseStudy};
    use crate::ids::StructureVersionId;

    fn by_name<'a>(
        cs: &CaseStudy,
        p: &'a PresentedFacts,
        name: &str,
        year: i32,
    ) -> Option<&'a MvRow> {
        let dim = cs.tmd.dimension(cs.org).unwrap();
        p.rows
            .iter()
            .find(|r| dim.version(r.coords[0]).unwrap().name == name && r.time.year() == year)
    }

    #[test]
    fn consistent_mode_is_source_everywhere() {
        // Definition 11's inclusion: f' restricted to tcm = f × {sd}^m.
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let p = present(&cs.tmd, &svs, &TemporalMode::Consistent).unwrap();
        assert_eq!(p.rows.len(), cs.tmd.facts().len());
        for r in &p.rows {
            for c in &r.cells {
                assert_eq!(c.confidence, Confidence::Source);
                assert!(c.value.is_some());
            }
        }
        assert_eq!(p.unmapped_rows, 0);
    }

    #[test]
    fn mode_v2002_merges_bill_and_paul_into_jones() {
        // Paper Table 9: in the 2002 structure, the 2003 facts of Bill
        // (150) and Paul (50) present as Jones 200 with exact confidence.
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let p = present(&cs.tmd, &svs, &TemporalMode::Version(StructureVersionId(1))).unwrap();
        let jones_2003 = by_name(&cs, &p, "Dpt.Jones", 2003).unwrap();
        assert_eq!(jones_2003.cells[0].value, Some(200.0));
        assert_eq!(jones_2003.cells[0].confidence, Confidence::Exact);
        // Smith and Brian 2003 facts are source data (valid in V2002).
        let smith_2003 = by_name(&cs, &p, "Dpt.Smith", 2003).unwrap();
        assert_eq!(smith_2003.cells[0].value, Some(110.0));
        assert_eq!(smith_2003.cells[0].confidence, Confidence::Source);
        assert_eq!(p.unmapped_rows, 0);
    }

    #[test]
    fn mode_v2003_splits_jones_into_bill_and_paul() {
        // Paper Table 10: Jones's 100 of 2002 presents as Bill 40 and
        // Paul 60, approximate.
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let p = present(&cs.tmd, &svs, &TemporalMode::Version(StructureVersionId(2))).unwrap();
        let bill_2002 = by_name(&cs, &p, "Dpt.Bill", 2002).unwrap();
        assert_eq!(bill_2002.cells[0].value, Some(40.0));
        assert_eq!(bill_2002.cells[0].confidence, Confidence::Approx);
        let paul_2002 = by_name(&cs, &p, "Dpt.Paul", 2002).unwrap();
        assert_eq!(paul_2002.cells[0].value, Some(60.0));
        // Jones's 2001 fact also splits 40/60.
        let bill_2001 = by_name(&cs, &p, "Dpt.Bill", 2001).unwrap();
        assert_eq!(bill_2001.cells[0].value, Some(40.0));
    }

    #[test]
    fn full_mvft_has_all_modes() {
        let cs = case_study();
        let mv = MultiVersionFactTable::infer(&cs.tmd).unwrap();
        // tcm + three structure versions.
        assert_eq!(mv.presentations().len(), 4);
        assert!(mv.for_mode(&TemporalMode::Consistent).is_some());
        assert!(mv.total_rows() > cs.tmd.facts().len());
    }

    #[test]
    fn lookup_is_definition_11s_function() {
        let cs = case_study();
        let mv = MultiVersionFactTable::infer(&cs.tmd).unwrap();
        let dim = cs.tmd.dimension(cs.org).unwrap();
        let jones = dim
            .version_named_at("Dpt.Jones", Instant::ym(2002, 6))
            .unwrap()
            .id;
        let t = Instant::ym(2003, 6);
        let cells = mv
            .lookup(&[jones], t, &TemporalMode::Version(StructureVersionId(1)))
            .unwrap();
        assert_eq!(cells[0].value, Some(200.0));
        // Jones does not exist in mode VS2.
        assert!(mv
            .lookup(&[jones], t, &TemporalMode::Version(StructureVersionId(2)))
            .is_none());
    }

    #[test]
    fn unknown_version_id_is_error() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let err = present(
            &cs.tmd,
            &svs,
            &TemporalMode::Version(StructureVersionId(99)),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::UnknownStructureVersion(99)));
    }

    #[test]
    fn delta_reconstruction_matches_full_materialisation() {
        let cs = case_study();
        let full = MultiVersionFactTable::infer(&cs.tmd).unwrap();
        let delta = DeltaMvft::infer(&cs.tmd).unwrap();
        for sv in cs.tmd.structure_versions() {
            let mode = TemporalMode::Version(sv.id);
            let full_p = full.for_mode(&mode).unwrap();
            let rec = delta.reconstruct(&cs.tmd, &mode).unwrap();
            assert_eq!(rec.rows.len(), full_p.rows.len(), "mode {mode}");
            for row in &full_p.rows {
                let r = rec
                    .rows
                    .iter()
                    .find(|r| r.coords == row.coords && r.time == row.time)
                    .unwrap_or_else(|| panic!("row missing in reconstruction of {mode}"));
                for (a, b) in row.cells.iter().zip(&r.cells) {
                    assert_eq!(a.confidence, b.confidence);
                    match (a.value, b.value) {
                        (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                        (None, None) => {}
                        _ => panic!("value mismatch in {mode}"),
                    }
                }
            }
            assert_eq!(rec.unmapped_rows, full_p.unmapped_rows);
        }
    }

    #[test]
    fn delta_stores_fewer_rows_than_full() {
        let cs = case_study();
        let full = MultiVersionFactTable::infer(&cs.tmd).unwrap();
        let delta = DeltaMvft::infer(&cs.tmd).unwrap();
        // Full duplicates everything; delta only the mapped rows.
        let full_version_rows =
            full.total_rows() - full.for_mode(&TemporalMode::Consistent).unwrap().rows.len();
        assert!(delta.stored_rows() < full_version_rows);
    }

    #[test]
    fn mixed_mode_presents_only_chosen_dimensions() {
        // §6 extension: choosing a version for the Org dimension while
        // leaving (hypothetical) others consistent. With one dimension,
        // Mixed([(org, v)]) must equal Version(v).
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let v = StructureVersionId(1);
        let mixed = TemporalMode::Mixed(vec![(cs.org, v)]);
        let a = present(&cs.tmd, &svs, &mixed).unwrap();
        let b = present(&cs.tmd, &svs, &TemporalMode::Version(v)).unwrap();
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x, y);
        }
    }
}
