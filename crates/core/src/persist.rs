//! On-disk persistence of a whole temporal multidimensional schema.
//!
//! A line-oriented, dependency-free text format capturing everything the
//! Temporal Data Warehouse holds (§5.1): dimensions with member versions
//! and temporal relationships, measures, mapping relationships, the
//! consistent fact table, and the evolution log. Loading *replays* the
//! schema through the validated construction API, so a tampered file
//! cannot produce an inconsistent schema (cycles, dangling edges,
//! non-leaf facts are all re-checked).
//!
//! ```text
//! mvolap-tmd v1
//! schema <name> month
//! measure <name> sum
//! dimension <name>
//! version <dim> <id> <start> <end> <level|-> <name> [<k>=<v>]…
//! edge <dim> <child> <parent> <start> <end>
//! mapping <dim> <from> <to> <fwd>… | <bwd>…
//! fact <tick> <coord>… | <value>…
//! logent <dim> <tick> <operator> <subjects,…> <description>
//! ```
//!
//! Fields are space-separated; names escape backslash, whitespace and
//! `=` (`\\`, `\s`, `\t`, `\n`, `\e`). Instants encode as raw ticks with
//! `now`/`dawn` for the sentinels. Mapping functions encode as `id`,
//! `s<k>`, `a<a>:<b>`, `u`, each suffixed `@sd|em|am|uk`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

use mvolap_temporal::{Granularity, Instant, Interval};

use crate::confidence::Confidence;
use crate::dimension::TemporalDimension;
use crate::fact::{Aggregator, MeasureDef};
use crate::ids::{DimensionId, MemberVersionId};
use crate::mapping::{MappingFunction, MappingRelationship, MeasureMapping};
use crate::member::MemberVersionSpec;
use crate::metadata::EvolutionEntry;
use crate::schema::Tmd;

/// Errors raised while reading the persisted format.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not in the expected format.
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Replaying the schema hit a model violation.
    Core(crate::CoreError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format { line, message } => {
                write!(f, "format error at line {line}: {message}")
            }
            PersistError::Core(e) => write!(f, "schema replay error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<crate::CoreError> for PersistError {
    fn from(e: crate::CoreError) -> Self {
        PersistError::Core(e)
    }
}

fn bad(line: usize, message: impl Into<String>) -> PersistError {
    PersistError::Format {
        line,
        message: message.into(),
    }
}

/// Escapes a name for a space-separated field.
fn field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '=' => out.push_str("\\e"),
            c => out.push(c),
        }
    }
    if out.is_empty() {
        out.push_str("\\0");
    }
    out
}

fn unfield(s: &str, line: usize) -> Result<String, PersistError> {
    if s == "\\0" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('e') => out.push('='),
            other => return Err(bad(line, format!("bad field escape \\{other:?}"))),
        }
    }
    Ok(out)
}

fn instant_enc(t: Instant) -> String {
    if t.is_forever() {
        "now".to_owned()
    } else if t.is_dawn() {
        "dawn".to_owned()
    } else {
        t.tick().to_string()
    }
}

fn instant_dec(s: &str, line: usize) -> Result<Instant, PersistError> {
    match s {
        "now" => Ok(Instant::FOREVER),
        "dawn" => Ok(Instant::DAWN),
        _ => s
            .parse::<i64>()
            .map(Instant::at)
            .map_err(|_| bad(line, format!("bad instant `{s}`"))),
    }
}

fn func_enc(m: &MeasureMapping) -> String {
    let f = match m.func {
        MappingFunction::Identity => "id".to_owned(),
        MappingFunction::Scale(k) => format!("s{k}"),
        MappingFunction::Affine { a, b } => format!("a{a}:{b}"),
        MappingFunction::Unknown => "u".to_owned(),
    };
    format!("{f}@{}", m.confidence.code())
}

fn func_dec(s: &str, line: usize) -> Result<MeasureMapping, PersistError> {
    let (f, cf) = s
        .rsplit_once('@')
        .ok_or_else(|| bad(line, format!("bad mapping `{s}` (missing @cf)")))?;
    let confidence = match cf {
        "sd" => Confidence::Source,
        "em" => Confidence::Exact,
        "am" => Confidence::Approx,
        "uk" => Confidence::Unknown,
        _ => return Err(bad(line, format!("bad confidence `{cf}`"))),
    };
    let func = if f == "id" {
        MappingFunction::Identity
    } else if f == "u" {
        MappingFunction::Unknown
    } else if let Some(k) = f.strip_prefix('s') {
        MappingFunction::Scale(
            k.parse()
                .map_err(|_| bad(line, format!("bad scale `{k}`")))?,
        )
    } else if let Some(ab) = f.strip_prefix('a') {
        let (a, b) = ab
            .split_once(':')
            .ok_or_else(|| bad(line, format!("bad affine `{ab}`")))?;
        MappingFunction::Affine {
            a: a.parse()
                .map_err(|_| bad(line, format!("bad affine a `{a}`")))?,
            b: b.parse()
                .map_err(|_| bad(line, format!("bad affine b `{b}`")))?,
        }
    } else {
        return Err(bad(line, format!("bad mapping function `{f}`")));
    };
    Ok(MeasureMapping { func, confidence })
}

/// Serialises a schema into the text format.
pub fn write_tmd(tmd: &Tmd, out: &mut impl Write) -> Result<(), PersistError> {
    let mut buf = String::new();
    buf.push_str("mvolap-tmd v1\n");
    let gran = match tmd.granularity() {
        Granularity::Tick => "tick",
        Granularity::Month => "month",
        Granularity::Year => "year",
    };
    let _ = writeln!(buf, "schema {} {gran}", field(tmd.name()));
    for m in tmd.measures() {
        let _ = writeln!(buf, "measure {} {}", field(&m.name), m.aggregator.name());
    }
    for (di, d) in tmd.dimensions().iter().enumerate() {
        let _ = writeln!(buf, "dimension {}", field(d.name()));
        for v in d.versions() {
            let _ = write!(
                buf,
                "version {di} {} {} {} {} {}",
                v.id.0,
                instant_enc(v.validity.start()),
                instant_enc(v.validity.end()),
                v.level
                    .as_deref()
                    .map(field)
                    .unwrap_or_else(|| "-".to_owned()),
                field(&v.name)
            );
            for (k, val) in &v.attributes {
                let _ = write!(buf, " {}={}", field(k), field(val));
            }
            buf.push('\n');
        }
        for r in d.relationships() {
            let _ = writeln!(
                buf,
                "edge {di} {} {} {} {}",
                r.child.0,
                r.parent.0,
                instant_enc(r.validity.start()),
                instant_enc(r.validity.end())
            );
        }
        let graph = tmd
            .mapping_graph(DimensionId(di as u32))
            .expect("dimension exists");
        for rel in graph.relationships() {
            let fwd: Vec<String> = rel.forward.iter().map(func_enc).collect();
            let bwd: Vec<String> = rel.backward.iter().map(func_enc).collect();
            let _ = writeln!(
                buf,
                "mapping {di} {} {} {} | {}",
                rel.from.0,
                rel.to.0,
                fwd.join(" "),
                bwd.join(" ")
            );
        }
    }
    let facts = tmd.facts();
    for row in 0..facts.len() {
        let coords: Vec<String> = facts
            .row_coords(row)
            .iter()
            .map(|c| c.0.to_string())
            .collect();
        let values: Vec<String> = facts
            .row_values(row)
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        let _ = writeln!(
            buf,
            "fact {} {} | {}",
            instant_enc(facts.time(row)),
            coords.join(" "),
            values.join(" ")
        );
    }
    for e in tmd.evolution_log().entries() {
        let subjects: Vec<String> = e.subjects.iter().map(|s| s.0.to_string()).collect();
        let _ = writeln!(
            buf,
            "logent {} {} {} {} {}",
            e.dimension.0,
            instant_enc(e.at),
            e.operator,
            subjects.join(","),
            field(&e.description)
        );
    }
    out.write_all(buf.as_bytes())?;
    Ok(())
}

/// Deserialises a schema, replaying it through the validated API.
pub fn read_tmd(input: &mut impl Read) -> Result<Tmd, PersistError> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines().enumerate();

    let header = lines
        .next()
        .ok_or_else(|| bad(1, "empty file"))?
        .1
        .map_err(PersistError::from)?;
    if header != "mvolap-tmd v1" {
        return Err(bad(1, format!("bad header `{header}`")));
    }

    let mut tmd: Option<Tmd> = None;
    // Facts and edges replay after all versions exist; buffer them.
    struct PendingEdge {
        dim: DimensionId,
        child: MemberVersionId,
        parent: MemberVersionId,
        validity: Interval,
        line: usize,
    }
    let mut edges: Vec<PendingEdge> = Vec::new();
    let mut mappings: Vec<(DimensionId, MappingRelationship)> = Vec::new();
    let mut facts: Vec<(Instant, Vec<MemberVersionId>, Vec<f64>)> = Vec::new();
    let mut log: Vec<EvolutionEntry> = Vec::new();

    let static_op = |s: &str| -> &'static str {
        match s {
            "insert" => "insert",
            "exclude" => "exclude",
            "associate" => "associate",
            "reclassify" => "reclassify",
            "confidence" => "confidence",
            _ => "evolution",
        }
    };

    for (idx, line) in lines {
        let n = idx + 1;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let (tag, rest) = line.split_once(' ').unwrap_or((line.as_str(), ""));
        let parts: Vec<&str> = rest.split(' ').collect();
        match tag {
            "schema" => {
                if parts.len() != 2 {
                    return Err(bad(n, "schema needs <name> <granularity>"));
                }
                let gran = match parts[1] {
                    "tick" => Granularity::Tick,
                    "month" => Granularity::Month,
                    "year" => Granularity::Year,
                    g => return Err(bad(n, format!("bad granularity `{g}`"))),
                };
                tmd = Some(Tmd::new(unfield(parts[0], n)?, gran));
            }
            "measure" => {
                let t = tmd
                    .as_mut()
                    .ok_or_else(|| bad(n, "measure before schema"))?;
                if parts.len() != 2 {
                    return Err(bad(n, "measure needs <name> <aggregator>"));
                }
                let aggregator = Aggregator::parse(parts[1])
                    .ok_or_else(|| bad(n, format!("bad aggregator `{}`", parts[1])))?;
                t.add_measure(MeasureDef {
                    name: unfield(parts[0], n)?,
                    aggregator,
                })?;
            }
            "dimension" => {
                let t = tmd
                    .as_mut()
                    .ok_or_else(|| bad(n, "dimension before schema"))?;
                if parts.len() != 1 {
                    return Err(bad(n, "dimension needs <name>"));
                }
                t.add_dimension(TemporalDimension::new(unfield(parts[0], n)?))?;
            }
            "version" => {
                let t = tmd
                    .as_mut()
                    .ok_or_else(|| bad(n, "version before schema"))?;
                if parts.len() < 6 {
                    return Err(bad(n, "version needs 6+ fields"));
                }
                let dim = DimensionId(
                    parts[0]
                        .parse()
                        .map_err(|_| bad(n, "bad dimension index"))?,
                );
                let id: u32 = parts[1].parse().map_err(|_| bad(n, "bad version id"))?;
                let start = instant_dec(parts[2], n)?;
                let end = instant_dec(parts[3], n)?;
                let level = if parts[4] == "-" {
                    None
                } else {
                    Some(unfield(parts[4], n)?)
                };
                let name = unfield(parts[5], n)?;
                let mut attributes = BTreeMap::new();
                for kv in &parts[6..] {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| bad(n, format!("bad attribute `{kv}`")))?;
                    attributes.insert(unfield(k, n)?, unfield(v, n)?);
                }
                let validity =
                    Interval::new(start, end).map_err(|e| bad(n, format!("bad validity: {e}")))?;
                let assigned = t.add_version(
                    dim,
                    MemberVersionSpec {
                        name,
                        attributes,
                        level,
                    },
                    validity,
                )?;
                if assigned.0 != id {
                    return Err(bad(
                        n,
                        format!(
                            "version ids must be dense and ordered: expected {id}, got {}",
                            assigned.0
                        ),
                    ));
                }
            }
            "edge" => {
                if parts.len() != 5 {
                    return Err(bad(n, "edge needs 5 fields"));
                }
                let start = instant_dec(parts[3], n)?;
                let end = instant_dec(parts[4], n)?;
                edges.push(PendingEdge {
                    dim: DimensionId(parts[0].parse().map_err(|_| bad(n, "bad dimension"))?),
                    child: MemberVersionId(parts[1].parse().map_err(|_| bad(n, "bad child id"))?),
                    parent: MemberVersionId(parts[2].parse().map_err(|_| bad(n, "bad parent id"))?),
                    validity: Interval::new(start, end)
                        .map_err(|e| bad(n, format!("bad validity: {e}")))?,
                    line: n,
                });
            }
            "mapping" => {
                let pipe = parts
                    .iter()
                    .position(|p| *p == "|")
                    .ok_or_else(|| bad(n, "mapping needs a `|` separator"))?;
                if pipe < 3 {
                    return Err(bad(n, "mapping needs <dim> <from> <to> fwd… | bwd…"));
                }
                let dim = DimensionId(parts[0].parse().map_err(|_| bad(n, "bad dimension"))?);
                let from = MemberVersionId(parts[1].parse().map_err(|_| bad(n, "bad from id"))?);
                let to = MemberVersionId(parts[2].parse().map_err(|_| bad(n, "bad to id"))?);
                let forward = parts[3..pipe]
                    .iter()
                    .map(|p| func_dec(p, n))
                    .collect::<Result<Vec<_>, _>>()?;
                let backward = parts[pipe + 1..]
                    .iter()
                    .map(|p| func_dec(p, n))
                    .collect::<Result<Vec<_>, _>>()?;
                mappings.push((
                    dim,
                    MappingRelationship {
                        from,
                        to,
                        forward,
                        backward,
                    },
                ));
            }
            "fact" => {
                let pipe = parts
                    .iter()
                    .position(|p| *p == "|")
                    .ok_or_else(|| bad(n, "fact needs a `|` separator"))?;
                let t = instant_dec(parts[0], n)?;
                let coords = parts[1..pipe]
                    .iter()
                    .map(|p| {
                        p.parse::<u32>()
                            .map(MemberVersionId)
                            .map_err(|_| bad(n, format!("bad coordinate `{p}`")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let values = parts[pipe + 1..]
                    .iter()
                    .map(|p| {
                        p.parse::<f64>()
                            .map_err(|_| bad(n, format!("bad value `{p}`")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                facts.push((t, coords, values));
            }
            "logent" => {
                if parts.len() < 5 {
                    return Err(bad(n, "logent needs 5 fields"));
                }
                let subjects = parts[3]
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.parse::<u32>()
                            .map(MemberVersionId)
                            .map_err(|_| bad(n, format!("bad subject `{s}`")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                log.push(EvolutionEntry {
                    dimension: DimensionId(parts[0].parse().map_err(|_| bad(n, "bad dimension"))?),
                    at: instant_dec(parts[1], n)?,
                    operator: static_op(parts[2]),
                    subjects,
                    description: unfield(&parts[4..].join(" "), n)?,
                });
            }
            other => return Err(bad(n, format!("unknown directive `{other}`"))),
        }
    }

    let mut tmd = tmd.ok_or_else(|| bad(1, "missing `schema` directive"))?;
    for e in edges {
        tmd.add_relationship(e.dim, e.child, e.parent, e.validity)
            .map_err(|err| bad(e.line, format!("edge replay failed: {err}")))?;
    }
    for (dim, rel) in mappings {
        tmd.add_mapping(dim, rel)?;
    }
    for (t, coords, values) in facts {
        tmd.add_fact(&coords, t, &values)?;
    }
    for e in log {
        tmd.record_evolution(e);
    }
    Ok(tmd)
}

/// Saves a schema to a file, atomically: the snapshot is written to a
/// sibling temp file, fsync'd, and renamed over `path`, so a crash
/// mid-save can never truncate or corrupt an existing snapshot — the old
/// file survives intact until the new one is durably complete.
pub fn save_tmd(tmd: &Tmd, path: &std::path::Path) -> Result<(), PersistError> {
    let mut file_name = path.file_name().unwrap_or_default().to_os_string();
    file_name.push(".tmp");
    let tmp = path.with_file_name(file_name);
    let mut f = std::fs::File::create(&tmp)?;
    if let Err(e) = write_tmd(tmd, &mut f).and_then(|()| f.sync_all().map_err(PersistError::from)) {
        drop(f);
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    drop(f);
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    Ok(())
}

/// Loads a schema from a file.
pub fn load_tmd(path: &std::path::Path) -> Result<Tmd, PersistError> {
    let mut f = std::fs::File::open(path)?;
    read_tmd(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::{case_study, case_study_two_measures};
    use crate::evolution;

    fn roundtrip(tmd: &Tmd) -> Tmd {
        let mut buf = Vec::new();
        write_tmd(tmd, &mut buf).expect("write");
        read_tmd(&mut buf.as_slice()).expect("read")
    }

    #[test]
    fn case_study_roundtrips() {
        let cs = case_study();
        let back = roundtrip(&cs.tmd);
        assert_eq!(back.name(), cs.tmd.name());
        assert_eq!(back.dimensions().len(), 1);
        assert_eq!(back.measures().len(), 1);
        assert_eq!(back.facts().len(), 10);
        assert_eq!(
            back.mapping_graph(cs.org).unwrap().relationships(),
            cs.tmd.mapping_graph(cs.org).unwrap().relationships()
        );
        // Structure versions re-infer identically.
        assert_eq!(back.structure_versions(), cs.tmd.structure_versions());
        // Dimension content matches.
        let (a, b) = (
            cs.tmd.dimension(cs.org).unwrap(),
            back.dimension(cs.org).unwrap(),
        );
        assert_eq!(a.versions(), b.versions());
        assert_eq!(a.relationships().len(), b.relationships().len());
    }

    #[test]
    fn queries_agree_after_roundtrip() {
        let cs = case_study_two_measures();
        let back = roundtrip(&cs.tmd);
        let q = crate::AggregateQuery::by_year(
            cs.org,
            "Department",
            crate::TemporalMode::Version(crate::StructureVersionId(2)),
        );
        let svs_a = cs.tmd.structure_versions();
        let svs_b = back.structure_versions();
        let ra = crate::evaluate(&cs.tmd, &svs_a, &q).expect("evaluates");
        let rb = crate::evaluate(&back, &svs_b, &q).expect("evaluates");
        assert_eq!(ra.rows, rb.rows);
    }

    #[test]
    fn evolution_log_roundtrips() {
        let mut cs = case_study();
        evolution::delete(&mut cs.tmd, cs.org, cs.brian, Instant::ym(2005, 1)).expect("delete");
        let back = roundtrip(&cs.tmd);
        let entries = back.evolution_log().entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].operator, "exclude");
        assert!(entries[0].description.contains("Dpt.Brian"));
    }

    #[test]
    fn hostile_names_roundtrip() {
        let mut tmd = Tmd::new("name with spaces\nand=weird\\chars", Granularity::Month);
        let dim = tmd
            .add_dimension(TemporalDimension::new("dim name"))
            .unwrap();
        tmd.add_measure(MeasureDef::summed("m one")).unwrap();
        let all = Interval::since(Instant::ym(2001, 1));
        tmd.add_version(
            dim,
            MemberVersionSpec::named("member = tricky \\N")
                .at_level("level one")
                .with_attribute("key=", "va l"),
            all,
        )
        .unwrap();
        let back = roundtrip(&tmd);
        assert_eq!(back.name(), tmd.name());
        let v = &back.dimension(dim).unwrap().versions()[0];
        assert_eq!(v.name, "member = tricky \\N");
        assert_eq!(v.level.as_deref(), Some("level one"));
        assert_eq!(v.attributes.get("key=").map(String::as_str), Some("va l"));
    }

    #[test]
    fn replay_validates_tampered_files() {
        // A cycle smuggled into the file is rejected on load.
        let text = "mvolap-tmd v1\n\
                    schema t month\n\
                    dimension D\n\
                    version 0 0 0 now - A\n\
                    version 0 1 0 now - B\n\
                    edge 0 0 1 0 now\n\
                    edge 0 1 0 0 now\n";
        let err = read_tmd(&mut text.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format { line: 7, .. }), "{err}");
        // A fact on a non-leaf is rejected too.
        let text = "mvolap-tmd v1\n\
                    schema t month\n\
                    measure m sum\n\
                    dimension D\n\
                    version 0 0 0 now - A\n\
                    version 0 1 0 now - B\n\
                    edge 0 1 0 0 now\n\
                    fact 5 0 | 1.0\n";
        assert!(matches!(
            read_tmd(&mut text.as_bytes()),
            Err(PersistError::Core(
                crate::CoreError::CoordinateNotLeaf { .. }
            ))
        ));
    }

    #[test]
    fn malformed_lines_report_positions() {
        for (text, line) in [
            ("garbage", 1usize),
            ("mvolap-tmd v1\nmeasure m sum\n", 2),
            ("mvolap-tmd v1\nschema t month\nversion 0 0 0 now -\n", 3),
            ("mvolap-tmd v1\nschema t lightyear\n", 2),
        ] {
            match read_tmd(&mut text.as_bytes()) {
                Err(PersistError::Format { line: l, .. }) => assert_eq!(l, line, "{text}"),
                other => panic!("expected format error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let cs = case_study();
        let path = std::env::temp_dir().join(format!("mvolap_tmd_{}.tmd", std::process::id()));
        save_tmd(&cs.tmd, &path).expect("save");
        let back = load_tmd(&path).expect("load");
        assert_eq!(back.facts().len(), cs.tmd.facts().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("mvolap_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.tmd");
        let cs = case_study();
        save_tmd(&cs.tmd, &path).expect("first save");
        // Overwriting an existing snapshot goes through the temp file;
        // afterwards only the final file remains and it parses.
        save_tmd(&cs.tmd, &path).expect("second save");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["snapshot.tmd".to_owned()], "{names:?}");
        load_tmd(&path).expect("load");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn field_escaping_edge_cases_roundtrip() {
        for name in [
            "a=b",
            "==",
            "back\\slash",
            "\\e",
            "\\s",
            "\\0",
            " ",
            "\t",
            "\n",
            " \t\n=\\",
            "trailing ",
            "=leading",
            "",
        ] {
            let encoded = field(name);
            assert!(
                !encoded.contains(' ')
                    && !encoded.contains('\t')
                    && !encoded.contains('\n')
                    && !encoded.contains('='),
                "field({name:?}) = {encoded:?} leaks a separator"
            );
            assert_eq!(unfield(&encoded, 1).unwrap(), name, "via {encoded:?}");
        }
    }

    #[test]
    fn hostile_member_names_and_attributes_roundtrip_through_schema() {
        let mut tmd = Tmd::new("t", Granularity::Month);
        let dim = tmd
            .add_dimension(TemporalDimension::new("d=1 \\ two"))
            .unwrap();
        tmd.add_measure(MeasureDef::summed("m")).unwrap();
        let all = Interval::since(Instant::ym(2001, 1));
        for (i, name) in ["x=y", "a\\sb", "  ", "\\N", "lvl=\\"].iter().enumerate() {
            tmd.add_version(
                dim,
                MemberVersionSpec::named(*name)
                    .at_level(format!("L{i}= \\"))
                    .with_attribute("k=\\ ", "v=\t")
                    .with_attribute("", "="),
                all,
            )
            .unwrap();
        }
        let back = roundtrip(&tmd);
        let (a, b) = (tmd.dimension(dim).unwrap(), back.dimension(dim).unwrap());
        assert_eq!(a.versions(), b.versions());
        assert_eq!(back.dimensions()[0].name(), "d=1 \\ two");
    }

    #[test]
    fn mapping_function_encodings_roundtrip_bit_exact() {
        use crate::confidence::Confidence;
        let funcs = [
            MappingFunction::Identity,
            MappingFunction::Unknown,
            MappingFunction::Scale(0.1),
            MappingFunction::Scale(1.0 / 3.0),
            MappingFunction::Scale(-0.0),
            MappingFunction::Scale(1e-300),
            MappingFunction::Scale(f64::MIN_POSITIVE / 2.0), // subnormal
            MappingFunction::Scale(f64::MAX),
            MappingFunction::Scale(f64::INFINITY),
            MappingFunction::Affine { a: 0.1, b: -0.2 },
            MappingFunction::Affine {
                a: 1e300,
                b: -1e-300,
            },
            MappingFunction::Affine {
                a: f64::NEG_INFINITY,
                b: -0.0,
            },
        ];
        let confidences = [
            Confidence::Source,
            Confidence::Exact,
            Confidence::Approx,
            Confidence::Unknown,
        ];
        let bits = |f: MappingFunction| -> Vec<u64> {
            match f {
                MappingFunction::Identity => vec![1],
                MappingFunction::Unknown => vec![2],
                MappingFunction::Scale(k) => vec![3, k.to_bits()],
                MappingFunction::Affine { a, b } => vec![4, a.to_bits(), b.to_bits()],
            }
        };
        for func in funcs {
            for confidence in confidences {
                let m = MeasureMapping { func, confidence };
                let enc = func_enc(&m);
                let back = func_dec(&enc, 1).unwrap_or_else(|e| panic!("{enc}: {e}"));
                assert_eq!(bits(back.func), bits(func), "{enc}");
                assert_eq!(back.confidence, confidence, "{enc}");
            }
        }
        // NaN round-trips to NaN (any payload counts).
        let m = MeasureMapping {
            func: MappingFunction::Scale(f64::NAN),
            confidence: Confidence::Approx,
        };
        match func_dec(&func_enc(&m), 1).unwrap().func {
            MappingFunction::Scale(k) => assert!(k.is_nan()),
            other => panic!("expected scale, got {other:?}"),
        }
    }
}
