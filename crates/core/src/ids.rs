//! Typed identifiers.
//!
//! Small `u32` newtypes keep fact coordinates compact (a fact row is a
//! handful of `u32`s plus a time and measures) and make it impossible to
//! confuse a dimension id with a member-version id at compile time.

/// Identifier of a member version, unique within its dimension
/// (`MVid` in paper Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemberVersionId(pub u32);

/// Identifier of a temporal dimension within a schema
/// (`Did` in paper Definition 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DimensionId(pub u32);

/// Identifier of a measure within a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MeasureId(pub u16);

/// Identifier of an inferred structure version (`VSid` in Definition 9).
///
/// Structure versions are numbered chronologically from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StructureVersionId(pub u32);

impl MemberVersionId {
    /// Index form for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl DimensionId {
    /// Index form for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MeasureId {
    /// Index form for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl StructureVersionId {
    /// Index form for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for StructureVersionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VS{}", self.0)
    }
}
