//! Confidence factors (paper Definition 6).
//!
//! A confidence factor "describes the reliability of data and allows to
//! distinguish source from mapped data". The paper's prototype uses the
//! qualitative range `CF = {sd, em, am, uk}` with a truth-table aggregate
//! `⊗cf`; quantitative confidence factors with a user-defined combiner are
//! also allowed. Both are supported here.

/// Qualitative confidence factor.
///
/// Ordered by reliability: `Unknown < Approx < Exact < Source`, so the
/// paper's truth table (Example 5) is exactly the *meet* (minimum) of the
/// operands — combining data can never increase reliability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Confidence {
    /// `uk`: the mapping relationship is unknown.
    Unknown,
    /// `am`: approximated mapped data.
    Approx,
    /// `em`: exact mapped data.
    Exact,
    /// `sd`: source (temporally consistent) data.
    Source,
}

impl Confidence {
    /// The paper's truth-table aggregate `⊗cf` (Example 5).
    ///
    /// ```
    /// use mvolap_core::Confidence::*;
    /// assert_eq!(Source.combine(Exact), Exact);
    /// assert_eq!(Exact.combine(Approx), Approx);
    /// assert_eq!(Approx.combine(Unknown), Unknown);
    /// assert_eq!(Source.combine(Source), Source);
    /// ```
    #[inline]
    #[must_use]
    pub fn combine(self, other: Confidence) -> Confidence {
        self.min(other)
    }

    /// Folds `⊗cf` over an iterator; an empty input is `Source`
    /// (the identity of the meet: nothing has been mapped).
    pub fn combine_all(iter: impl IntoIterator<Item = Confidence>) -> Confidence {
        iter.into_iter()
            .fold(Confidence::Source, Confidence::combine)
    }

    /// The paper's short code (`sd`, `em`, `am`, `uk`).
    pub fn code(self) -> &'static str {
        match self {
            Confidence::Source => "sd",
            Confidence::Exact => "em",
            Confidence::Approx => "am",
            Confidence::Unknown => "uk",
        }
    }

    /// The prototype's physical coding (§5.2): source 3, exact 2,
    /// approximated 1, unknown 4.
    pub fn physical_code(self) -> i64 {
        match self {
            Confidence::Source => 3,
            Confidence::Exact => 2,
            Confidence::Approx => 1,
            Confidence::Unknown => 4,
        }
    }

    /// Decodes the prototype's physical coding.
    pub fn from_physical_code(code: i64) -> Option<Confidence> {
        match code {
            3 => Some(Confidence::Source),
            2 => Some(Confidence::Exact),
            1 => Some(Confidence::Approx),
            4 => Some(Confidence::Unknown),
            _ => None,
        }
    }

    /// The prototype's navigation-help cell colour (§5.2): "white for
    /// source data, green for exact mapping, yellow for approximated
    /// mapping and red for impossible cross-point".
    pub fn colour(self) -> CellColour {
        match self {
            Confidence::Source => CellColour::White,
            Confidence::Exact => CellColour::Green,
            Confidence::Approx => CellColour::Yellow,
            Confidence::Unknown => CellColour::Red,
        }
    }

    /// All four factors, most reliable first.
    pub const ALL: [Confidence; 4] = [
        Confidence::Source,
        Confidence::Exact,
        Confidence::Approx,
        Confidence::Unknown,
    ];
}

impl std::fmt::Display for Confidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Cell background colour used to surface confidence in result grids
/// (§5.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellColour {
    /// Source data.
    White,
    /// Exact mapping.
    Green,
    /// Approximated mapping.
    Yellow,
    /// Impossible cross-point / unknown mapping.
    Red,
}

impl std::fmt::Display for CellColour {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CellColour::White => "white",
            CellColour::Green => "green",
            CellColour::Yellow => "yellow",
            CellColour::Red => "red",
        };
        f.write_str(s)
    }
}

/// A user-definable confidence algebra (Definition 6 allows quantitative
/// factors combined "by a function").
///
/// The qualitative [`Confidence`] implements this with the truth-table
/// meet; [`QuantitativeConfidence`] multiplies reliabilities.
pub trait ConfidenceAlgebra: Copy {
    /// The aggregate `⊗cf`.
    fn combine(self, other: Self) -> Self;
    /// Identity of `⊗cf` (the confidence of untouched source data).
    fn source() -> Self;
}

impl ConfidenceAlgebra for Confidence {
    fn combine(self, other: Self) -> Self {
        Confidence::combine(self, other)
    }
    fn source() -> Self {
        Confidence::Source
    }
}

/// A quantitative confidence in `[0, 1]` (1 = source data), combined by
/// multiplication — a standard probabilistic reliability model.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct QuantitativeConfidence(pub f64);

impl QuantitativeConfidence {
    /// Clamps into `[0, 1]`.
    pub fn new(v: f64) -> Self {
        QuantitativeConfidence(v.clamp(0.0, 1.0))
    }
}

impl ConfidenceAlgebra for QuantitativeConfidence {
    fn combine(self, other: Self) -> Self {
        QuantitativeConfidence(self.0 * other.0)
    }
    fn source() -> Self {
        QuantitativeConfidence(1.0)
    }
}

/// User weighting of confidence factors for the global quality factor `Q`
/// (§5.2): each factor gets a weight in `0..=10`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfidenceWeights {
    /// Weight of source data.
    pub source: u8,
    /// Weight of exactly mapped data.
    pub exact: u8,
    /// Weight of approximately mapped data.
    pub approx: u8,
    /// Weight of unknown mappings.
    pub unknown: u8,
}

impl ConfidenceWeights {
    /// A reasonable default: source 10, exact 8, approx 5, unknown 0.
    pub const DEFAULT: ConfidenceWeights = ConfidenceWeights {
        source: 10,
        exact: 8,
        approx: 5,
        unknown: 0,
    };

    /// Builds weights, clamping each into `0..=10` as the paper specifies
    /// ("a weight ranging between 0 (weakest) and 10 (best)").
    pub fn new(source: u8, exact: u8, approx: u8, unknown: u8) -> Self {
        ConfidenceWeights {
            source: source.min(10),
            exact: exact.min(10),
            approx: approx.min(10),
            unknown: unknown.min(10),
        }
    }

    /// The weight `pds(cf)` of one factor.
    pub fn weight(&self, cf: Confidence) -> u8 {
        match cf {
            Confidence::Source => self.source,
            Confidence::Exact => self.exact,
            Confidence::Approx => self.approx,
            Confidence::Unknown => self.unknown,
        }
    }
}

impl Default for ConfidenceWeights {
    fn default() -> Self {
        Self::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Confidence::*;

    #[test]
    fn truth_table_matches_paper_example_5() {
        // Paper Example 5, row by row.
        let expected = [
            (Source, Source, Source),
            (Source, Exact, Exact),
            (Source, Approx, Approx),
            (Source, Unknown, Unknown),
            (Exact, Source, Exact),
            (Exact, Exact, Exact),
            (Exact, Approx, Approx),
            (Exact, Unknown, Unknown),
            (Approx, Source, Approx),
            (Approx, Exact, Approx),
            (Approx, Approx, Approx),
            (Approx, Unknown, Unknown),
            (Unknown, Source, Unknown),
            (Unknown, Exact, Unknown),
            (Unknown, Approx, Unknown),
            (Unknown, Unknown, Unknown),
        ];
        for (a, b, want) in expected {
            assert_eq!(a.combine(b), want, "{a} ⊗ {b}");
        }
    }

    #[test]
    fn combine_is_commutative_associative_idempotent() {
        for a in Confidence::ALL {
            assert_eq!(a.combine(a), a);
            for b in Confidence::ALL {
                assert_eq!(a.combine(b), b.combine(a));
                for c in Confidence::ALL {
                    assert_eq!(a.combine(b).combine(c), a.combine(b.combine(c)));
                }
            }
        }
    }

    #[test]
    fn combine_all_identity_is_source() {
        assert_eq!(Confidence::combine_all([]), Source);
        assert_eq!(Confidence::combine_all([Exact, Approx, Source]), Approx);
    }

    #[test]
    fn physical_codes_roundtrip() {
        for cf in Confidence::ALL {
            assert_eq!(Confidence::from_physical_code(cf.physical_code()), Some(cf));
        }
        assert_eq!(Confidence::from_physical_code(0), None);
        // The paper's exact coding.
        assert_eq!(Source.physical_code(), 3);
        assert_eq!(Exact.physical_code(), 2);
        assert_eq!(Approx.physical_code(), 1);
        assert_eq!(Unknown.physical_code(), 4);
    }

    #[test]
    fn colours_match_prototype() {
        assert_eq!(Source.colour(), CellColour::White);
        assert_eq!(Exact.colour(), CellColour::Green);
        assert_eq!(Approx.colour(), CellColour::Yellow);
        assert_eq!(Unknown.colour(), CellColour::Red);
    }

    #[test]
    fn quantitative_confidence_multiplies() {
        let a = QuantitativeConfidence::new(0.8);
        let b = QuantitativeConfidence::new(0.5);
        assert!((a.combine(b).0 - 0.4).abs() < 1e-12);
        assert_eq!(QuantitativeConfidence::source().0, 1.0);
        assert_eq!(QuantitativeConfidence::new(1.5).0, 1.0);
    }

    #[test]
    fn weights_clamp_and_lookup() {
        let w = ConfidenceWeights::new(12, 8, 5, 0);
        assert_eq!(w.weight(Source), 10);
        assert_eq!(w.weight(Exact), 8);
        assert_eq!(w.weight(Approx), 5);
        assert_eq!(w.weight(Unknown), 0);
    }
}
