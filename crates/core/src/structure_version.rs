//! Structure versions (paper Definition 9).
//!
//! A *Structure Version* is "a valid and unchanged structure over its
//! given valid time". Structure versions are never declared: they are
//! inferred as the boundary partition of the valid times of every member
//! version and temporal relationship of every dimension, so the set of
//! valid elements is constant inside each version.

use mvolap_temporal::{partition_timeline, Instant, Interval};

use crate::dimension::TemporalDimension;
use crate::error::{CoreError, Result};
use crate::ids::{DimensionId, MemberVersionId, StructureVersionId};

/// One inferred structure version `<VSid, {D1,VSid … Dn,VSid}, ti, tf>`.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureVersion {
    /// Chronological identifier (`VS0` is the oldest).
    pub id: StructureVersionId,
    /// The valid time of this structure version.
    pub interval: Interval,
    /// Per dimension: the member versions valid throughout the interval,
    /// sorted by id (the restriction `Di,VSid`).
    pub members: Vec<Vec<MemberVersionId>>,
    /// Per dimension: the roll-up edges `(child, parent)` valid
    /// throughout the interval, sorted — the relationship half of the
    /// restriction `Di,VSid` (a reclassification changes edges without
    /// touching members, and still separates structure versions).
    pub edges: Vec<Vec<(MemberVersionId, MemberVersionId)>>,
}

impl StructureVersion {
    /// Whether member version `id` of dimension `dim` is valid in this
    /// structure version.
    pub fn contains(&self, dim: DimensionId, id: MemberVersionId) -> bool {
        self.members
            .get(dim.index())
            .map(|m| m.binary_search(&id).is_ok())
            .unwrap_or(false)
    }

    /// A label like `VS0 [01/2001 ; 12/2001]`.
    pub fn label(&self) -> String {
        format!("{} {}", self.id, self.interval)
    }
}

/// Infers the structure versions of a set of dimensions.
///
/// Collects every validity interval (member versions and relationships of
/// every dimension), partitions the timeline at their boundaries, and
/// materialises per-dimension member sets for each segment. Adjacent
/// segments always differ in at least one element's validity by
/// construction of the partition, matching the paper's claim that
/// structure versions "partition history".
pub fn infer_structure_versions(dimensions: &[TemporalDimension]) -> Vec<StructureVersion> {
    let mut intervals: Vec<Interval> = Vec::new();
    for d in dimensions {
        intervals.extend(d.validity_intervals());
    }
    let segments = partition_timeline(&intervals);
    segments
        .into_iter()
        .enumerate()
        .map(|(i, seg)| {
            let members = dimensions
                .iter()
                .map(|d| {
                    d.versions()
                        .iter()
                        .filter(|v| v.validity.contains_interval(seg.interval))
                        .map(|v| v.id)
                        .collect::<Vec<_>>()
                })
                .collect();
            let edges = dimensions
                .iter()
                .map(|d| {
                    let mut e: Vec<(MemberVersionId, MemberVersionId)> = d
                        .relationships()
                        .iter()
                        .filter(|r| r.validity.contains_interval(seg.interval))
                        .map(|r| (r.child, r.parent))
                        .collect();
                    e.sort_unstable();
                    e
                })
                .collect();
            StructureVersion {
                id: StructureVersionId(i as u32),
                interval: seg.interval,
                members,
                edges,
            }
        })
        .collect()
}

/// Finds the structure version covering instant `t`.
///
/// # Errors
///
/// [`CoreError::NoStructureVersionAt`] when `t` falls outside every
/// version (before the first element's validity).
pub fn structure_version_at(
    versions: &[StructureVersion],
    t: Instant,
) -> Result<&StructureVersion> {
    versions
        .iter()
        .find(|v| v.interval.contains(t))
        .ok_or(CoreError::NoStructureVersionAt(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::MemberVersionSpec;

    /// The paper's case-study Org dimension, complete with Smith's 2002
    /// reclassification and the 2003 Jones split.
    fn case_org() -> TemporalDimension {
        let mut d = TemporalDimension::new("Org");
        let since01 = Interval::since(Instant::ym(2001, 1));
        let sales = d.add_version(
            MemberVersionSpec::named("Sales").at_level("Division"),
            since01,
        );
        let rnd = d.add_version(
            MemberVersionSpec::named("R&D").at_level("Division"),
            since01,
        );
        let jones = d.add_version(
            MemberVersionSpec::named("Dpt.Jones").at_level("Department"),
            Interval::of(Instant::ym(2001, 1), Instant::ym(2002, 12)),
        );
        let smith = d.add_version(
            MemberVersionSpec::named("Dpt.Smith").at_level("Department"),
            since01,
        );
        let brian = d.add_version(
            MemberVersionSpec::named("Dpt.Brian").at_level("Department"),
            since01,
        );
        let bill = d.add_version(
            MemberVersionSpec::named("Dpt.Bill").at_level("Department"),
            Interval::since(Instant::ym(2003, 1)),
        );
        let paul = d.add_version(
            MemberVersionSpec::named("Dpt.Paul").at_level("Department"),
            Interval::since(Instant::ym(2003, 1)),
        );
        d.add_relationship(
            jones,
            sales,
            Interval::of(Instant::ym(2001, 1), Instant::ym(2002, 12)),
        )
        .unwrap();
        d.add_relationship(
            smith,
            sales,
            Interval::of(Instant::ym(2001, 1), Instant::ym(2001, 12)),
        )
        .unwrap();
        d.add_relationship(smith, rnd, Interval::since(Instant::ym(2002, 1)))
            .unwrap();
        d.add_relationship(brian, rnd, since01).unwrap();
        d.add_relationship(bill, sales, Interval::since(Instant::ym(2003, 1)))
            .unwrap();
        d.add_relationship(paul, sales, Interval::since(Instant::ym(2003, 1)))
            .unwrap();
        d
    }

    #[test]
    fn case_study_yields_three_structure_versions() {
        // 2001 (Smith in Sales), 2002 (Smith in R&D, Jones still alive),
        // 2003-Now (Jones split into Bill and Paul).
        let d = case_org();
        let svs = infer_structure_versions(std::slice::from_ref(&d));
        assert_eq!(svs.len(), 3);
        assert_eq!(svs[0].interval, Interval::years(2001, 2001));
        assert_eq!(svs[1].interval, Interval::years(2002, 2002));
        assert_eq!(svs[2].interval, Interval::since(Instant::ym(2003, 1)));
        assert_eq!(svs[0].id, StructureVersionId(0));
        assert_eq!(svs[2].id, StructureVersionId(2));
    }

    #[test]
    fn membership_per_version() {
        let d = case_org();
        let jones = d
            .version_named_at("Dpt.Jones", Instant::ym(2001, 6))
            .unwrap()
            .id;
        let bill = d
            .version_named_at("Dpt.Bill", Instant::ym(2003, 6))
            .unwrap()
            .id;
        let svs = infer_structure_versions(std::slice::from_ref(&d));
        let dim = DimensionId(0);
        assert!(svs[0].contains(dim, jones));
        assert!(svs[1].contains(dim, jones));
        assert!(!svs[2].contains(dim, jones));
        assert!(!svs[0].contains(dim, bill));
        assert!(svs[2].contains(dim, bill));
        // Out-of-range dimension is simply not contained.
        assert!(!svs[0].contains(DimensionId(7), jones));
    }

    #[test]
    fn lookup_by_instant() {
        let d = case_org();
        let svs = infer_structure_versions(std::slice::from_ref(&d));
        assert_eq!(
            structure_version_at(&svs, Instant::ym(2002, 7)).unwrap().id,
            StructureVersionId(1)
        );
        assert_eq!(
            structure_version_at(&svs, Instant::ym(2030, 1)).unwrap().id,
            StructureVersionId(2)
        );
        assert!(matches!(
            structure_version_at(&svs, Instant::ym(1999, 1)),
            Err(CoreError::NoStructureVersionAt(_))
        ));
    }

    #[test]
    fn example_7_split_only_gives_two_versions() {
        // Paper Example 7 scopes to the Jones split alone: exactly two
        // structure versions.
        let mut d = TemporalDimension::new("Org");
        let sales = d.add_version(
            MemberVersionSpec::named("Sales"),
            Interval::since(Instant::ym(2001, 1)),
        );
        let jones = d.add_version(
            MemberVersionSpec::named("Dpt.Jones"),
            Interval::of(Instant::ym(2001, 1), Instant::ym(2002, 12)),
        );
        let bill = d.add_version(
            MemberVersionSpec::named("Dpt.Bill"),
            Interval::since(Instant::ym(2003, 1)),
        );
        let paul = d.add_version(
            MemberVersionSpec::named("Dpt.Paul"),
            Interval::since(Instant::ym(2003, 1)),
        );
        d.add_relationship(
            jones,
            sales,
            Interval::of(Instant::ym(2001, 1), Instant::ym(2002, 12)),
        )
        .unwrap();
        d.add_relationship(bill, sales, Interval::since(Instant::ym(2003, 1)))
            .unwrap();
        d.add_relationship(paul, sales, Interval::since(Instant::ym(2003, 1)))
            .unwrap();
        let svs = infer_structure_versions(std::slice::from_ref(&d));
        assert_eq!(svs.len(), 2);
        assert_eq!(
            svs[0].interval,
            Interval::of(Instant::ym(2001, 1), Instant::ym(2002, 12))
        );
        assert_eq!(svs[1].interval, Interval::since(Instant::ym(2003, 1)));
    }

    #[test]
    fn multiple_dimensions_interleave_boundaries() {
        let mut d1 = TemporalDimension::new("A");
        d1.add_version(MemberVersionSpec::named("a"), Interval::years(2001, 2002));
        let mut d2 = TemporalDimension::new("B");
        d2.add_version(MemberVersionSpec::named("b1"), Interval::years(2001, 2001));
        d2.add_version(MemberVersionSpec::named("b2"), Interval::years(2002, 2003));
        let svs = infer_structure_versions(&[d1, d2]);
        assert_eq!(svs.len(), 3);
        assert_eq!(svs[0].interval, Interval::years(2001, 2001));
        assert_eq!(svs[1].interval, Interval::years(2002, 2002));
        assert_eq!(svs[2].interval, Interval::years(2003, 2003));
        // Dimension A has no members in 2003.
        assert!(svs[2].members[0].is_empty());
        assert_eq!(svs[2].members[1].len(), 1);
    }

    #[test]
    fn empty_schema_has_no_structure_versions() {
        assert!(infer_structure_versions(&[]).is_empty());
        let d = TemporalDimension::new("Empty");
        assert!(infer_structure_versions(std::slice::from_ref(&d)).is_empty());
    }

    #[test]
    fn labels_render() {
        let d = case_org();
        let svs = infer_structure_versions(std::slice::from_ref(&d));
        assert_eq!(svs[0].label(), "VS0 [01/2001 ; 12/2001]");
        assert_eq!(svs[2].label(), "VS2 [01/2003 ; Now]");
    }
}
