//! Temporal modes of presentation (paper Definition 10).
//!
//! `TMP = {tcm, VM1, …, VMN}`: a query result is presented either in the
//! *temporally consistent mode* (every fact attached to the structure
//! valid at its own time) or mapped into one of the inferred structure
//! versions. The paper's §6 notes, as an improvement, composing a
//! structure version per dimension — implemented here as
//! [`TemporalMode::Mixed`].

use crate::ids::{DimensionId, StructureVersionId};
use crate::structure_version::StructureVersion;

/// One temporal mode of presentation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TemporalMode {
    /// `tcm`: the temporally consistent mode — source data in the
    /// structure valid at each fact's own time.
    Consistent,
    /// `VMi`: all data mapped into structure version `i`.
    Version(StructureVersionId),
    /// Extension (paper §6 future work): each dimension presented in its
    /// own chosen structure version.
    Mixed(Vec<(DimensionId, StructureVersionId)>),
}

impl TemporalMode {
    /// The structure version a given dimension is presented in, if any.
    pub fn version_for(&self, dim: DimensionId) -> Option<StructureVersionId> {
        match self {
            TemporalMode::Consistent => None,
            TemporalMode::Version(v) => Some(*v),
            TemporalMode::Mixed(pairs) => pairs.iter().find(|(d, _)| *d == dim).map(|(_, v)| *v),
        }
    }

    /// A short label (`tcm`, `VS1`, `mixed(...)`).
    pub fn label(&self) -> String {
        match self {
            TemporalMode::Consistent => "tcm".to_owned(),
            TemporalMode::Version(v) => v.to_string(),
            TemporalMode::Mixed(pairs) => {
                let parts: Vec<String> = pairs
                    .iter()
                    .map(|(d, v)| format!("D{}={}", d.0, v))
                    .collect();
                format!("mixed({})", parts.join(","))
            }
        }
    }
}

impl std::fmt::Display for TemporalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Enumerates the full TMP set for a schema's structure versions:
/// `tcm` first, then one `VMi` per version in chronological order
/// (Definition 10).
pub fn all_modes(structure_versions: &[StructureVersion]) -> Vec<TemporalMode> {
    let mut out = Vec::with_capacity(structure_versions.len() + 1);
    out.push(TemporalMode::Consistent);
    out.extend(
        structure_versions
            .iter()
            .map(|v| TemporalMode::Version(v.id)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvolap_temporal::{Instant, Interval};

    fn svs() -> Vec<StructureVersion> {
        vec![
            StructureVersion {
                id: StructureVersionId(0),
                interval: Interval::years(2001, 2002),
                members: vec![vec![]],
                edges: vec![vec![]],
            },
            StructureVersion {
                id: StructureVersionId(1),
                interval: Interval::since(Instant::ym(2003, 1)),
                members: vec![vec![]],
                edges: vec![vec![]],
            },
        ]
    }

    #[test]
    fn all_modes_is_tcm_plus_versions() {
        let modes = all_modes(&svs());
        assert_eq!(modes.len(), 3);
        assert_eq!(modes[0], TemporalMode::Consistent);
        assert_eq!(modes[1], TemporalMode::Version(StructureVersionId(0)));
        assert_eq!(modes[2], TemporalMode::Version(StructureVersionId(1)));
    }

    #[test]
    fn labels() {
        assert_eq!(TemporalMode::Consistent.label(), "tcm");
        assert_eq!(TemporalMode::Version(StructureVersionId(2)).label(), "VS2");
        let mixed = TemporalMode::Mixed(vec![
            (DimensionId(0), StructureVersionId(1)),
            (DimensionId(1), StructureVersionId(0)),
        ]);
        assert_eq!(mixed.label(), "mixed(D0=VS1,D1=VS0)");
    }

    #[test]
    fn version_for_dispatch() {
        let dim0 = DimensionId(0);
        let dim1 = DimensionId(1);
        assert_eq!(TemporalMode::Consistent.version_for(dim0), None);
        assert_eq!(
            TemporalMode::Version(StructureVersionId(1)).version_for(dim0),
            Some(StructureVersionId(1))
        );
        let mixed = TemporalMode::Mixed(vec![(dim0, StructureVersionId(1))]);
        assert_eq!(mixed.version_for(dim0), Some(StructureVersionId(1)));
        assert_eq!(mixed.version_for(dim1), None);
    }
}
