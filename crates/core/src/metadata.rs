//! Metadata management (paper §5.2).
//!
//! The prototype keeps two categories of metadata: metadata on member
//! *versions* (validity, name, hierarchy position — stored with the
//! dimension tables) and metadata on member *evolutions* (the mapping
//! relations and a textual trace of transformations). This module holds
//! the evolution side: an append-only [`EvolutionLog`] and human-readable
//! history descriptions.

use mvolap_temporal::Instant;

use crate::ids::{DimensionId, MemberVersionId};

/// One recorded evolution event.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolutionEntry {
    /// The dimension affected.
    pub dimension: DimensionId,
    /// The member versions affected.
    pub subjects: Vec<MemberVersionId>,
    /// When the evolution takes effect (model time, not wall-clock).
    pub at: Instant,
    /// The operator applied (`insert`, `exclude`, `associate`,
    /// `reclassify`, or a high-level name like `split`).
    pub operator: &'static str,
    /// Human-readable description, e.g.
    /// `"Dpt.Jones split into Dpt.Bill, Dpt.Paul"`.
    pub description: String,
}

/// Append-only log of evolution events — the §5.2 "information related to
/// the evolution of the members of a dimension", from which "the user can
/// obtain a short textual description of the transformations that have
/// affected a member".
#[derive(Debug, Clone, Default)]
pub struct EvolutionLog {
    entries: Vec<EvolutionEntry>,
}

impl EvolutionLog {
    /// An empty log.
    pub fn new() -> Self {
        EvolutionLog::default()
    }

    /// Appends an event.
    pub fn record(&mut self, entry: EvolutionEntry) {
        self.entries.push(entry);
    }

    /// All events in application order.
    pub fn entries(&self) -> &[EvolutionEntry] {
        &self.entries
    }

    /// Events touching a given member version, oldest first.
    pub fn history_of(&self, dimension: DimensionId, id: MemberVersionId) -> Vec<&EvolutionEntry> {
        self.entries
            .iter()
            .filter(|e| e.dimension == dimension && e.subjects.contains(&id))
            .collect()
    }

    /// A textual, line-per-event description of a member version's
    /// history — the §5.2 user-facing trace.
    pub fn describe(&self, dimension: DimensionId, id: MemberVersionId) -> String {
        let events = self.history_of(dimension, id);
        if events.is_empty() {
            return "no recorded evolution".to_owned();
        }
        events
            .iter()
            .map(|e| format!("{}: [{}] {}", e.at, e.operator, e.description))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(op: &'static str, subject: u32, month: u32) -> EvolutionEntry {
        EvolutionEntry {
            dimension: DimensionId(0),
            subjects: vec![MemberVersionId(subject)],
            at: Instant::ym(2003, month),
            operator: op,
            description: format!("{op} on mv{subject}"),
        }
    }

    #[test]
    fn record_and_filter_history() {
        let mut log = EvolutionLog::new();
        log.record(entry("insert", 1, 1));
        log.record(entry("exclude", 2, 2));
        log.record(entry("reclassify", 1, 3));
        assert_eq!(log.entries().len(), 3);
        let h = log.history_of(DimensionId(0), MemberVersionId(1));
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].operator, "insert");
        assert_eq!(h[1].operator, "reclassify");
        assert!(log
            .history_of(DimensionId(1), MemberVersionId(1))
            .is_empty());
    }

    #[test]
    fn describe_renders_lines() {
        let mut log = EvolutionLog::new();
        log.record(entry("insert", 1, 1));
        log.record(entry("exclude", 1, 2));
        let d = log.describe(DimensionId(0), MemberVersionId(1));
        assert_eq!(d.lines().count(), 2);
        assert!(d.contains("[insert]"));
        assert!(d.contains("01/2003"));
        assert_eq!(
            log.describe(DimensionId(0), MemberVersionId(9)),
            "no recorded evolution"
        );
    }
}
