//! The paper's running case study (§2.1), ready-built.
//!
//! An institution's Organization dimension with hierarchy
//! `{Division > Department}` and a single measure `Amount`:
//!
//! * 2001: Sales = {Dpt.Jones, Dpt.Smith}, R&D = {Dpt.Brian} (Table 1);
//! * 2002: Smith's department is reorganised into R&D (Table 2);
//! * 2003: Jones's department splits into Paul's (60 %) and Bill's
//!   (40 %) (Table 7), with the mapping relationships of Example 6.
//!
//! The fact data is exactly the snapshot of Table 3. These builders are
//! used by tests, examples and the paper-table reproduction harness; a
//! two-measure variant (`Turnover` + `Profit` with split factors
//! 0.6/0.4 and 0.8/0.2) backs the Table 12 metadata experiment.

use mvolap_temporal::{Granularity, Instant, Interval};

use crate::confidence::Confidence;
use crate::dimension::TemporalDimension;
use crate::fact::MeasureDef;
use crate::ids::{DimensionId, MemberVersionId};
use crate::mapping::{MappingFunction, MappingRelationship, MeasureMapping};
use crate::member::MemberVersionSpec;
use crate::schema::Tmd;

/// The assembled case study with the member-version ids of interest.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// The schema, loaded with the Table 3 snapshot.
    pub tmd: Tmd,
    /// The Organization dimension.
    pub org: DimensionId,
    /// Division Sales `[01/2001 ; Now]`.
    pub sales: MemberVersionId,
    /// Division R&D `[01/2001 ; Now]`.
    pub rnd: MemberVersionId,
    /// Dpt.Jones `[01/2001 ; 12/2002]`.
    pub jones: MemberVersionId,
    /// Dpt.Smith `[01/2001 ; Now]` (reclassified Sales → R&D in 2002).
    pub smith: MemberVersionId,
    /// Dpt.Brian `[01/2001 ; Now]`.
    pub brian: MemberVersionId,
    /// Dpt.Bill `[01/2003 ; Now]` (40 % of Jones).
    pub bill: MemberVersionId,
    /// Dpt.Paul `[01/2003 ; Now]` (60 % of Jones).
    pub paul: MemberVersionId,
}

/// Builds the Organization dimension shared by both variants.
fn build_org() -> (TemporalDimension, [MemberVersionId; 7]) {
    let mut d = TemporalDimension::new("Org");
    let since01 = Interval::since(Instant::ym(2001, 1));
    let sales = d.add_version(
        MemberVersionSpec::named("Sales").at_level("Division"),
        since01,
    );
    let rnd = d.add_version(
        MemberVersionSpec::named("R&D").at_level("Division"),
        since01,
    );
    let jones = d.add_version(
        MemberVersionSpec::named("Dpt.Jones").at_level("Department"),
        Interval::of(Instant::ym(2001, 1), Instant::ym(2002, 12)),
    );
    let smith = d.add_version(
        MemberVersionSpec::named("Dpt.Smith").at_level("Department"),
        since01,
    );
    let brian = d.add_version(
        MemberVersionSpec::named("Dpt.Brian").at_level("Department"),
        since01,
    );
    let bill = d.add_version(
        MemberVersionSpec::named("Dpt.Bill").at_level("Department"),
        Interval::since(Instant::ym(2003, 1)),
    );
    let paul = d.add_version(
        MemberVersionSpec::named("Dpt.Paul").at_level("Department"),
        Interval::since(Instant::ym(2003, 1)),
    );
    d.add_relationship(
        jones,
        sales,
        Interval::of(Instant::ym(2001, 1), Instant::ym(2002, 12)),
    )
    .expect("case study edge");
    // Smith under Sales in 2001 (Table 1), under R&D from 2002 (Table 2).
    d.add_relationship(
        smith,
        sales,
        Interval::of(Instant::ym(2001, 1), Instant::ym(2001, 12)),
    )
    .expect("case study edge");
    d.add_relationship(smith, rnd, Interval::since(Instant::ym(2002, 1)))
        .expect("case study edge");
    d.add_relationship(brian, rnd, since01)
        .expect("case study edge");
    d.add_relationship(bill, sales, Interval::since(Instant::ym(2003, 1)))
        .expect("case study edge");
    d.add_relationship(paul, sales, Interval::since(Instant::ym(2003, 1)))
        .expect("case study edge");
    (d, [sales, rnd, jones, smith, brian, bill, paul])
}

/// A fact time in the middle of the given year (facts in the paper are
/// reported per year).
fn mid(year: i32) -> Instant {
    Instant::ym(year, 6)
}

/// The Table 3 snapshot: `(year, department, amount)`.
pub const TABLE_3: [(i32, &str, f64); 10] = [
    (2001, "Dpt.Jones", 100.0),
    (2001, "Dpt.Smith", 50.0),
    (2001, "Dpt.Brian", 100.0),
    (2002, "Dpt.Jones", 100.0),
    (2002, "Dpt.Smith", 100.0),
    (2002, "Dpt.Brian", 50.0),
    (2003, "Dpt.Bill", 150.0),
    (2003, "Dpt.Paul", 50.0),
    (2003, "Dpt.Smith", 110.0),
    (2003, "Dpt.Brian", 40.0),
];

/// Builds the single-measure (`Amount`) case study with the Example 6
/// mapping relationships and the Table 3 facts.
pub fn case_study() -> CaseStudy {
    let mut tmd = Tmd::new("institution", Granularity::Month);
    let (d, [sales, rnd, jones, smith, brian, bill, paul]) = build_org();
    let org = tmd
        .add_dimension(d)
        .expect("empty schema accepts dimensions");
    tmd.add_measure(MeasureDef::summed("Amount"))
        .expect("empty schema accepts measures");

    // Example 6: <Jones, Bill, {(x→0.4x, am)}, {(x→x, em)}> and
    //            <Jones, Paul, {(x→0.6x, am)}, {(x→x, em)}>.
    tmd.add_mapping(
        org,
        MappingRelationship::uniform(
            jones,
            bill,
            MeasureMapping::approx_scale(0.4),
            MeasureMapping::EXACT_IDENTITY,
            1,
        ),
    )
    .expect("case study mapping");
    tmd.add_mapping(
        org,
        MappingRelationship::uniform(
            jones,
            paul,
            MeasureMapping::approx_scale(0.6),
            MeasureMapping::EXACT_IDENTITY,
            1,
        ),
    )
    .expect("case study mapping");

    for (year, dept, amount) in TABLE_3 {
        tmd.add_fact_by_names(&[dept], mid(year), &[amount])
            .expect("Table 3 facts are valid");
    }

    CaseStudy {
        tmd,
        org,
        sales,
        rnd,
        jones,
        smith,
        brian,
        bill,
        paul,
    }
}

/// The two-measure variant behind §5.2 / Table 12: `Turnover` (m1,
/// split 60 % Paul / 40 % Bill) and `Profit` (m2, split 80 % Paul /
/// 20 % Bill). Facts carry a synthetic profit of 20 % of the amount.
pub fn case_study_two_measures() -> CaseStudy {
    let mut tmd = Tmd::new("institution", Granularity::Month);
    let (d, [sales, rnd, jones, smith, brian, bill, paul]) = build_org();
    let org = tmd
        .add_dimension(d)
        .expect("empty schema accepts dimensions");
    tmd.add_measure(MeasureDef::summed("Turnover"))
        .expect("measure");
    tmd.add_measure(MeasureDef::summed("Profit"))
        .expect("measure");

    let approx = |k: f64| MeasureMapping {
        func: MappingFunction::Scale(k),
        confidence: Confidence::Approx,
    };
    tmd.add_mapping(
        org,
        MappingRelationship {
            from: jones,
            to: bill,
            forward: vec![approx(0.4), approx(0.2)],
            backward: vec![MeasureMapping::EXACT_IDENTITY; 2],
        },
    )
    .expect("mapping");
    tmd.add_mapping(
        org,
        MappingRelationship {
            from: jones,
            to: paul,
            forward: vec![approx(0.6), approx(0.8)],
            backward: vec![MeasureMapping::EXACT_IDENTITY; 2],
        },
    )
    .expect("mapping");

    for (year, dept, amount) in TABLE_3 {
        tmd.add_fact_by_names(&[dept], mid(year), &[amount, amount * 0.2])
            .expect("facts are valid");
    }

    CaseStudy {
        tmd,
        org,
        sales,
        rnd,
        jones,
        smith,
        brian,
        bill,
        paul,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_shape() {
        let cs = case_study();
        assert_eq!(cs.tmd.dimensions().len(), 1);
        assert_eq!(cs.tmd.measures().len(), 1);
        assert_eq!(cs.tmd.facts().len(), 10);
        assert_eq!(
            cs.tmd.mapping_graph(cs.org).unwrap().relationships().len(),
            2
        );
    }

    #[test]
    fn case_study_has_three_structure_versions() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        assert_eq!(svs.len(), 3);
        assert_eq!(svs[0].interval, Interval::years(2001, 2001));
        assert_eq!(svs[1].interval, Interval::years(2002, 2002));
        assert_eq!(svs[2].interval, Interval::since(Instant::ym(2003, 1)));
    }

    #[test]
    fn smith_moves_divisions_in_2002() {
        let cs = case_study();
        let d = cs.tmd.dimension(cs.org).unwrap();
        assert_eq!(d.parents_at(cs.smith, Instant::ym(2001, 6)), vec![cs.sales]);
        assert_eq!(d.parents_at(cs.smith, Instant::ym(2002, 6)), vec![cs.rnd]);
    }

    #[test]
    fn two_measure_variant_shape() {
        let cs = case_study_two_measures();
        assert_eq!(cs.tmd.measures().len(), 2);
        assert_eq!(cs.tmd.facts().len(), 10);
        let rels = cs.tmd.mapping_graph(cs.org).unwrap().relationships();
        assert_eq!(rels[0].forward[0].func, MappingFunction::Scale(0.4));
        assert_eq!(rels[0].forward[1].func, MappingFunction::Scale(0.2));
        assert_eq!(rels[1].forward[1].func, MappingFunction::Scale(0.8));
    }
}
