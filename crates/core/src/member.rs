//! Member versions (paper Definition 1).

use std::collections::BTreeMap;

use mvolap_temporal::Interval;

use crate::ids::MemberVersionId;

/// A *Member Version*: "a state of a member, unchanged and coherent over a
/// given time slice" — the tuple `<MVid, Name, [A], [Level], ti, tf>`.
///
/// The same member (e.g. the department led by Jones) may have several
/// versions, and — unlike Kimball's Type Two SCD — versions of one member
/// may have *overlapping* valid times.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberVersion {
    /// Unique identifier within the owning dimension (`MVid`).
    pub id: MemberVersionId,
    /// The name of the associated member.
    pub name: String,
    /// Optional user-defined attributes (`[A]`).
    pub attributes: BTreeMap<String, String>,
    /// Optional explicit level tag (`[Level]`); when present on every
    /// version of a dimension, levels are equivalence classes of this
    /// field (Definition 4), otherwise they derive from DAG depth.
    pub level: Option<String>,
    /// Valid time `[ti, tf]`.
    pub validity: Interval,
}

impl MemberVersion {
    /// Renders the paper's tuple notation, e.g.
    /// `<3, 'Dpt.Jones', Department, 01/2001, 12/2002>`.
    pub fn tuple_notation(&self) -> String {
        let level = self.level.as_deref().unwrap_or("-");
        format!(
            "<{}, '{}', {}, {}, {}>",
            self.id.0,
            self.name,
            level,
            self.validity.start(),
            self.validity.end()
        )
    }
}

/// A builder-style specification for creating a member version inside a
/// dimension (ids are allocated by the dimension).
#[derive(Debug, Clone, Default)]
pub struct MemberVersionSpec {
    /// Member name.
    pub name: String,
    /// User attributes.
    pub attributes: BTreeMap<String, String>,
    /// Optional explicit level tag.
    pub level: Option<String>,
}

impl MemberVersionSpec {
    /// A spec with just a name.
    pub fn named(name: impl Into<String>) -> Self {
        MemberVersionSpec {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Sets the explicit level tag.
    #[must_use]
    pub fn at_level(mut self, level: impl Into<String>) -> Self {
        self.level = Some(level.into());
        self
    }

    /// Adds one user attribute.
    #[must_use]
    pub fn with_attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.insert(key.into(), value.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvolap_temporal::Instant;

    #[test]
    fn tuple_notation_matches_paper_style() {
        let mv = MemberVersion {
            id: MemberVersionId(3),
            name: "Dpt.Jones".into(),
            attributes: BTreeMap::new(),
            level: Some("Department".into()),
            validity: Interval::of(Instant::ym(2001, 1), Instant::ym(2002, 12)),
        };
        assert_eq!(
            mv.tuple_notation(),
            "<3, 'Dpt.Jones', Department, 01/2001, 12/2002>"
        );
    }

    #[test]
    fn spec_builder() {
        let spec = MemberVersionSpec::named("Dpt.Smith")
            .at_level("Department")
            .with_attribute("leader", "Smith");
        assert_eq!(spec.name, "Dpt.Smith");
        assert_eq!(spec.level.as_deref(), Some("Department"));
        assert_eq!(
            spec.attributes.get("leader").map(String::as_str),
            Some("Smith")
        );
    }
}
